"""Build script: pure-Python by default, compiled dispatch core opt-in.

``pip install -e .`` installs the plain-Python package — no compiler,
no extra dependency.  Setting ``REPRO_COMPILED=1`` additionally
compiles :mod:`repro.sim._fastloop` (the extracted dispatch core; see
src/repro/sim/fastloop.py) with mypyc:

    REPRO_COMPILED=1 pip install -e .

The compiled extension shadows ``_fastloop.py``; the fastloop loader
reports which implementation resolved as ``ACTIVE_IMPL`` and both are
byte-identical in behavior.  Requesting compilation without mypy[mypyc]
installed is a hard error rather than a silent fallback — mirroring the
loader's own ``REPRO_COMPILED=1`` arming guard.
"""

import os

from setuptools import setup

ext_modules = []
if os.environ.get("REPRO_COMPILED") == "1":
    try:
        from mypyc.build import mypycify
    except ImportError as exc:  # pragma: no cover - build-time guard
        raise SystemExit(
            "REPRO_COMPILED=1 requires mypy (mypyc) to build the "
            "compiled dispatch core: pip install mypy, or unset "
            "REPRO_COMPILED to install the pure-Python fallback"
        ) from exc
    ext_modules = mypycify(["src/repro/sim/_fastloop.py"])

setup(ext_modules=ext_modules)
