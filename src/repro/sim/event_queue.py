"""Event calendar: a stable, cancellable binary-heap priority queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering *stable*: two events scheduled for the same time and
priority fire in the order they were scheduled, which keeps the simulation
deterministic.  Cancellation is lazy — cancelled entries stay in the heap
and are skipped on pop — which is the standard O(log n) approach and, per
the HPC guides, is both the simple and the fast choice here.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError

EventCallback = Callable[["Event"], None]


@dataclass(slots=True)
class Event:
    """A scheduled occurrence in virtual time.

    Attributes:
        time: firing time in integer microseconds.
        priority: tie-break rank for events at the same time (lower fires
            first).  Kernel-internal events use low values so that, e.g.,
            a timer expiry is processed before same-instant user activity.
        seq: global scheduling sequence number (stable tie break).
        callback: function invoked with the event when it fires.
        payload: arbitrary data for the callback.
        tag: short human-readable label used by tracing and debugging.
    """

    time: int
    priority: int
    seq: int
    callback: EventCallback
    payload: Any = None
    tag: str = ""
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[int, int, int]:
        return (self.time, self.priority, self.seq)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`.

    Holding a handle allows the scheduler of an event to cancel it later
    (e.g. a kernel callout that is no longer needed).
    """

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> int:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is pending (not fired, not cancelled)."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice (or after firing) is harmless."""
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._queue._live -= 1


class _HeapEntry:
    """Heap wrapper ordering events by their sort key."""

    __slots__ = ("key", "event")

    def __init__(self, event: Event) -> None:
        self.key = event.sort_key()
        self.event = event

    def __lt__(self, other: "_HeapEntry") -> bool:
        return self.key < other.key


class EventQueue:
    """Binary-heap event calendar with stable ordering and lazy deletion."""

    def __init__(self) -> None:
        self._heap: list[_HeapEntry] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def schedule(
        self,
        time: int,
        callback: EventCallback,
        *,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Insert an event and return a cancellable handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        self._seq += 1
        event = Event(
            time=time,
            priority=priority,
            seq=self._seq,
            callback=callback,
            payload=payload,
            tag=tag,
        )
        heapq.heappush(self._heap, _HeapEntry(event))
        self._live += 1
        return EventHandle(event, self)

    def peek_time(self) -> Optional[int]:
        """Firing time of the next pending event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return self._heap[0].event.time

    def pop(self) -> Optional[Event]:
        """Remove and return the next pending event, or None if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        entry = heapq.heappop(self._heap)
        self._live -= 1
        entry.event.fired = True
        return entry.event

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].event.cancelled:
            heapq.heappop(heap)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
