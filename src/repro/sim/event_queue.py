"""Event calendar: a stable, cancellable binary-heap priority queue.

Events are ordered by ``(time, priority, sequence)``.  The sequence number
makes ordering *stable*: two events scheduled for the same time and
priority fire in the order they were scheduled, which keeps the simulation
deterministic.  Cancellation is lazy — cancelled entries stay in the heap
and are skipped on pop — which is the standard O(log n) approach and, per
the HPC guides, is both the simple and the fast choice here.

Performance notes
-----------------
Heap entries are plain ``(time, priority, seq, event)`` tuples rather
than wrapper objects: ``seq`` is unique, so tuple comparison resolves in
C without ever comparing the trailing :class:`Event`, and every sift
during push/pop avoids a Python-level ``__lt__`` call.  The engine's hot
loop uses :meth:`EventQueue.pop_ready`, which fuses the peek + pop pair
into a single pass over the cancelled prefix.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim import fastloop as _fastloop

EventCallback = Callable[["Event"], None]


@dataclass(slots=True)
class Event:
    """A scheduled occurrence in virtual time.

    Attributes:
        time: firing time in integer microseconds.
        priority: tie-break rank for events at the same time (lower fires
            first).  Kernel-internal events use low values so that, e.g.,
            a timer expiry is processed before same-instant user activity.
        seq: global scheduling sequence number (stable tie break).
        callback: function invoked with the event when it fires.
        payload: arbitrary data for the callback.
        tag: short human-readable label used by tracing and debugging.
    """

    time: int
    priority: int
    seq: int
    callback: EventCallback
    payload: Any = None
    tag: str = ""
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[int, int, int]:
        return (self.time, self.priority, self.seq)


class EventHandle:
    """Opaque handle returned by :meth:`EventQueue.schedule`.

    Holding a handle allows the scheduler of an event to cancel it later
    (e.g. a kernel callout that is no longer needed).
    """

    __slots__ = ("_event", "_queue")

    def __init__(self, event: Event, queue: "EventQueue") -> None:
        self._event = event
        self._queue = queue

    @property
    def time(self) -> int:
        """Scheduled firing time of the underlying event."""
        return self._event.time

    @property
    def active(self) -> bool:
        """True while the event is pending (not fired, not cancelled)."""
        return not self._event.cancelled and not self._event.fired

    def cancel(self) -> None:
        """Cancel the event.  Cancelling twice (or after firing) is harmless."""
        if not self._event.cancelled and not self._event.fired:
            self._event.cancelled = True
            self._queue._live -= 1


class EventQueue:
    """Binary-heap event calendar with stable ordering and lazy deletion."""

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        # Entries are (time, priority, seq, event); seq is unique so
        # comparisons never reach the Event object.
        self._heap: list[tuple[int, int, int, Event]] = []
        self._seq = 0
        self._live = 0

    def __len__(self) -> int:
        """Number of pending (non-cancelled) events."""
        return self._live

    def schedule(
        self,
        time: int,
        callback: EventCallback,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Insert an event and return a cancellable handle.

        ``priority``/``payload``/``tag`` accept positional calls too:
        the kernel's burst/callout arming is hot enough that keyword
        binding shows up in profiles.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        self._seq += 1
        seq = self._seq
        event = Event(time, priority, seq, callback, payload, tag)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return EventHandle(event, self)

    def peek_time(self) -> Optional[int]:
        """Firing time of the next pending event, or None if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Optional[Event]:
        """Remove and return the next pending event, or None if empty."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        event = heapq.heappop(heap)[3]
        self._live -= 1
        event.fired = True
        return event

    def pop_ready(self, until: int) -> Optional[Event]:
        """Pop the next pending event if it fires at or before ``until``.

        Fuses ``peek_time`` + ``pop`` into one cancelled-prefix scan —
        the engine run loop's fast path.  Returns None when the queue is
        empty or the next event fires after ``until``.

        The body lives in :mod:`repro.sim.fastloop` (optionally
        compiled); the engine binds the module function directly, so
        this method exists for API compatibility and direct callers.
        """
        return _fastloop.pop_ready(self, until)

    # ------------------------------------------------------------------
    # Fused same-instant stepping (the batch backend's run loop)
    # ------------------------------------------------------------------
    # The engine's fused mode drains every pending event that shares the
    # earliest timestamp in one heap pass, then dispatches them from a
    # flat list.  The contract that keeps golden traces byte-identical:
    # batch entries keep their full ``(time, priority, seq)`` keys, stay
    # cancellable until the moment they are individually marked fired,
    # and the engine compares the heap head's key against the next batch
    # entry before every dispatch, pushing the remainder back whenever a
    # callback scheduled something that must interleave.  Dispatch order
    # is therefore *provably* the heap order — the fusion only removes
    # sift work, never reorders.

    def pop_time_batch(
        self, until: int
    ) -> Optional[list[tuple[int, int, int, Event]]]:
        """Remove and return all pending entries at the earliest time.

        Returns None when the queue is empty or the earliest pending
        event fires after ``until``.  The returned entries are *not*
        marked fired and still count as live: the caller dispatches them
        one by one via :meth:`mark_fired` (so late cancellation keeps
        working) and returns any undispatched tail with
        :meth:`push_back`.

        The body lives in :mod:`repro.sim.fastloop` (optionally
        compiled); the fused engine loop calls the module function
        directly.
        """
        return _fastloop.pop_time_batch(self, until)

    def peek_key(self) -> Optional[tuple[int, int, int]]:
        """``(time, priority, seq)`` of the next pending event, or None."""
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        head = heap[0]
        return (head[0], head[1], head[2])

    def mark_fired(self, event: Event) -> None:
        """Commit one batch-popped event as dispatched."""
        event.fired = True
        self._live -= 1

    def push_back(self, entries: list[tuple[int, int, int, Event]]) -> None:
        """Reinsert undispatched batch entries (original keys intact)."""
        _fastloop.push_back(self, entries)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0
