"""The discrete-event simulation engine (event loop)."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.event_queue import Event, EventCallback, EventHandle, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer


class Engine:
    """Drives a simulation by popping events and advancing the clock.

    The engine is deliberately dumb: all semantics live in the components
    that schedule events (the simulated kernel, ALPS agents, workload
    drivers).  Determinism comes from the stable event ordering plus the
    named, seeded RNG streams in :class:`RngStreams`.
    """

    def __init__(self, *, seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self._events_processed = 0
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time (µs)."""
        return self.clock.now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far."""
        return self._events_processed

    def at(
        self,
        when: int,
        callback: EventCallback,
        *,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Schedule an event at absolute virtual time ``when`` (µs)."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock.now} when={when}"
            )
        return self.queue.schedule(
            when, callback, priority=priority, payload=payload, tag=tag
        )

    def after(
        self,
        delay: int,
        callback: EventCallback,
        *,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Schedule an event ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(
            self.clock.now + delay,
            callback,
            priority=priority,
            payload=payload,
            tag=tag,
        )

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run_until(self, until: int, *, max_events: Optional[int] = None) -> int:
        """Run until virtual time ``until`` (inclusive of events at it).

        Returns the number of events processed by this call.  The clock is
        left at ``until`` even if the queue drained earlier, so callers can
        take end-of-run measurements at a well-defined instant.
        """
        processed = 0
        self._stop_requested = False
        while True:
            if self._stop_requested:
                break
            if max_events is not None and processed >= max_events:
                break
            next_time = self.queue.peek_time()
            if next_time is None or next_time > until:
                break
            event = self.queue.pop()
            assert event is not None  # peek said there was one
            self.clock.advance_to(event.time)
            if self.tracer.enabled:
                self.tracer.record(event.time, "event", event.tag)
            event.callback(event)
            processed += 1
            self._events_processed += 1
        if not self._stop_requested and self.clock.now < until:
            self.clock.advance_to(until)
        return processed

    def run_until_idle(self, *, max_events: int = 10_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        processed = 0
        self._stop_requested = False
        while not self._stop_requested:
            event = self.queue.pop()
            if event is None:
                break
            if processed >= max_events:
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events; "
                    "likely a self-rescheduling event loop"
                )
            self.clock.advance_to(event.time)
            if self.tracer.enabled:
                self.tracer.record(event.time, "event", event.tag)
            event.callback(event)
            processed += 1
            self._events_processed += 1
        return processed
