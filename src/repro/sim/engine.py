"""The discrete-event simulation engine (event loop)."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.clock import Clock
from repro.sim.event_queue import Event, EventCallback, EventHandle, EventQueue
from repro.sim.fastloop import pop_ready as _pop_ready, run_fused as _run_fused
from repro.sim.rng import RngStreams
from repro.sim.trace import Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer
    from repro.perf.counters import PerfCounters


class Engine:
    """Drives a simulation by popping events and advancing the clock.

    The engine is deliberately dumb: all semantics live in the components
    that schedule events (the simulated kernel, ALPS agents, workload
    drivers).  Determinism comes from the stable event ordering plus the
    named, seeded RNG streams in :class:`RngStreams`.

    The run loop is the simulation's innermost hot path.  It pops ready
    events through :meth:`EventQueue.pop_ready` (one heap pass instead of
    a peek/pop pair), advances the clock by direct assignment (heap order
    guarantees monotonicity; events cannot be scheduled in the past), and
    short-circuits the tracer with a single attribute read per event.

    When ``counters`` (a :class:`~repro.perf.counters.PerfCounters`) is
    attached, each ``run_until``/``run_until_idle`` call accounts its
    wall time and event count there — per-call granularity, so the
    per-event path stays instrumentation-free.

    When an ``observer`` (:class:`~repro.obs.observer.Observer`) is
    attached, its perf counters back the engine's run accounting (unless
    an explicit ``counters`` was also given), so one registry export
    carries engine throughput alongside the event log.  The run loop
    itself reads nothing from the observer — observation points live in
    the components (kernel, agent, injector), keeping this path exactly
    as instrumentation-free as the tracer short-circuit.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        counters: Optional["PerfCounters"] = None,
        observer: Optional["Observer"] = None,
    ) -> None:
        self.clock = Clock()
        self.queue = EventQueue()
        self.rng = RngStreams(seed)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        self.observer = observer
        if counters is None and observer is not None and observer.enabled:
            counters = observer.perf
        self.counters = counters
        self._events_processed = 0
        self._stop_requested = False
        #: Fused same-instant stepping (enabled by the batch kernel
        #: backend): drain all events sharing a timestamp in one heap
        #: pass.  Off by default — the classic per-pop loop is the
        #: reference semantics.
        self._fused = False

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time (µs)."""
        return self.clock._now

    @property
    def events_processed(self) -> int:
        """Total number of events dispatched so far.

        Updated when a run call returns (not per event), so a callback
        reading it mid-run sees the value as of the run's start.
        """
        return self._events_processed

    def at(
        self,
        when: int,
        callback: EventCallback,
        *,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Schedule an event at absolute virtual time ``when`` (µs)."""
        if when < self.clock._now:
            raise SimulationError(
                f"cannot schedule event in the past: now={self.clock._now} when={when}"
            )
        return self.queue.schedule(when, callback, priority, payload, tag)

    def after(
        self,
        delay: int,
        callback: EventCallback,
        *,
        priority: int = 0,
        payload: Any = None,
        tag: str = "",
    ) -> EventHandle:
        """Schedule an event ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(
            self.clock._now + delay,
            callback,
            priority=priority,
            payload=payload,
            tag=tag,
        )

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stop_requested = True

    def enable_fused_stepping(self) -> None:
        """Switch :meth:`run_until` to fused same-instant stepping.

        All events sharing the earliest pending timestamp are drained in
        one heap pass and dispatched from a flat list, with one clock
        write per instant instead of one per event.  An order guard
        compares the heap head's ``(time, priority, seq)`` key against
        the next batch entry before every dispatch and falls back to the
        heap when a callback schedules or cancels same-instant work, so
        dispatch order — and therefore every golden trace — is identical
        to the classic loop (pinned by tests/sim/test_event_ordering.py
        and the backend matrix).
        """
        self._fused = True

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run_until(self, until: int, *, max_events: Optional[int] = None) -> int:
        """Run until virtual time ``until`` (inclusive of events at it).

        Returns the number of events processed by this call.  The clock is
        left at ``until`` even if the queue drained earlier, so callers can
        take end-of-run measurements at a well-defined instant.
        """
        if self._fused and max_events is None:
            return self._run_until_fused(until)
        timer = _start_timer(self.counters)
        processed = 0
        self._stop_requested = False
        clock = self.clock
        tracer = self.tracer
        queue = self.queue
        pop_ready = _pop_ready  # resolved fastloop impl (compiled or not)
        # Two loop bodies so the common unbounded run pays no per-event
        # max_events check.
        if max_events is None:
            while not self._stop_requested:
                event = pop_ready(queue, until)
                if event is None:
                    break
                # Direct assignment: pops are time-ordered and events
                # cannot be scheduled before `now`, so monotonicity holds.
                clock._now = event.time
                if tracer.enabled:
                    tracer.record(event.time, "event", event.tag)
                event.callback(event)
                processed += 1
        else:
            while not self._stop_requested and processed < max_events:
                event = pop_ready(queue, until)
                if event is None:
                    break
                clock._now = event.time
                if tracer.enabled:
                    tracer.record(event.time, "event", event.tag)
                event.callback(event)
                processed += 1
        self._events_processed += processed
        if not self._stop_requested and clock._now < until:
            clock.advance_to(until)
        _stop_timer(self.counters, timer, "engine.run_until", processed)
        return processed

    def _run_until_fused(self, until: int) -> int:
        """Fused-stepping body of :meth:`run_until` (no ``max_events``).

        The drain loop itself lives in :mod:`repro.sim.fastloop`
        (:func:`~repro.sim._fastloop.run_fused`, optionally compiled);
        this wrapper owns the timer bookkeeping, the
        ``events_processed`` accumulation, and the final clock advance.
        Dispatch order is identical to the classic loop: batch entries
        carry their original ``(time, priority, seq)`` keys, each is
        re-checked for cancellation at dispatch, and the guard pushes
        the undispatched tail back to the heap the moment the heap head
        would sort before it (a callback scheduled same-instant work
        that must interleave).
        """
        timer = _start_timer(self.counters)
        self._stop_requested = False
        processed = _run_fused(self, until)
        self._events_processed += processed
        clock = self.clock
        if not self._stop_requested and clock._now < until:
            clock.advance_to(until)
        _stop_timer(self.counters, timer, "engine.run_until", processed)
        return processed

    def run_until_idle(self, *, max_events: int = 10_000_000) -> int:
        """Run until the event queue is empty (bounded by ``max_events``)."""
        timer = _start_timer(self.counters)
        processed = 0
        self._stop_requested = False
        clock = self.clock
        tracer = self.tracer
        pop = self.queue.pop
        while not self._stop_requested:
            event = pop()
            if event is None:
                break
            if processed >= max_events:
                self._events_processed += processed
                raise SimulationError(
                    f"run_until_idle exceeded {max_events} events; "
                    "likely a self-rescheduling event loop"
                )
            clock._now = event.time
            if tracer.enabled:
                tracer.record(event.time, "event", event.tag)
            event.callback(event)
            processed += 1
        self._events_processed += processed
        _stop_timer(self.counters, timer, "engine.run_until_idle", processed)
        return processed


def _start_timer(counters: Optional["PerfCounters"]) -> Optional[float]:
    if counters is None:
        return None
    import time

    return time.perf_counter()


def _stop_timer(
    counters: Optional["PerfCounters"],
    started: Optional[float],
    name: str,
    events: int,
) -> None:
    if counters is None or started is None:
        return
    import time

    counters.add_time(name, time.perf_counter() - started)
    counters.incr("engine.events", events)
