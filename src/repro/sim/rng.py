"""Named, independently-seeded random-number streams.

Giving each stochastic component its own stream (derived from the master
seed and the stream name) means adding randomness to one component does
not perturb the draws seen by another — runs stay comparable across code
changes, which matters for regression-testing experiment shapes.
"""

from __future__ import annotations

import zlib

import numpy as np


class RngStreams:
    """Factory of per-component ``numpy.random.Generator`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream seed mixes the master seed with a CRC of the name, so
        streams are stable across runs and independent of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            mixed = (self._seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            gen = np.random.default_rng(mixed)
            self._streams[name] = gen
        return gen
