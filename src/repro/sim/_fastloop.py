"""The extracted dispatch core: heap pops and the fused run loop.

This module holds the innermost simulation hot path — the cancelled-
prefix heap pops (:func:`pop_ready`, :func:`pop_time_batch`) and the
fused same-instant drain (:func:`run_fused`) — factored out of
:class:`~repro.sim.event_queue.EventQueue` and
:class:`~repro.sim.engine.Engine` so it can optionally be **compiled**
with mypyc (``REPRO_COMPILED=1 pip install -e .``; see setup.py) while
staying byte-identical plain Python everywhere else.

Import it through :mod:`repro.sim.fastloop`, never directly: the
loader resolves the compiled extension when one was built, falls back
to this source otherwise, and reports which one loaded as
``ACTIVE_IMPL``.  Both implementations execute the exact same
statements in the exact same order — the backend matrix
(tests/perf/test_backend_matrix.py) and the fused-ordering tests
(tests/sim/test_event_ordering.py) hold over either, with no golden
refresh.

Rules for code in this file (mypyc discipline):

* no imports from the rest of ``repro`` — the compiled extension must
  load before (and independently of) every interpreted module;
* only plain functions over ordinary objects — classes defined here
  would become compiled classes with different subclassing semantics;
* annotations kept loose (``Any`` for engine/queue/event) so the
  compiled attribute access stays boxed and behaviorally identical to
  the interpreter's.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple


def pop_ready(queue: Any, until: int) -> Any:
    """Pop the next pending event firing at or before ``until``.

    The body of :meth:`EventQueue.pop_ready`: one cancelled-prefix scan
    fusing the peek + pop pair, marking the event fired and decrementing
    the queue's live count.  Returns None when the queue is empty or the
    next event fires after ``until``.
    """
    heap = queue._heap
    while heap:
        head = heap[0]
        if head[3].cancelled:
            heappop(heap)
            continue
        if head[0] > until:
            return None
        event = heappop(heap)[3]
        queue._live -= 1
        event.fired = True
        return event
    return None


def pop_time_batch(
    queue: Any, until: int
) -> Optional[List[Tuple[int, int, int, Any]]]:
    """Remove and return all pending entries at the earliest time.

    The body of :meth:`EventQueue.pop_time_batch`: entries keep their
    full ``(time, priority, seq)`` keys, are *not* marked fired, and
    still count as live — the fused loop commits them one by one so
    late cancellation keeps working.
    """
    heap = queue._heap
    while heap and heap[0][3].cancelled:
        heappop(heap)
    if not heap or heap[0][0] > until:
        return None
    first = heappop(heap)
    time = first[0]
    entries = [first]
    append = entries.append
    while heap:
        head = heap[0]
        if head[3].cancelled:
            heappop(heap)
            continue
        if head[0] != time:
            break
        append(heappop(heap))
    return entries


def _peek_key(queue: Any) -> Optional[Tuple[int, int, int]]:
    """``(time, priority, seq)`` of the next pending event, or None."""
    heap = queue._heap
    while heap and heap[0][3].cancelled:
        heappop(heap)
    if not heap:
        return None
    head = heap[0]
    return (head[0], head[1], head[2])


def push_back(queue: Any, entries: List[Tuple[int, int, int, Any]]) -> None:
    """Reinsert undispatched batch entries (original keys intact)."""
    heap = queue._heap
    for entry in entries:
        event = entry[3]
        if not event.cancelled and not event.fired:
            heappush(heap, entry)


def run_fused(engine: Any, until: int) -> int:
    """The fused same-instant drain loop of :meth:`Engine._run_until_fused`.

    All events sharing the earliest pending timestamp are drained in one
    heap pass and dispatched from a flat list with a single clock write
    per instant.  Dispatch order is identical to the classic loop: batch
    entries carry their original ``(time, priority, seq)`` keys, each is
    re-checked for cancellation at dispatch, and the order guard pushes
    the undispatched tail back to the heap the moment the heap head
    would sort before it (a callback scheduled same-instant work that
    must interleave).

    The caller (the engine) owns timer bookkeeping, the
    ``events_processed`` accumulation, and the final clock advance; this
    function returns the number of events dispatched.
    """
    processed = 0
    clock = engine.clock
    tracer = engine.tracer
    queue = engine.queue
    heap = queue._heap
    while not engine._stop_requested:
        entries = pop_time_batch(queue, until)
        if entries is None:
            break
        time = entries[0][0]
        clock._now = time
        fired = 0
        tail = None
        for i, entry in enumerate(entries):
            event = entry[3]
            if event.cancelled:
                continue  # cancelled by an earlier same-instant event
            if engine._stop_requested:
                tail = entries[i:]
                break
            if heap:
                head = heap[0]
                if head[0] == time or head[3].cancelled:
                    key = _peek_key(queue)
                    if key is not None and key < (time, entry[1], entry[2]):
                        # A callback scheduled same-instant work that
                        # sorts before the rest of the batch: fall back
                        # to the heap so it interleaves exactly as the
                        # classic loop would.
                        tail = entries[i:]
                        break
            event.fired = True
            fired += 1
            if tracer.enabled:
                tracer.record(time, "event", event.tag)
            event.callback(event)
        queue._live -= fired
        processed += fired
        if tail is not None:
            push_back(queue, tail)
    return processed
