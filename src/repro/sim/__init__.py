"""Discrete-event simulation substrate.

The simulator is a classic event-calendar design: an :class:`EventQueue`
orders :class:`Event` records by ``(time, priority, sequence)``, and the
:class:`Engine` pops and dispatches them while advancing a virtual
:class:`Clock`.  Everything above this layer (the simulated kernel, ALPS
agents, workloads, the web-server model) is built out of events.
"""

from repro.sim.clock import Clock
from repro.sim.engine import Engine
from repro.sim.event_queue import Event, EventHandle, EventQueue
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceRecord, Tracer

__all__ = [
    "Clock",
    "Engine",
    "Event",
    "EventHandle",
    "EventQueue",
    "RngStreams",
    "TraceRecord",
    "Tracer",
]
