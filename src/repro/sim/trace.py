"""Lightweight simulation tracing.

Tracing is off by default (the check is a single attribute read on the
hot path).  When enabled it records ``(time, kind, detail)`` tuples that
tests and debugging sessions can assert against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


@dataclass(slots=True, frozen=True)
class TraceRecord:
    """One trace entry: virtual time, a category, and free-form detail."""

    time: int
    kind: str
    detail: str


class Tracer:
    """Collects :class:`TraceRecord` entries when enabled."""

    def __init__(self, *, enabled: bool = True, capacity: int | None = None) -> None:
        self.enabled = enabled
        self._capacity = capacity
        self._records: list[TraceRecord] = []

    def record(self, time: int, kind: str, detail: str = "") -> None:
        """Append a record (drops silently once capacity is reached)."""
        if not self.enabled:
            return
        if self._capacity is not None and len(self._records) >= self._capacity:
            return
        self._records.append(TraceRecord(time, kind, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records of a given category."""
        return [r for r in self._records if r.kind == kind]

    def lines(self) -> list[str]:
        """Stable text serialization, one ``time kind detail`` line per
        record.  Used by the differential harness to compare traces
        byte-for-byte between kernel fast paths."""
        return [f"{r.time} {r.kind} {r.detail}" for r in self._records]

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
