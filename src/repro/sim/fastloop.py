"""Loader for the optionally-compiled dispatch core (:mod:`repro.sim._fastloop`).

``repro.sim._fastloop`` holds the innermost run-loop code — the heap
pops and the fused same-instant drain — written to be compilable with
mypyc.  This module resolves which implementation actually serves the
process:

* **compiled** — a mypyc-built extension module shadows
  ``_fastloop.py`` (built via ``REPRO_COMPILED=1 pip install -e .``;
  setup.py gates the mypycify call on that variable);
* **interpreted** — the plain-Python source, automatically selected
  when no compiled artifact is present.  No compiler, no dependency,
  no behavior change: both implementations execute the same statements
  in the same order, so every golden trace and fingerprint is
  byte-identical across them.

:data:`ACTIVE_IMPL` reports which one loaded (``"compiled"`` or
``"interpreted"``) — ``repro perf report`` prints it, and the
``substrate-resident`` CI job asserts it differs between its
pure-Python and compiled legs while the fingerprints stay identical.

Environment overrides:

* ``REPRO_FASTLOOP=interpreted`` forces the pure-Python source even
  when a compiled extension is installed (the fallback leg of CI);
* ``REPRO_FASTLOOP=compiled`` or ``REPRO_COMPILED=1`` makes import
  *fail* if the compiled extension is absent — the arming guard for
  environments that must not silently fall back.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from types import ModuleType

_COMPILED_SUFFIXES = (".so", ".pyd")


def _load_interpreted_source() -> ModuleType:
    """Load ``_fastloop.py`` from source, bypassing any compiled shadow."""
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "_fastloop.py")
    spec = importlib.util.spec_from_file_location(
        "repro.sim._fastloop_interpreted", path
    )
    if spec is None or spec.loader is None:  # pragma: no cover - defensive
        raise ImportError(f"cannot load fastloop source from {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def _resolve() -> tuple[ModuleType, str]:
    forced = os.environ.get("REPRO_FASTLOOP", "")
    require_compiled = forced == "compiled" or (
        os.environ.get("REPRO_COMPILED") == "1" and forced != "interpreted"
    )
    if forced == "interpreted":
        return _load_interpreted_source(), "interpreted"
    from repro.sim import _fastloop as impl

    compiled = getattr(impl, "__file__", "").endswith(_COMPILED_SUFFIXES)
    if require_compiled and not compiled:
        raise ImportError(
            "REPRO_FASTLOOP=compiled/REPRO_COMPILED=1 is set but "
            "repro.sim._fastloop is not a compiled extension; build it "
            "with `REPRO_COMPILED=1 pip install -e .` (requires mypyc) "
            "or unset the variable to use the pure-Python fallback"
        )
    return impl, ("compiled" if compiled else "interpreted")


_impl, ACTIVE_IMPL = _resolve()

#: The resolved hot-path functions (compiled or interpreted — same
#: semantics either way).  The engine and event queue bind these at
#: import, so the per-event path pays zero indirection.
pop_ready = _impl.pop_ready
pop_time_batch = _impl.pop_time_batch
push_back = _impl.push_back
run_fused = _impl.run_fused

__all__ = [
    "ACTIVE_IMPL",
    "pop_ready",
    "pop_time_batch",
    "push_back",
    "run_fused",
]
