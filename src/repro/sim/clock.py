"""Virtual clock for the discrete-event engine."""

from __future__ import annotations

from repro.errors import SimulationError


class Clock:
    """Monotonic virtual clock measured in integer microseconds.

    Only the :class:`~repro.sim.engine.Engine` should advance the clock;
    all other components read it through :attr:`now`.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current virtual time in microseconds."""
        return self._now

    def advance_to(self, when: int) -> None:
        """Advance the clock to ``when``.

        Raises :class:`SimulationError` if ``when`` is in the past; a
        discrete-event simulation must never move time backwards.
        """
        if when < self._now:
            raise SimulationError(
                f"clock cannot move backwards: now={self._now} target={when}"
            )
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Clock(now={self._now})"
