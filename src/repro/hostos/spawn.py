"""Spawning real workload child processes for the live backend."""

from __future__ import annotations

import subprocess
import sys

_SPINNER_SRC = (
    "import itertools\n"
    "x = 0\n"
    "for i in itertools.count():\n"
    "    x = (x + i) & 0xFFFFFFFF\n"
)

_IO_SRC_TEMPLATE = (
    "import time\n"
    "compute_s = {compute_s!r}\n"
    "sleep_s = {sleep_s!r}\n"
    "while True:\n"
    "    t0 = time.process_time()\n"
    "    x = 0\n"
    "    while time.process_time() - t0 < compute_s:\n"
    "        x = (x + 1) & 0xFFFFFFFF\n"
    "    time.sleep(sleep_s)\n"
)


def spawn_spinner() -> subprocess.Popen:
    """Start a compute-bound child (the paper's loop-counter workload)."""
    return subprocess.Popen(
        [sys.executable, "-c", _SPINNER_SRC],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def spawn_io_child(compute_s: float, sleep_s: float) -> subprocess.Popen:
    """Start a child alternating CPU bursts with sleeps (simulated I/O)."""
    return subprocess.Popen(
        [sys.executable, "-c", _IO_SRC_TEMPLATE.format(compute_s=compute_s, sleep_s=sleep_s)],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
