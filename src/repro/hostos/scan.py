"""Host process-table scanning (the kvm_getprocs equivalent).

The paper's Section 5 implementation used FreeBSD's
``kvm_getprocs(KERN_PROC_UID)`` to enumerate a user's processes once
per second.  On Linux the equivalent is a /proc scan; these helpers
provide it for :class:`~repro.hostos.groups.HostGroupAlps` membership
callbacks and for ad-hoc tooling.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.errors import HostOSError


def iter_pids() -> Iterator[int]:
    """All numeric entries of /proc (live pids at scan time)."""
    for entry in os.listdir("/proc"):
        if entry.isdigit():
            yield int(entry)


def uid_of(pid: int) -> int:
    """Real uid of ``pid`` (owner of its /proc directory)."""
    try:
        return os.stat(f"/proc/{pid}").st_uid
    except (FileNotFoundError, ProcessLookupError):
        raise HostOSError(f"no such process: {pid}") from None


def pids_of_uid(uid: int) -> list[int]:
    """All live pids owned by ``uid`` — kvm_getprocs(KERN_PROC_UID)."""
    out: list[int] = []
    for pid in iter_pids():
        try:
            if os.stat(f"/proc/{pid}").st_uid == uid:
                out.append(pid)
        except (FileNotFoundError, ProcessLookupError):
            continue  # raced with exit
    return out


def children_of(parent_pid: int) -> list[int]:
    """Live direct children of ``parent_pid`` (via /proc stat ppid).

    Useful for controlling everything a master process forked (the
    paper's alternative to per-user principals).
    """
    from repro.hostos.procfs import read_proc_stat

    out: list[int] = []
    for pid in iter_pids():
        try:
            raw = open(f"/proc/{pid}/stat", "rb").read().decode(
                "ascii", errors="replace"
            )
        except (FileNotFoundError, ProcessLookupError, PermissionError):
            continue
        rparen = raw.rindex(")")
        fields = raw[rparen + 2 :].split()
        # field 4 (ppid) is fields[1] after state.
        if int(fields[1]) == parent_pid:
            out.append(pid)
    return out
