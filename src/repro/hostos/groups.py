"""Group scheduling on the live backend (Section 5 parity).

The paper's shared-web-server experiment treats *a set of processes*
(all processes of a user) as one resource principal.  ``HostGroupAlps``
does the same over real Linux processes: each group of pids shares one
allocation; consumption is summed across members, and the whole group
is stopped/resumed together.  Membership may be refreshed via a
callback (e.g. re-enumerating a user's processes) once per refresh
interval, mirroring the paper's once-per-second ``kvm_getprocs`` scan.
"""

from __future__ import annotations

import os
import signal
import time
from typing import Callable, Mapping, Optional

from repro.alps.algorithm import AlpsCore, Measurement
from repro.errors import HostOSError
from repro.hostos import procfs
from repro.hostos.controller import HostAlpsReport

MembershipCallback = Callable[[int], list[int]]


class HostGroupAlps:
    """User-level proportional share over *groups* of real processes."""

    def __init__(
        self,
        group_shares: Mapping[int, int],
        group_pids: Mapping[int, list[int]],
        *,
        quantum_s: float = 0.1,
        optimized: bool = True,
        track_io: bool = True,
        refresh_s: float = 1.0,
        membership: Optional[MembershipCallback] = None,
    ) -> None:
        if quantum_s <= 0:
            raise HostOSError(f"quantum must be positive, got {quantum_s}")
        if set(group_shares) != set(group_pids):
            raise HostOSError("group_shares and group_pids must share keys")
        self.quantum_us = int(quantum_s * 1_000_000)
        self.track_io = track_io
        self.refresh_s = refresh_s
        self.membership = membership
        self.core = AlpsCore(
            dict(group_shares),
            self.quantum_us,
            optimized=optimized,
            now_fn=lambda: int(time.monotonic() * 1_000_000),
        )
        self.group_pids: dict[int, list[int]] = {
            gid: list(pids) for gid, pids in group_pids.items()
        }
        self._last_read: dict[int, int] = {}
        self._stopped: set[int] = set()
        self._initial: dict[int, int] = {}

    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> HostAlpsReport:
        """Control the groups for ``duration_s`` seconds."""
        t_start = time.monotonic()
        own_cpu_start = time.process_time()
        for pids in self.group_pids.values():
            for pid in list(pids):
                try:
                    usage = procfs.cpu_time_us(pid)
                except HostOSError:
                    pids.remove(pid)
                    continue
                self._last_read[pid] = usage
                self._initial[pid] = usage
        deadline = t_start + duration_s
        next_refresh = t_start + self.refresh_s
        boundary = t_start + self.quantum_us / 1_000_000
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                if boundary > now:
                    time.sleep(boundary - now)
                now = time.monotonic()
                q_s = self.quantum_us / 1_000_000
                missed = int((now - boundary) / q_s)
                boundary += (missed + 1) * q_s
                if self.membership is not None and now >= next_refresh:
                    self._refresh()
                    next_refresh = now + self.refresh_s
                self._one_quantum()
        finally:
            self._resume_all()
        t_end = time.monotonic()
        own_cpu_us = int((time.process_time() - own_cpu_start) * 1_000_000)
        consumed = {}
        for pid, start in self._initial.items():
            final = self._last_read.get(pid, start)
            try:
                final = procfs.cpu_time_us(pid)
            except HostOSError:
                pass
            consumed[pid] = final - start
        return HostAlpsReport(
            duration_s=t_end - t_start,
            cycles=self.core.cycles_completed,
            cycle_log=self.core.cycle_log,
            consumed_us=consumed,
            controller_cpu_us=own_cpu_us,
        )

    def group_consumed(self, report: HostAlpsReport) -> dict[int, int]:
        """Aggregate a report's per-pid consumption by group."""
        out = {gid: 0 for gid in self.group_pids}
        for gid, pids in self.group_pids.items():
            for pid in pids:
                out[gid] += report.consumed_us.get(pid, 0)
        return out

    # ------------------------------------------------------------------
    def _refresh(self) -> None:
        assert self.membership is not None
        for gid in list(self.group_pids):
            try:
                new = sorted(self.membership(gid))
            except Exception:
                continue
            old = set(self.group_pids[gid])
            self.group_pids[gid] = new
            for pid in set(new) - old:
                try:
                    usage = procfs.cpu_time_us(pid)
                except HostOSError:
                    continue
                self._last_read[pid] = usage
                self._initial.setdefault(pid, usage)
                # Newcomers inherit the group's eligibility.
                if gid in self.core.subjects and not self.core.subjects[gid].eligible:
                    self._signal(pid, signal.SIGSTOP)
            for pid in old - set(new):
                self._last_read.pop(pid, None)
                self._stopped.discard(pid)

    def _one_quantum(self) -> None:
        due = self.core.begin_quantum()
        measurements: dict[int, Measurement] = {}
        for gid in due:
            consumed = 0
            blocked_votes: list[bool] = []
            for pid in list(self.group_pids.get(gid, ())):
                try:
                    stat = procfs.read_proc_stat(pid)
                except HostOSError:
                    self.group_pids[gid].remove(pid)
                    self._stopped.discard(pid)
                    continue
                usage = stat.cpu_time_us
                consumed += usage - self._last_read.get(pid, usage)
                self._last_read[pid] = usage
                blocked_votes.append(stat.state in ("S", "D"))
            blocked = (
                self.track_io and bool(blocked_votes) and all(blocked_votes)
            )
            measurements[gid] = Measurement(consumed_us=consumed, blocked=blocked)
        decisions = self.core.complete_quantum(measurements)
        for gid in decisions.to_suspend:
            for pid in self.group_pids.get(gid, ()):
                self._signal(pid, signal.SIGSTOP)
        for gid in decisions.to_resume:
            for pid in self.group_pids.get(gid, ()):
                if pid in self._stopped:
                    self._signal(pid, signal.SIGCONT)

    def _signal(self, pid: int, signo: int) -> None:
        try:
            os.kill(pid, signo)
        except ProcessLookupError:
            self._stopped.discard(pid)
            return
        if signo == signal.SIGSTOP:
            self._stopped.add(pid)
        else:
            self._stopped.discard(pid)

    def _resume_all(self) -> None:
        for pid in list(self._stopped):
            try:
                os.kill(pid, signal.SIGCONT)
            except ProcessLookupError:
                pass
            self._stopped.discard(pid)
