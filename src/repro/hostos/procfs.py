"""Minimal /proc parsing (the Linux stand-in for getrusage-of-others/kvm).

Only what ALPS needs: per-process CPU time, run state, and wait-channel
style "is it blocked" inspection.  No psutil dependency — the fields
are read straight from ``/proc/<pid>/stat``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import HostOSError

#: Kernel clock ticks per second (USER_HZ); utime/stime are in these.
CLK_TCK = os.sysconf("SC_CLK_TCK") if hasattr(os, "sysconf") else 100
_US_PER_TICK = 1_000_000 // int(CLK_TCK)


@dataclass(slots=True, frozen=True)
class ProcStat:
    """Parsed subset of ``/proc/<pid>/stat``."""

    pid: int
    comm: str
    state: str
    utime_ticks: int
    stime_ticks: int

    @property
    def cpu_time_us(self) -> int:
        """User + system CPU time in microseconds (tick resolution)."""
        return (self.utime_ticks + self.stime_ticks) * _US_PER_TICK


def parse_stat_line(raw: str) -> ProcStat:
    """Parse one ``/proc/<pid>/stat`` line.

    The ``comm`` field may contain spaces and parentheses, so the line
    is split at the *last* closing parenthesis (the kernel's own
    convention for unambiguous parsing).
    """
    try:
        lparen = raw.index("(")
        rparen = raw.rindex(")")
        pid = int(raw[:lparen].strip())
        comm = raw[lparen + 1 : rparen]
        rest = raw[rparen + 2 :].split()
        # rest[0] is the state; utime/stime are stat fields 14/15, i.e.
        # rest[11]/rest[12] after the pid/comm/state offsets.
        return ProcStat(
            pid=pid,
            comm=comm,
            state=rest[0],
            utime_ticks=int(rest[11]),
            stime_ticks=int(rest[12]),
        )
    except (ValueError, IndexError) as exc:
        raise HostOSError(f"malformed stat line: {raw!r}") from exc


def read_proc_stat(pid: int) -> ProcStat:
    """Read and parse ``/proc/<pid>/stat``.

    Raises :class:`HostOSError` if the process does not exist.
    """
    try:
        with open(f"/proc/{pid}/stat", "rb") as f:
            raw = f.read().decode("ascii", errors="replace")
    except FileNotFoundError:
        raise HostOSError(f"no such process: {pid}") from None
    except ProcessLookupError:  # pragma: no cover - race
        raise HostOSError(f"no such process: {pid}") from None
    return parse_stat_line(raw)


def cpu_time_us(pid: int) -> int:
    """Total CPU time (µs) consumed by ``pid``."""
    return read_proc_stat(pid).cpu_time_us


def proc_state(pid: int) -> str:
    """One-letter run state (R, S, D, T, Z, ...)."""
    return read_proc_stat(pid).state


def is_blocked(pid: int) -> bool:
    """True if the process is sleeping on an event (S or D state).

    A job-control stopped process (T) is *not* blocked — ALPS stopped
    it itself.
    """
    return proc_state(pid) in ("S", "D")


def is_alive(pid: int) -> bool:
    """True if the pid names an existing process."""
    return os.path.exists(f"/proc/{pid}/stat")
