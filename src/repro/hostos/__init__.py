"""Real-OS backend: ALPS as an actual user-level scheduler on Linux.

The paper's implementation runs on FreeBSD using getrusage/kvm and
SIGSTOP/SIGCONT.  This backend is the Linux equivalent: CPU time and
blocked-state come from ``/proc/<pid>/stat``, eligibility is enacted
with real signals, and the controller is the same
:class:`~repro.alps.algorithm.AlpsCore` used in simulation.

Calibration note: Python's sampling-loop timing is the weak point of a
live reproduction (jitter of the interpreter and of ``time.sleep`` is
a significant fraction of small quanta), so quantitative experiments
use the simulator; this backend demonstrates the system end-to-end and
feeds the Table 1 micro-benchmarks.
"""

from repro.hostos.controller import HostAlps, HostAlpsReport
from repro.hostos.groups import HostGroupAlps
from repro.hostos.procfs import (
    cpu_time_us,
    is_alive,
    is_blocked,
    proc_state,
    read_proc_stat,
)
from repro.hostos.spawn import spawn_io_child, spawn_spinner

__all__ = [
    "HostAlps",
    "HostAlpsReport",
    "HostGroupAlps",
    "cpu_time_us",
    "is_alive",
    "is_blocked",
    "proc_state",
    "read_proc_stat",
    "spawn_io_child",
    "spawn_spinner",
]
