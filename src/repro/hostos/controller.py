"""A real user-level ALPS controller for Linux.

Drives the same :class:`~repro.alps.algorithm.AlpsCore` as the
simulator, but against live processes: progress comes from
``/proc/<pid>/stat``, eligibility is enacted with SIGSTOP/SIGCONT, and
the quantum timer is an absolute-deadline sleep loop.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.instrumentation import CycleLog
from repro.errors import HostOSError
from repro.hostos import procfs


@dataclass(slots=True)
class HostAlpsReport:
    """Outcome of a live run."""

    duration_s: float
    cycles: int
    cycle_log: CycleLog
    #: CPU time (µs) each controlled pid consumed during the run.
    consumed_us: dict[int, int]
    #: The controller's own CPU time (µs) — the overhead numerator.
    controller_cpu_us: int

    def fractions(self) -> dict[int, float]:
        """Fraction of group CPU each pid received."""
        total = sum(self.consumed_us.values())
        if total == 0:
            return {pid: 0.0 for pid in self.consumed_us}
        return {pid: c / total for pid, c in self.consumed_us.items()}

    @property
    def overhead_fraction(self) -> float:
        """Controller CPU / wall time."""
        if self.duration_s <= 0:
            return 0.0
        return self.controller_cpu_us / (self.duration_s * 1_000_000)


class HostAlps:
    """User-level proportional-share scheduler over real pids.

    Note: quanta below ~20 ms are dominated by Python/sleep jitter and
    by the tick resolution of /proc CPU accounting; the simulator is
    the instrument for quantitative claims (see package docstring).

    Robustness (docs/fault_model.md): transient procfs read errors are
    retried within ``read_retry_budget`` before a pid is declared dead;
    ``_signal`` discriminates a vanished process (ESRCH — forget it)
    from one we may not signal (EPERM — stop scheduling it, it cannot
    be controlled); and exit always runs :meth:`_resume_all`, which
    resumes by *kernel truth* (any controlled pid in procfs state
    ``T``), not just the controller's own stop-set, so a crash between
    a SIGSTOP and its bookkeeping cannot wedge a process.
    """

    def __init__(
        self,
        shares: Mapping[int, int],
        *,
        quantum_s: float = 0.05,
        optimized: bool = True,
        track_io: bool = True,
        read_retry_budget: int = 2,
    ) -> None:
        if quantum_s <= 0:
            raise HostOSError(f"quantum must be positive, got {quantum_s}")
        if read_retry_budget < 0:
            raise HostOSError(
                f"read_retry_budget must be >= 0, got {read_retry_budget}"
            )
        self.quantum_us = int(quantum_s * 1_000_000)
        self.track_io = track_io
        self.read_retry_budget = read_retry_budget
        self.core = AlpsCore(
            dict(shares),
            self.quantum_us,
            optimized=optimized,
            now_fn=lambda: int(time.monotonic() * 1_000_000),
        )
        self._last_read: dict[int, int] = {}
        self._stopped: set[int] = set()
        self._initial: dict[int, int] = {}
        #: pids dropped because the controller may not signal them (EPERM).
        self.uncontrollable: set[int] = set()
        #: Transient procfs reads that needed a retry (statistics).
        self.read_retries = 0

    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> HostAlpsReport:
        """Control the processes for ``duration_s`` seconds.

        All controlled processes are resumed (SIGCONT) on the way out,
        even if the run raises.
        """
        t_start = time.monotonic()
        own_cpu_start = time.process_time()
        for pid in list(self.core.subjects):
            try:
                usage = procfs.cpu_time_us(pid)
            except HostOSError:
                self.core.remove_subject(pid)
                continue
            self._last_read[pid] = usage
            self._initial[pid] = usage
        deadline = t_start + duration_s
        boundary = t_start + self.quantum_us / 1_000_000
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                if boundary > now:
                    time.sleep(boundary - now)
                # Skip past any boundaries we overslept.
                now = time.monotonic()
                q_s = self.quantum_us / 1_000_000
                missed = int((now - boundary) / q_s)
                boundary += (missed + 1) * q_s
                self._one_quantum()
        finally:
            self._resume_all()
        t_end = time.monotonic()
        own_cpu_us = int((time.process_time() - own_cpu_start) * 1_000_000)
        consumed = {}
        for pid, start in self._initial.items():
            try:
                final = procfs.cpu_time_us(pid)
            except HostOSError:
                # Process died mid-run: its last successful reading is
                # the best (and an under-) estimate of what it consumed.
                final = self._last_read.get(pid, start)
            consumed[pid] = final - start
        return HostAlpsReport(
            duration_s=t_end - t_start,
            cycles=self.core.cycles_completed,
            cycle_log=self.core.cycle_log,
            consumed_us=consumed,
            controller_cpu_us=own_cpu_us,
        )

    # ------------------------------------------------------------------
    def _one_quantum(self) -> None:
        due = self.core.begin_quantum()
        measurements: dict[int, Measurement] = {}
        for pid in due:
            stat = self._read_stat_with_retry(pid)
            if stat is None:
                # Process died: remove it from scheduling.
                self._drop_subject(pid)
                continue
            usage = stat.cpu_time_us
            consumed = usage - self._last_read.get(pid, usage)
            if consumed < 0:
                consumed = 0  # never charge a backwards-running counter
            self._last_read[pid] = usage
            blocked = self.track_io and stat.state in ("S", "D")
            measurements[pid] = Measurement(consumed_us=consumed, blocked=blocked)
        decisions = self.core.complete_quantum(measurements)
        for pid in decisions.to_suspend:
            self._signal(pid, signal.SIGSTOP)
        for pid in decisions.to_resume:
            self._signal(pid, signal.SIGCONT)

    def _read_stat_with_retry(self, pid: int):
        """Read ``/proc/<pid>/stat``, retrying transient failures.

        A read that fails while the pid still exists (EAGAIN-style
        glitch, torn read) is retried up to ``read_retry_budget``
        times; only a pid that is actually gone returns None.
        """
        for attempt in range(self.read_retry_budget + 1):
            try:
                return procfs.read_proc_stat(pid)
            except HostOSError:
                if not procfs.is_alive(pid):
                    return None
                if attempt < self.read_retry_budget:
                    self.read_retries += 1
        return None

    def _drop_subject(self, pid: int) -> None:
        """Stop scheduling ``pid`` (death or EPERM)."""
        if pid in self.core.subjects:
            self.core.remove_subject(pid)
        self._stopped.discard(pid)

    def _signal(self, pid: int, signo: int) -> None:
        try:
            os.kill(pid, signo)
        except ProcessLookupError:  # ESRCH: gone — forget it
            self._stopped.discard(pid)
            return
        except PermissionError:  # EPERM: alive but not ours to control
            self.uncontrollable.add(pid)
            self._drop_subject(pid)
            return
        if signo == signal.SIGSTOP:
            self._stopped.add(pid)
        else:
            self._stopped.discard(pid)

    def _resume_all(self) -> None:
        """Resume every process this controller may have stopped.

        Consults kernel truth in addition to the stop-set: any pid the
        controller ever scheduled that sits in procfs state ``T`` gets
        a SIGCONT, covering pids stopped right before an exception (or
        under bookkeeping lost to a crash).
        """
        candidates = set(self._stopped) | set(self._initial)
        candidates.update(self.core.subjects)
        for pid in candidates:
            if pid not in self._stopped:
                try:
                    if procfs.proc_state(pid) != "T":
                        continue
                except HostOSError:
                    continue
            try:
                os.kill(pid, signal.SIGCONT)
            except (ProcessLookupError, PermissionError):
                pass
            self._stopped.discard(pid)
