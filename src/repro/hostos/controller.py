"""A real user-level ALPS controller for Linux.

Drives the same :class:`~repro.alps.algorithm.AlpsCore` as the
simulator, but against live processes: progress comes from
``/proc/<pid>/stat``, eligibility is enacted with SIGSTOP/SIGCONT, and
the quantum timer is an absolute-deadline sleep loop.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping, Optional

from repro.alps.algorithm import AlpsCore, Measurement
from repro.alps.instrumentation import CycleLog
from repro.errors import (
    HostOSError,
    JournalCorruptError,
    SchedulerConfigError,
)
from repro.hostos import procfs
from repro.overload.ladder import Rung
from repro.resilience.journal import (
    SNAPSHOT_VERSION,
    core_snapshot,
    drain_debt,
    restore_core,
    schedule_debt,
    validate_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer
    from repro.overload.guard import OverloadGuard
    from repro.resilience.journal import FileJournal
    from repro.sharetree.tree import ShareNode, ShareTree


@dataclass(slots=True)
class HostAlpsReport:
    """Outcome of a live run."""

    duration_s: float
    cycles: int
    cycle_log: CycleLog
    #: CPU time (µs) each controlled pid consumed during the run.
    consumed_us: dict[int, int]
    #: The controller's own CPU time (µs) — the overhead numerator.
    controller_cpu_us: int
    #: Overload-guard counters (None when no guard was attached).
    overload_stats: Optional[dict] = None

    def fractions(self) -> dict[int, float]:
        """Fraction of group CPU each pid received."""
        total = sum(self.consumed_us.values())
        if total == 0:
            return {pid: 0.0 for pid in self.consumed_us}
        return {pid: c / total for pid, c in self.consumed_us.items()}

    @property
    def overhead_fraction(self) -> float:
        """Controller CPU / wall time."""
        if self.duration_s <= 0:
            return 0.0
        return self.controller_cpu_us / (self.duration_s * 1_000_000)


class HostAlps:
    """User-level proportional-share scheduler over real pids.

    Note: quanta below ~20 ms are dominated by Python/sleep jitter and
    by the tick resolution of /proc CPU accounting; the simulator is
    the instrument for quantitative claims (see package docstring).

    Robustness (docs/fault_model.md): transient procfs read errors are
    retried within ``read_retry_budget`` before a pid is declared dead;
    ``_signal`` discriminates a vanished process (ESRCH — forget it)
    from one we may not signal (EPERM — stop scheduling it, it cannot
    be controlled); and exit always runs :meth:`_resume_all`, which
    resumes by *kernel truth* (any controlled pid in procfs state
    ``T``), not just the controller's own stop-set, so a crash between
    a SIGSTOP and its bookkeeping cannot wedge a process.
    """

    def __init__(
        self,
        shares: Mapping[int, int],
        *,
        quantum_s: float = 0.05,
        optimized: bool = True,
        track_io: bool = True,
        read_retry_budget: int = 2,
        resume_retry_budget: int = 3,
        journal: Optional["FileJournal"] = None,
        observer: Optional["Observer"] = None,
        overload: Optional["OverloadGuard"] = None,
        sharetree: Optional["ShareTree"] = None,
    ) -> None:
        if quantum_s <= 0:
            raise HostOSError(f"quantum must be positive, got {quantum_s}")
        if read_retry_budget < 0:
            raise HostOSError(
                f"read_retry_budget must be >= 0, got {read_retry_budget}"
            )
        if resume_retry_budget < 0:
            raise HostOSError(
                f"resume_retry_budget must be >= 0, got {resume_retry_budget}"
            )
        self.quantum_us = int(quantum_s * 1_000_000)
        self.track_io = track_io
        self.read_retry_budget = read_retry_budget
        self.resume_retry_budget = resume_retry_budget
        self.journal = journal
        self.observer = observer
        self.core = AlpsCore(
            dict(shares),
            self.quantum_us,
            optimized=optimized,
            now_fn=lambda: int(time.monotonic() * 1_000_000),
        )
        self._last_read: dict[int, int] = {}
        self._stopped: set[int] = set()
        self._initial: dict[int, int] = {}
        #: pids dropped because the controller may not signal them (EPERM).
        self.uncontrollable: set[int] = set()
        #: Transient procfs reads that needed a retry (statistics).
        self.read_retries = 0
        #: SIGCONTs retried after a transient EINTR/EAGAIN failure.
        self.resume_retries = 0
        #: pids the controller could not resume within its retry budget.
        self.resume_failures = 0
        #: Whether state was replayed from the journal (crash recovery).
        self.recovered = False
        #: Downtime CPU debt (µs) per pid awaiting amortized repayment.
        self._deferred_debt: dict[int, int] = {}
        #: Overload protection (docs/overload.md).  The guard's state is
        #: volatile by design: after a journaled restart protection
        #: re-engages from fresh slip evidence rather than replaying the
        #: pre-crash ladder position.
        self.overload = overload
        #: Shares of pids currently shed to best-effort (pid -> share).
        self._shed_shares: dict[int, int] = {}
        self._prev_wake_us: Optional[int] = None
        self._wake_cadence_us = self.quantum_us
        #: Hierarchical share tree (docs/share_tree.md); leaf sids are
        #: pids on the host.  A flat-equivalent tree resolves to the raw
        #: shares verbatim, so attaching it changes nothing.
        self.sharetree = sharetree
        if sharetree is not None:
            self.reweigh_from_tree()

    # ------------------------------------------------------------------
    def run(self, duration_s: float) -> HostAlpsReport:
        """Control the processes for ``duration_s`` seconds.

        All controlled processes are resumed (SIGCONT) on the way out,
        even if the run raises.
        """
        t_start = time.monotonic()
        own_cpu_start = time.process_time()
        for pid in list(self.core.subjects):
            if pid in self._initial and pid in self._last_read:
                # Journal-restored: the outage debt was already charged
                # (capped) at restore time, and _initial keeps lifetime
                # consumption accounting spanning the crash.
                continue
            try:
                usage = procfs.cpu_time_us(pid)
            except HostOSError:
                self.core.remove_subject(pid)
                continue
            self._last_read[pid] = usage
            self._initial[pid] = usage
        deadline = t_start + duration_s
        boundary = t_start + self.quantum_us / 1_000_000
        try:
            while True:
                now = time.monotonic()
                if now >= deadline:
                    break
                if boundary > now:
                    time.sleep(boundary - now)
                # Skip past any boundaries we overslept.
                now = time.monotonic()
                guard = self.overload
                if guard is not None:
                    # Cadence slip: the gap between consecutive wakes
                    # minus the stride we intended when we went to sleep.
                    # Wake *dispatch* is usually prompt even under load;
                    # starvation shows as the whole loop iteration (reads,
                    # signals, the sleep) taking longer than the stride.
                    now_us = int(now * 1_000_000)
                    prev = self._prev_wake_us
                    self._prev_wake_us = now_us
                    if prev is not None:
                        delta = guard.observe_wake(
                            now_us - prev - self._wake_cadence_us,
                            self.quantum_us,
                        )
                        if delta:
                            self._apply_ladder(delta)
                    if guard.admission.depth and not guard.admission_paused:
                        self._drain_admissions()
                tree = self.sharetree
                if (
                    tree is not None
                    and tree._gates
                    and tree.pending_admissions
                ):
                    self._drain_tree_admissions()
                q_s = self.quantum_us / 1_000_000
                stride_s = q_s
                if guard is not None:
                    stride_s = q_s * guard.stretch_factor
                missed = int((now - boundary) / stride_s)
                boundary += (missed + 1) * stride_s
                self._wake_cadence_us = int(stride_s * 1_000_000)
                self._one_quantum()
        finally:
            self._resume_all()
        t_end = time.monotonic()
        own_cpu_us = int((time.process_time() - own_cpu_start) * 1_000_000)
        consumed = {}
        for pid, start in self._initial.items():
            try:
                final = procfs.cpu_time_us(pid)
            except HostOSError:
                # Process died mid-run: its last successful reading is
                # the best (and an under-) estimate of what it consumed.
                final = self._last_read.get(pid, start)
            consumed[pid] = final - start
        return HostAlpsReport(
            duration_s=t_end - t_start,
            cycles=self.core.cycles_completed,
            cycle_log=self.core.cycle_log,
            consumed_us=consumed,
            controller_cpu_us=own_cpu_us,
            overload_stats=(
                self.overload.stats() if self.overload is not None else None
            ),
        )

    # ------------------------------------------------------------------
    def _one_quantum(self) -> None:
        due = self.core.begin_quantum()
        measurements: dict[int, Measurement] = {}
        for pid in due:
            stat = self._read_stat_with_retry(pid)
            if stat is None:
                # Process died: remove it from scheduling.
                self._drop_subject(pid)
                continue
            usage = stat.cpu_time_us
            consumed = usage - self._last_read.get(pid, usage)
            if consumed < 0:
                consumed = 0  # never charge a backwards-running counter
            self._last_read[pid] = usage
            if self._deferred_debt:
                # Post-crash repayment: a share-proportional sliver of
                # the outage debt rides on top of measured consumption.
                st = self.core.subjects.get(pid)
                if st is not None:
                    consumed += drain_debt(
                        self._deferred_debt, pid, st.share,
                        self.quantum_us, self.core.total_shares,
                    )
            blocked = self.track_io and stat.state in ("S", "D")
            measurements[pid] = Measurement(consumed_us=consumed, blocked=blocked)
        decisions = self.core.complete_quantum(measurements)
        if self.journal is not None:
            # Write-ahead: the snapshot is durable before the signals it
            # encodes are sent.
            self.journal.append(self.snapshot_state())
        for pid in decisions.to_suspend:
            self._signal(pid, signal.SIGSTOP)
        for pid in decisions.to_resume:
            self._signal(pid, signal.SIGCONT)

    # ------------------------------------------------------------------
    # Overload protection (docs/overload.md)
    # ------------------------------------------------------------------
    def submit_pid(
        self, pid: int, share: int, *, path: Optional[str] = None
    ) -> bool:
        """Offer a new pid to the group through admission control.

        Without a guard (or with spare capacity) the pid joins the
        enforced set immediately; otherwise it waits in the FIFO
        admission queue and drains at a later wake.  Returns True when
        admitted immediately.

        With a share tree attached, ``path`` places the arrival in the
        tree and routes it through its subtree's *own* admission gate
        (nearest gated ancestor; docs/share_tree.md) instead of the
        whole-group queue — the same composition as the sim agent's
        ``submit_subject(path=...)``.
        """
        if share < 1:
            raise HostOSError(f"share must be >= 1, got {share}")
        if path is not None:
            if self.sharetree is None:
                raise HostOSError(
                    "submit_pid(path=...) requires an attached share tree"
                )
            return self._submit_tree_pid(pid, share, path)
        guard = self.overload
        if guard is None:
            return self._admit_pid(pid, share)
        admitted = guard.admission.submit(
            (pid, share), len(self.core.subjects), paused=guard.admission_paused
        )
        if admitted:
            self._admit_pid(pid, share)
            self._emit_overload("overload.admitted", pid=pid)
        else:
            self._emit_overload(
                "overload.queued", pid=pid, depth=guard.admission.depth
            )
        return admitted

    def _admit_pid(self, pid: int, share: int) -> bool:
        """Add a live pid to the enforced set; False if it is gone."""
        try:
            usage = procfs.cpu_time_us(pid)
        except HostOSError:
            return False
        self.core.add_subject(pid, share)
        self._last_read[pid] = usage
        self._initial.setdefault(pid, usage)
        return True

    def _drain_admissions(self) -> None:
        """Admit queued arrivals into spare capacity."""
        guard = self.overload
        ready = guard.admission.admit_ready(
            len(self.core.subjects), paused=guard.admission_paused
        )
        for pid, share in ready:
            if self._admit_pid(pid, share):
                self._emit_overload("overload.admitted", pid=pid)

    # ------------------------------------------------------------------
    # Hierarchical share tree (docs/share_tree.md)
    # ------------------------------------------------------------------
    def reweigh_from_tree(self) -> None:
        """Re-apply the tree's effective shares to the core.

        ``AlpsCore.set_share`` early-outs on a zero delta, so this is
        free whenever the resolved shares already match — the
        flat-equivalence case.
        """
        tree = self.sharetree
        if tree is None:
            return
        core_subjects = self.core.subjects
        for pid, share in tree.effective_shares().items():
            if pid in core_subjects:
                self.core.set_share(pid, share)

    def set_tree_weight(self, path: str, weight: int) -> None:
        """Reweight a tree node; every descendant leaf follows."""
        tree = self.sharetree
        if tree is None:
            raise HostOSError("no share tree attached")
        tree.set_weight(path, weight)
        self.reweigh_from_tree()

    def _active_leaves_under(self, gate: "ShareNode") -> int:
        """Admitted members of a gated subtree (its enforced count)."""
        tree = self.sharetree
        assert tree is not None
        core_subjects = self.core.subjects
        return sum(
            1 for leaf in tree.leaves(gate) if leaf.sid in core_subjects
        )

    def _submit_tree_pid(self, pid: int, share: int, path: str) -> bool:
        """Route an arrival through its subtree's admission gate.

        The leaf is only created in the tree once admitted — a queued
        arrival must not dilute its siblings' effective shares while
        it waits.  Queue entries are ``(pid, share, path)`` triples.
        """
        tree = self.sharetree
        assert tree is not None
        parent = tree.node(path.rpartition("/")[0])
        gate = tree.admission_for(parent)
        if gate is not None:
            assert gate.admission is not None
            admitted = gate.admission.submit(
                (pid, share, path), self._active_leaves_under(gate)
            )
            if not admitted:
                self._emit_overload(
                    "sharetree.queued", pid=pid, path=path,
                    depth=gate.admission.depth,
                )
                return False
        tree.leaf(path, sid=pid, weight=share)
        if not self._admit_pid(pid, share):
            tree.remove(path)  # died before admission
            return False
        self.reweigh_from_tree()
        self._emit_overload("sharetree.admitted", pid=pid, path=path)
        return True

    def _drain_tree_admissions(self) -> None:
        """Admit queued subtree arrivals into spare capacity (per gate)."""
        tree = self.sharetree
        assert tree is not None
        admitted_any = False
        for gate in tree.gates():
            queue = gate.admission
            if queue is None or not queue.depth:
                continue
            for pid, share, path in queue.admit_ready(
                self._active_leaves_under(gate)
            ):
                try:
                    tree.leaf(path, sid=pid, weight=share)
                except SchedulerConfigError:
                    continue  # its branch vanished while it waited
                if not self._admit_pid(pid, share):
                    tree.remove(path)
                    continue
                admitted_any = True
                self._emit_overload("sharetree.admitted", pid=pid, path=path)
        if admitted_any:
            self.reweigh_from_tree()

    def _apply_ladder(self, delta: int) -> None:
        """Enact a ladder transition (same order as the sim agent)."""
        guard = self.overload
        self.core.postpone_boost = guard.postpone_boost
        self._emit_overload(
            "overload.engage" if delta > 0 else "overload.relax",
            rung=int(guard.rung),
            slip_ewma_quanta=round(guard.slip.ewma_quanta, 3),
        )
        if delta > 0 and guard.rung >= Rung.SHED:
            self._shed_members()
        elif delta < 0 and guard.rung < Rung.SHED and guard.shed_sids:
            self._readmit_shed()

    def _shed_members(self) -> None:
        """SHED rung: release the lowest-share tail to best-effort."""
        guard = self.overload
        quota = guard.shed_quota(len(self.core.subjects))
        if quota <= 0:
            return
        shares = {pid: st.share for pid, st in self.core.subjects.items()}
        for pid in guard.select_shed(shares, quota):
            state = self.core.remove_subject(pid)
            self._shed_shares[pid] = state.share
            guard.note_shed(pid)
            # Best-effort means the kernel schedules it, not us.
            if pid in self._stopped and self._resume_one(pid):
                self._stopped.discard(pid)
            self._emit_overload("overload.shed", pid=pid)

    def _readmit_shed(self) -> None:
        """Walking back below SHED: return the shed tail to enforcement.

        Best-effort consumption while shed is deliberately forgiven —
        the read baseline restarts at the current procfs value and the
        pid rejoins with a full allowance like any other arrival.
        """
        guard = self.overload
        for pid in list(guard.shed_sids):
            share = self._shed_shares.pop(pid, None)
            if share is None or not self._admit_pid(pid, share):
                guard.note_departed(pid)
                continue
            guard.note_readmitted(pid)
            self._emit_overload("overload.readmit", pid=pid)

    def _emit_overload(self, name: str, **fields) -> None:
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.events.emit(int(time.monotonic() * 1_000_000), name, **fields)

    def _read_stat_with_retry(self, pid: int):
        """Read ``/proc/<pid>/stat``, retrying transient failures.

        A read that fails while the pid still exists (EAGAIN-style
        glitch, torn read) is retried up to ``read_retry_budget``
        times; only a pid that is actually gone returns None.
        """
        for attempt in range(self.read_retry_budget + 1):
            try:
                return procfs.read_proc_stat(pid)
            except HostOSError:
                if not procfs.is_alive(pid):
                    return None
                if attempt < self.read_retry_budget:
                    self.read_retries += 1
        return None

    def _drop_subject(self, pid: int) -> None:
        """Stop scheduling ``pid`` (death or EPERM)."""
        if pid in self.core.subjects:
            self.core.remove_subject(pid)
        self._stopped.discard(pid)
        tree = self.sharetree
        if tree is not None and tree.discard_sid(pid):
            self.reweigh_from_tree()

    def _signal(self, pid: int, signo: int) -> None:
        try:
            os.kill(pid, signo)
        except ProcessLookupError:  # ESRCH: gone — forget it
            self._stopped.discard(pid)
            return
        except PermissionError:  # EPERM: alive but not ours to control
            self.uncontrollable.add(pid)
            self._drop_subject(pid)
            return
        if signo == signal.SIGSTOP:
            self._stopped.add(pid)
        else:
            self._stopped.discard(pid)

    def _resume_all(self) -> None:
        """Resume every process this controller may have stopped.

        Consults kernel truth in addition to the stop-set: any pid the
        controller ever scheduled that sits in procfs state ``T`` gets
        a SIGCONT, covering pids stopped right before an exception (or
        under bookkeeping lost to a crash).

        A transient ``kill(2)`` failure (EINTR, EAGAIN — e.g. a signal
        mid-syscall, or a momentarily full signal queue) is retried with
        bounded backoff rather than swallowed: a SIGCONT lost on the way
        out wedges the process forever.  A pid still unresumed after the
        retry budget is counted in :attr:`resume_failures` and reported
        as a ``hostalps.resume_failed`` obs event, and stays in the
        stop-set so a later pass (or journaled restart) tries again.
        """
        candidates = set(self._stopped) | set(self._initial)
        candidates.update(self.core.subjects)
        for pid in candidates:
            if pid not in self._stopped:
                try:
                    if procfs.proc_state(pid) != "T":
                        continue
                except HostOSError:
                    continue
            if self._resume_one(pid):
                self._stopped.discard(pid)

    def _resume_one(self, pid: int) -> bool:
        """SIGCONT one pid, retrying transient EINTR/EAGAIN failures.

        Returns True when the pid no longer needs resuming (delivered,
        gone, or not ours to signal); False when the retry budget ran
        out with the failure still transient.
        """
        delay_s = 0.001
        for attempt in range(self.resume_retry_budget + 1):
            try:
                os.kill(pid, signal.SIGCONT)
                return True
            except (ProcessLookupError, PermissionError):
                return True  # gone, or not ours: nothing left to recover
            except (InterruptedError, BlockingIOError):
                if attempt < self.resume_retry_budget:
                    self.resume_retries += 1
                    time.sleep(delay_s)
                    delay_s = min(delay_s * 2, 0.05)
        self.resume_failures += 1
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.events.emit(
                int(time.monotonic() * 1_000_000),
                "hostalps.resume_failed",
                pid=pid,
                attempts=self.resume_retry_budget + 1,
            )
        return False

    # ------------------------------------------------------------------
    # Crash safety (docs/resilience.md)
    # ------------------------------------------------------------------
    def snapshot_state(self) -> dict:
        """JSON-safe snapshot of everything a restarted controller needs."""
        return {
            "v": SNAPSHOT_VERSION,
            "kind": "snapshot",
            "t": int(time.monotonic() * 1_000_000),
            "core": core_snapshot(self.core),
            "agent": {
                "last_read": {
                    str(pid): usage for pid, usage in sorted(self._last_read.items())
                },
                "initial": {
                    str(pid): usage for pid, usage in sorted(self._initial.items())
                },
                "stopped": sorted(self._stopped),
                "debt": {
                    str(pid): owed
                    for pid, owed in sorted(self._deferred_debt.items())
                },
            },
        }

    def restore_from_journal(self) -> bool:
        """Replay the attached journal's latest snapshot, if usable.

        Returns True when state was restored: the algorithm core resumes
        the same cycle, and CPU consumed during the outage (current
        procfs reading minus the journaled baseline) is scheduled for
        amortized repayment
        (:func:`~repro.resilience.journal.schedule_debt`) — a
        share-proportional sliver per subsequent quantum, so the
        fairness debt survives the crash without destabilising the
        postponement optimization.  Dead pids are pruned against procfs,
        and restored-stopped pids are resumed only by the algorithm's
        own next decisions.  Returns False (leaving the fresh-start
        state untouched) for a missing, empty, or corrupt-beyond-use
        journal.
        """
        if self.journal is None:
            return False
        try:
            rec = self.journal.recover()
            if rec.snapshot is None:
                return False
            payload = validate_snapshot(rec.snapshot)
            ag = payload.get("agent", {})
            last_read = {
                int(pid): int(usage)
                for pid, usage in ag.get("last_read", {}).items()
            }
            initial = {
                int(pid): int(usage)
                for pid, usage in ag.get("initial", {}).items()
            }
            stopped = {int(pid) for pid in ag.get("stopped", [])}
            deferred = {
                int(pid): int(owed)
                for pid, owed in ag.get("debt", {}).items()
                if int(owed) > 0
            }
            restore_core(self.core, payload["core"])
        except (JournalCorruptError, TypeError, ValueError, KeyError):
            return False
        self._last_read = {}
        self._initial = initial
        self._stopped = stopped
        debts: dict[int, int] = {}
        for pid in list(self.core.subjects):
            try:
                usage = procfs.cpu_time_us(pid)
            except HostOSError:
                self._drop_subject(pid)
                self._initial.pop(pid, None)
                continue
            base = last_read.get(pid)
            if base is not None and usage > base:
                debts[pid] = usage - base
            self._last_read[pid] = usage
        debt_us = schedule_debt(self.core, debts, deferred)
        self._deferred_debt = deferred
        self._stopped = {pid for pid in self._stopped if procfs.is_alive(pid)}
        self.recovered = True
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.events.emit(
                int(time.monotonic() * 1_000_000),
                "hostalps.recovered",
                subjects=len(self.core.subjects),
                records=rec.records,
                debt_us=debt_us,
            )
        return True
