"""Lottery scheduling (Waldspurger & Weihl, 1994).

Randomized proportional share: each quantum a ticket is drawn uniformly
and the holding client runs.  Expected allocations are proportional;
per-cycle variance is higher than stride's — a useful contrast when
judging ALPS's measured error bars.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.alps.instrumentation import CycleLog, CycleRecord
from repro.errors import SchedulerConfigError


class LotteryScheduler:
    """Randomized proportional-share scheduling of CPU-bound clients."""

    def __init__(
        self,
        shares: Mapping[int, int],
        quantum_us: int,
        *,
        rng: np.random.Generator | None = None,
        seed: int = 0,
    ) -> None:
        if quantum_us <= 0:
            raise SchedulerConfigError(f"quantum must be positive: {quantum_us}")
        if not shares:
            raise SchedulerConfigError("need at least one client")
        for cid, share in shares.items():
            if share <= 0:
                raise SchedulerConfigError(f"share of {cid} must be positive")
        self.quantum_us = quantum_us
        self.shares = dict(shares)
        self.total_shares = sum(shares.values())
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self._clients = np.array(list(self.shares.keys()))
        weights = np.array([self.shares[c] for c in self._clients], dtype=float)
        self._probs = weights / weights.sum()
        self.consumed_us: dict[int, int] = {cid: 0 for cid in self.shares}

    def run_quantum(self) -> int:
        """Hold one lottery; returns the winning client."""
        cid = int(self.rng.choice(self._clients, p=self._probs))
        self.consumed_us[cid] += self.quantum_us
        return cid

    def run(self, duration_us: int) -> dict[int, int]:
        """Run for ``duration_us`` of CPU time; returns consumption."""
        n = duration_us // self.quantum_us
        winners = self.rng.choice(self._clients, size=n, p=self._probs)
        ids, counts = np.unique(winners, return_counts=True)
        for cid, count in zip(ids, counts):
            self.consumed_us[int(cid)] += int(count) * self.quantum_us
        return dict(self.consumed_us)

    def cycle_log(self, cycles: int) -> CycleLog:
        """Run ``cycles`` cycles of S quanta each, logged like ALPS."""
        log = CycleLog()
        quanta_per_cycle = self.total_shares
        for index in range(cycles):
            winners = self.rng.choice(
                self._clients, size=quanta_per_cycle, p=self._probs
            )
            consumed = {cid: 0 for cid in self.shares}
            for w in winners:
                consumed[int(w)] += self.quantum_us
            for cid, c in consumed.items():
                self.consumed_us[cid] += c
            log.append(
                CycleRecord(
                    index=index,
                    end_time=(index + 1) * quanta_per_cycle * self.quantum_us,
                    consumed=consumed,
                    blocked_quanta={cid: 0 for cid in self.shares},
                    shares=dict(self.shares),
                    quantum_us=self.quantum_us,
                )
            )
        return log
