"""Baseline schedulers ALPS is compared against.

* :mod:`~repro.baselines.stride` — Waldspurger's stride scheduler, the
  canonical *in-kernel* deterministic proportional-share policy.  It
  bounds allocation error by one quantum and shows what kernel support
  buys over a user-level approach.
* :mod:`~repro.baselines.lottery` — randomized proportional share
  (lottery scheduling); probabilistically fair, higher variance.
* :mod:`~repro.baselines.duty_cycle` — a cpulimit-style user-level
  limiter that duty-cycles each process independently against a fixed
  cap.  Unlike ALPS it is not work-conserving: CPU released by one
  process is not re-apportioned to the others.

The "unoptimized ALPS" ablation (Section 2.3/3.2) is not a separate
module — construct :class:`~repro.alps.config.AlpsConfig` with
``optimized=False``.
"""

from repro.baselines.duty_cycle import DutyCycleAgent, spawn_duty_cycle
from repro.baselines.lottery import LotteryScheduler
from repro.baselines.stride import StrideScheduler

__all__ = [
    "DutyCycleAgent",
    "LotteryScheduler",
    "StrideScheduler",
    "spawn_duty_cycle",
]
