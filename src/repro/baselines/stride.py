"""Stride scheduling (Waldspurger & Weihl, 1995).

A deterministic in-kernel proportional-share policy: each client has
``stride = STRIDE1 / tickets``; the scheduler always runs the client
with the minimum ``pass`` value for one quantum and advances its pass
by its stride.  Allocation error is bounded by one quantum — the gold
standard a user-level scheduler like ALPS is measured against.

This is a policy-level simulation (clients are always runnable and
consume exactly what they are given), which is precisely the setting
of the paper's accuracy experiments.
"""

from __future__ import annotations

import heapq
from typing import Mapping

import numpy as np

from repro.alps.instrumentation import CycleLog, CycleRecord
from repro.errors import SchedulerConfigError

#: Stride constant (large to keep integer strides precise).
STRIDE1 = 1 << 20


class StrideScheduler:
    """Deterministic proportional-share scheduling of CPU-bound clients."""

    def __init__(self, shares: Mapping[int, int], quantum_us: int) -> None:
        if quantum_us <= 0:
            raise SchedulerConfigError(f"quantum must be positive: {quantum_us}")
        if not shares:
            raise SchedulerConfigError("need at least one client")
        for cid, share in shares.items():
            if share <= 0:
                raise SchedulerConfigError(f"share of {cid} must be positive")
        self.quantum_us = quantum_us
        self.shares = dict(shares)
        self.total_shares = sum(shares.values())
        # Heap of (pass, sequence, client); sequence keeps ties FIFO.
        self._heap: list[tuple[float, int, int]] = []
        self._seq = 0
        for cid, share in self.shares.items():
            self._push(cid, STRIDE1 / share)
        self._pass: dict[int, float] = {
            cid: STRIDE1 / share for cid, share in self.shares.items()
        }
        self.consumed_us: dict[int, int] = {cid: 0 for cid in self.shares}

    def _push(self, cid: int, pass_value: float) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (pass_value, self._seq, cid))

    def next_client(self) -> int:
        """Client to run for the next quantum (minimum pass)."""
        pass_value, _seq, cid = self._heap[0]
        return cid

    def run_quantum(self) -> int:
        """Dispatch one quantum; returns the client that ran."""
        pass_value, _seq, cid = heapq.heappop(self._heap)
        self.consumed_us[cid] += self.quantum_us
        new_pass = pass_value + STRIDE1 / self.shares[cid]
        self._pass[cid] = new_pass
        self._push(cid, new_pass)
        return cid

    def run(self, duration_us: int) -> dict[int, int]:
        """Run for ``duration_us`` of CPU time; returns consumption."""
        for _ in range(duration_us // self.quantum_us):
            self.run_quantum()
        return dict(self.consumed_us)

    def cycle_log(self, cycles: int) -> CycleLog:
        """Run ``cycles`` cycles (S·Q each) and log them like ALPS does,
        so the same accuracy metric applies."""
        log = CycleLog()
        quanta_per_cycle = self.total_shares
        for index in range(cycles):
            before = dict(self.consumed_us)
            for _ in range(quanta_per_cycle):
                self.run_quantum()
            consumed = {
                cid: self.consumed_us[cid] - before[cid] for cid in self.shares
            }
            log.append(
                CycleRecord(
                    index=index,
                    end_time=(index + 1) * quanta_per_cycle * self.quantum_us,
                    consumed=consumed,
                    blocked_quanta={cid: 0 for cid in self.shares},
                    shares=dict(self.shares),
                    quantum_us=self.quantum_us,
                )
            )
        return log
