"""A cpulimit-style duty-cycle limiter (user-level baseline).

``cpulimit`` enforces a per-process CPU *cap* by sampling usage and
SIGSTOP/SIGCONT-ing the process so it does not exceed the cap within a
control period.  It can emulate proportional shares by giving process
*i* the cap ``share_i / S``, but unlike ALPS it is not
work-conserving: when a process blocks or exits, its reserved slice
idles instead of flowing to the others.  This baseline runs in the
same simulated kernel as ALPS (same signals, same costs) so the
comparison is apples-to-apples.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.alps.costs import CostAccumulator, CostModel
from repro.errors import NoSuchProcessError, SchedulerConfigError
from repro.kernel.actions import Action, Compute, Sleep
from repro.kernel.signals import SIGCONT, SIGSTOP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class _Phase(enum.Enum):
    INIT = "init"
    SLEEPING = "sleeping"
    WORKING = "working"


class DutyCycleAgent:
    """Per-process duty-cycle limiter over a control period.

    Every ``sample_us`` the agent reads each process's usage; a process
    that has consumed at least its cap for the current period is
    stopped until the period rolls over, at which point everyone is
    resumed.
    """

    def __init__(
        self,
        caps: Mapping[int, float],
        *,
        period_us: int = 100_000,
        sample_us: int = 10_000,
        costs: CostModel | None = None,
    ) -> None:
        if period_us <= 0 or sample_us <= 0 or sample_us > period_us:
            raise SchedulerConfigError(
                f"need 0 < sample_us <= period_us, got {sample_us}, {period_us}"
            )
        total = sum(caps.values())
        if total > 1.0 + 1e-9:
            raise SchedulerConfigError(f"caps sum to {total}, must be <= 1")
        for pid, cap in caps.items():
            if cap <= 0:
                raise SchedulerConfigError(f"cap for pid {pid} must be positive")
        self.caps = dict(caps)
        self.period_us = period_us
        self.sample_us = sample_us
        self.costs = costs if costs is not None else CostModel()
        self._acc = CostAccumulator()
        self._phase = _Phase.INIT
        self._period_start = 0
        self._used_in_period: dict[int, int] = {}
        self._last_read: dict[int, int] = {}
        self._stopped: set[int] = set()
        self.signals_sent = 0

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        if self._phase is _Phase.INIT:
            self._period_start = kapi.now
            for pid in self.caps:
                self._last_read[pid] = self._safe_usage(kapi, pid)
                self._used_in_period[pid] = 0
            self._phase = _Phase.SLEEPING
            return Sleep(self.sample_us, channel="dutycycle")
        if self._phase is _Phase.SLEEPING:
            cost = self.costs.timer_event_us + self.costs.measure_cost(len(self.caps))
            self._phase = _Phase.WORKING
            return Compute(self._acc.charge(cost))
        # WORKING: apply the control law.
        now = kapi.now
        if now - self._period_start >= self.period_us:
            self._period_start = now
            for pid in list(self._stopped):
                self._signal(kapi, pid, SIGCONT)
            self._used_in_period = {pid: 0 for pid in self.caps}
        for pid, cap in self.caps.items():
            try:
                usage = kapi.getrusage(pid)
            except NoSuchProcessError:
                continue
            delta = usage - self._last_read.get(pid, usage)
            self._last_read[pid] = usage
            self._used_in_period[pid] = self._used_in_period.get(pid, 0) + delta
            budget = cap * self.period_us
            if self._used_in_period[pid] >= budget and pid not in self._stopped:
                self._signal(kapi, pid, SIGSTOP)
        self._phase = _Phase.SLEEPING
        return Sleep(self.sample_us, channel="dutycycle")

    def _signal(self, kapi: "KernelAPI", pid: int, signo: int) -> None:
        try:
            kapi.kill(pid, signo)
        except NoSuchProcessError:
            self._stopped.discard(pid)
            return
        self.signals_sent += 1
        if signo == SIGSTOP:
            self._stopped.add(pid)
        else:
            self._stopped.discard(pid)

    def _safe_usage(self, kapi: "KernelAPI", pid: int) -> int:
        try:
            return kapi.getrusage(pid)
        except NoSuchProcessError:
            return 0


def spawn_duty_cycle(
    kernel: "Kernel",
    shares: Sequence[int],
    pids: Sequence[int],
    *,
    period_us: int = 100_000,
    sample_us: int = 10_000,
    name: str = "cpulimit",
) -> tuple["Process", DutyCycleAgent]:
    """Spawn a duty-cycle limiter emulating proportional shares.

    Process ``i`` receives the cap ``shares[i] / sum(shares)``.
    """
    total = sum(shares)
    caps = {pid: share / total for pid, share in zip(pids, shares)}
    agent = DutyCycleAgent(caps, period_us=period_us, sample_us=sample_us)
    proc = kernel.spawn(name, agent)
    return proc, agent
