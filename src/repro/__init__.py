"""Reproduction of *ALPS: An Application-Level Proportional-Share
Scheduler* (Newhouse & Pasquale, HPDC 2006).

ALPS is a user-level, unprivileged, per-application proportional-share
CPU scheduler: it periodically samples the CPU consumption of the
processes it controls and SIGSTOP/SIGCONTs them so that, over each
*cycle*, every process receives CPU time in proportion to its share —
while the unmodified kernel scheduler does all fine-grained time
slicing.

This package provides:

* the ALPS algorithm and agents (:mod:`repro.alps`),
* a simulated 4.4BSD-style UNIX kernel to run them on
  (:mod:`repro.kernel` over :mod:`repro.sim`),
* a real-Linux backend (:mod:`repro.hostos`),
* the paper's workloads, web-server case study, baselines, metrics,
  and one experiment runner per table/figure
  (:mod:`repro.workloads`, :mod:`repro.webserver`,
  :mod:`repro.baselines`, :mod:`repro.metrics`,
  :mod:`repro.experiments`).

Quickstart::

    from repro import AlpsConfig, build_controlled_workload, ms, sec
    from repro.metrics import per_subject_fractions

    cw = build_controlled_workload([1, 2, 3], AlpsConfig(quantum_us=ms(10)))
    cw.engine.run_until(sec(30))
    print(per_subject_fractions(cw.agent.cycle_log, skip=5))
"""

from repro.alps import (
    AlpsAgent,
    AlpsConfig,
    AlpsCore,
    CostModel,
    CycleLog,
    CycleRecord,
    ProcessSubject,
    UserSubject,
)
from repro.alps.agent import spawn_alps
from repro.kernel import Kernel, KernelConfig
from repro.obs import Observer
from repro.sharetree import ShardedAlpsPlane, ShareTree
from repro.sim import Engine
from repro.units import MSEC, SEC, USEC, ms, sec, usec
from repro.workloads import (
    ShareDistribution,
    build_controlled_workload,
    build_multi_alps_scenario,
    workload_shares,
)

__version__ = "1.0.0"

__all__ = [
    "AlpsAgent",
    "AlpsConfig",
    "AlpsCore",
    "CostModel",
    "CycleLog",
    "CycleRecord",
    "Engine",
    "Kernel",
    "KernelConfig",
    "MSEC",
    "Observer",
    "ProcessSubject",
    "SEC",
    "ShardedAlpsPlane",
    "ShareDistribution",
    "ShareTree",
    "USEC",
    "UserSubject",
    "__version__",
    "build_controlled_workload",
    "build_multi_alps_scenario",
    "ms",
    "sec",
    "spawn_alps",
    "usec",
    "workload_shares",
]
