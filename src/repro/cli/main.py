"""CLI dispatcher and argument parsing."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.cli import commands

EXPERIMENTS = {
    "table1": (
        commands.cmd_table1,
        "Table 1 — ALPS primitive operation costs (live host measurement)",
    ),
    "fig4": (
        commands.cmd_fig4,
        "Figure 4 — accuracy vs quantum length (Table 2 workloads)",
    ),
    "fig5": (
        commands.cmd_fig5,
        "Figure 5 — overhead vs workload size/distribution",
    ),
    "fig6": (
        commands.cmd_fig6,
        "Figure 6 — I/O redistribution timeline",
    ),
    "fig7": (
        commands.cmd_fig7,
        "Figure 7 + Table 3 — multiple concurrent ALPSs",
    ),
    "fig8": (
        commands.cmd_fig8,
        "Figures 8/9 + §4.2 — scalability and breakdown thresholds",
    ),
    "sec5": (
        commands.cmd_sec5,
        "Section 5 — shared web server isolation",
    ),
    "ablation": (
        commands.cmd_ablation,
        "§2.3/§3.2 ablation — measurement-postponement optimization",
    ),
    "overload": (
        commands.cmd_overload,
        "overload protection — bounded degradation past the §4.2 knee",
    ),
    "sharetree": (
        commands.cmd_sharetree,
        "share tree — Gunther's 'shares bound ratios, not guarantees'",
    ),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'ALPS: An Application-Level Proportional-"
            "Share Scheduler' (HPDC 2006)."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list reproducible experiments")

    run = sub.add_parser("run", help="reproduce one paper artifact")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument(
        "--full",
        action="store_true",
        help="use the paper's full protocol (much slower) instead of the "
        "benchmark-sized one",
    )
    run.add_argument("--seed", type=int, default=0, help="master RNG seed")
    run.add_argument(
        "--csv", metavar="PATH", default=None, help="also write results to CSV"
    )
    run.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sweep process-pool size (default: serial for quick runs, "
        "$REPRO_SWEEP_WORKERS or CPUs-1 for --full)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the content-addressed sweep result cache "
        "($REPRO_SWEEP_CACHE) and recompute every cell",
    )
    run.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized protocol (sharetree only): fewest load points, "
        "short horizon",
    )

    live = sub.add_parser(
        "live", help="run ALPS over real processes on this Linux host"
    )
    live.add_argument(
        "--shares",
        default="1,2,3",
        help="comma-separated integer shares, one spinner per share",
    )
    live.add_argument(
        "--duration", type=float, default=8.0, help="seconds to control"
    )
    live.add_argument(
        "--quantum", type=float, default=0.05, help="ALPS quantum in seconds"
    )
    live.add_argument(
        "--groups",
        default=None,
        metavar="SPEC",
        help=(
            "schedule groups instead of single processes: "
            "'share×members,share×members', e.g. '1x2,3x1' runs a "
            "1-share group of two spinners against a 3-share group of one"
        ),
    )

    report = sub.add_parser(
        "report", help="run every experiment and write a markdown report"
    )
    report.add_argument("--out", default="reproduction_report.md")
    report.add_argument("--seed", type=int, default=0)
    report.add_argument(
        "--full", action="store_true", help="use the paper's full protocol"
    )
    report.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="sweep process-pool size for the experiment sections",
    )
    report.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep cell instead of reusing cached results",
    )

    demo = sub.add_parser(
        "demo", help="simulated quickstart (shares 1:2:3, 30 virtual seconds)"
    )
    demo.add_argument("--shares", default="1,2,3")
    demo.add_argument("--quantum-ms", type=float, default=10.0)
    demo.add_argument("--seconds", type=float, default=30.0)
    demo.add_argument("--seed", type=int, default=0)

    perf = sub.add_parser(
        "perf", help="performance tooling for the simulation substrate"
    )
    perf_sub = perf.add_subparsers(dest="perf_command")
    perf_report = perf_sub.add_parser(
        "report", help="run a workload and print its perf counter report"
    )
    perf_report.add_argument("--shares", default="5,5,5,5,5")
    perf_report.add_argument("--quantum-ms", type=float, default=10.0)
    perf_report.add_argument("--seconds", type=float, default=10.0)
    perf_report.add_argument("--seed", type=int, default=0)
    perf_report.add_argument(
        "--profile",
        action="store_true",
        help="also run the simulation under cProfile and print the top rows",
    )
    perf_report.add_argument(
        "--backend",
        choices=["auto", "strict", "optimized", "batch", "resident", "all"],
        default="auto",
        help=(
            "kernel backend to run the workload on (default: auto); "
            "'all' runs every backend and prints events/sec side-by-side"
        ),
    )
    perf_diff = perf_sub.add_parser(
        "diff",
        help="strict-vs-challenger differential equivalence sweep (Table 2)",
    )
    perf_diff.add_argument("--sizes", default="5,10,20")
    perf_diff.add_argument("--seeds", default="0,1,2")
    perf_diff.add_argument("--quantum-ms", type=float, default=10.0)
    perf_diff.add_argument("--seconds", type=float, default=5.0)
    perf_diff.add_argument(
        "--backend",
        choices=["optimized", "batch", "resident"],
        default="optimized",
        help="challenger backend compared against strict (default: optimized)",
    )

    top = sub.add_parser(
        "top", help="live share-vs-attained view of a simulated workload"
    )
    top.add_argument("--shares", default="1,2,4")
    top.add_argument("--quantum-ms", type=float, default=10.0)
    top.add_argument("--seed", type=int, default=0)
    top.add_argument(
        "--frame-ms",
        type=float,
        default=500.0,
        help="virtual time advanced per rendered frame",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="render N frames then exit (default: run until Ctrl-C)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="wall-clock seconds between frames",
    )
    top.add_argument(
        "--skip-cycles",
        type=int,
        default=0,
        help="warm-up cycles excluded from attained fractions",
    )
    top.add_argument(
        "--tree",
        action="store_true",
        help="hierarchical view over the demo share tree "
        "(docs/share_tree.md) instead of the flat --shares list",
    )
    top.add_argument(
        "--cells",
        type=int,
        default=1,
        help="with --tree: shard the tree over N supervised plane cells "
        "and render per-cell health (docs/share_tree.md, 'Plane fault "
        "tolerance')",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault campaigns with machine-checked invariants",
    )
    chaos_sub = chaos.add_subparsers(dest="chaos_command")

    def _chaos_common(p) -> None:
        p.add_argument("--seed", type=int, default=0, help="campaign seed")
        p.add_argument(
            "--suite",
            choices=("resilience", "overload", "plane"),
            default="resilience",
            help="fault suite: 'resilience' (journal/signal/crash faults), "
            "'overload' (arrival storms, nice-bombs, thousand-process "
            "herds against the degradation ladder), or 'plane' (cell "
            "crashes, torn migrations, and re-homing on the sharded "
            "control plane)",
        )
        p.add_argument(
            "--episodes", type=int, default=8, help="episodes per campaign"
        )
        p.add_argument(
            "--rates",
            default="0.02,0.05,0.1,0.2",
            help="comma-separated fault rates cycled across episodes",
        )
        p.add_argument(
            "--shares",
            default=None,
            help="comma-separated worker shares "
            "(default: per-suite standard mix)",
        )
        p.add_argument("--quantum-ms", type=float, default=10.0)
        p.add_argument(
            "--cycles", type=int, default=60, help="target cycles per episode"
        )
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="sweep process-pool size (default: serial)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="recompute every episode instead of reusing cached results",
        )

    chaos_run = chaos_sub.add_parser(
        "run", help="run one campaign; non-zero exit on invariant violation"
    )
    _chaos_common(chaos_run)
    chaos_report = chaos_sub.add_parser(
        "report", help="run one campaign and write full JSON detail"
    )
    _chaos_common(chaos_report)
    chaos_report.add_argument("--out", default="chaos_report.json")

    obs = sub.add_parser(
        "obs", help="observability tooling (structured events and metrics)"
    )
    obs_sub = obs.add_subparsers(dest="obs_command")
    obs_tail = obs_sub.add_parser(
        "tail", help="run an observed workload, print its last events as JSONL"
    )
    obs_tail.add_argument("--shares", default="1,2,4")
    obs_tail.add_argument("--quantum-ms", type=float, default=10.0)
    obs_tail.add_argument("--seconds", type=float, default=5.0)
    obs_tail.add_argument("--seed", type=int, default=0)
    obs_tail.add_argument(
        "-n", "--count", type=int, default=20, help="events to print"
    )
    obs_tail.add_argument(
        "--kind",
        default=None,
        help="filter by event kind; 'prefix.*' matches a family "
        "(e.g. --kind 'fault.*')",
    )
    obs_export = obs_sub.add_parser(
        "export", help="run an observed workload and export its metrics"
    )
    obs_export.add_argument("--shares", default="1,2,4")
    obs_export.add_argument("--quantum-ms", type=float, default=10.0)
    obs_export.add_argument("--seconds", type=float, default=5.0)
    obs_export.add_argument("--seed", type=int, default=0)
    obs_export.add_argument(
        "--format",
        dest="fmt",
        choices=("jsonl", "csv", "prometheus"),
        default="prometheus",
        help="metrics exposition format",
    )
    obs_export.add_argument(
        "--out", default=None, metavar="PATH", help="write metrics to a file"
    )
    obs_export.add_argument(
        "--events",
        dest="events_out",
        default=None,
        metavar="PATH",
        help="also write the buffered event stream as JSONL",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            print(f"  {key.ljust(width)}  {EXPERIMENTS[key][1]}")
        return 0
    if args.command == "run":
        fn = EXPERIMENTS[args.experiment][0]
        kwargs = dict(
            full=args.full,
            seed=args.seed,
            csv=args.csv,
            workers=args.workers,
            no_cache=args.no_cache,
        )
        if args.experiment == "sharetree":
            kwargs["smoke"] = args.smoke
        elif args.smoke:
            parser.error("--smoke is only supported by 'run sharetree'")
        return fn(**kwargs)
    if args.command == "report":
        from repro.experiments.report import generate_report

        out = generate_report(
            seed=args.seed,
            quick=not args.full,
            path=args.out,
            workers=args.workers,
            no_cache=args.no_cache,
        )
        print(f"report written to {out}")
        return 0
    if args.command == "live":
        return commands.cmd_live(
            shares=args.shares,
            duration=args.duration,
            quantum=args.quantum,
            groups=args.groups,
        )
    if args.command == "demo":
        return commands.cmd_demo(
            shares=args.shares,
            quantum_ms=args.quantum_ms,
            seconds=args.seconds,
            seed=args.seed,
        )
    if args.command == "perf":
        if args.perf_command == "report":
            return commands.cmd_perf_report(
                shares=args.shares,
                quantum_ms=args.quantum_ms,
                seconds=args.seconds,
                seed=args.seed,
                profile=args.profile,
                backend=args.backend,
            )
        if args.perf_command == "diff":
            return commands.cmd_perf_diff(
                sizes=args.sizes,
                seeds=args.seeds,
                quantum_ms=args.quantum_ms,
                seconds=args.seconds,
                backend=args.backend,
            )
        parser.parse_args(["perf", "--help"])
        return 2
    if args.command == "top":
        return commands.cmd_top(
            shares=args.shares,
            quantum_ms=args.quantum_ms,
            seed=args.seed,
            frame_ms=args.frame_ms,
            frames=args.frames,
            interval=args.interval,
            skip_cycles=args.skip_cycles,
            tree=args.tree,
            cells=args.cells,
        )
    if args.command == "chaos":
        if args.chaos_command == "run":
            return commands.cmd_chaos_run(
                seed=args.seed,
                episodes=args.episodes,
                rates=args.rates,
                shares=args.shares,
                quantum_ms=args.quantum_ms,
                cycles=args.cycles,
                suite=args.suite,
                workers=args.workers,
                no_cache=args.no_cache,
            )
        if args.chaos_command == "report":
            return commands.cmd_chaos_report(
                seed=args.seed,
                episodes=args.episodes,
                rates=args.rates,
                shares=args.shares,
                quantum_ms=args.quantum_ms,
                cycles=args.cycles,
                out=args.out,
                suite=args.suite,
                workers=args.workers,
                no_cache=args.no_cache,
            )
        parser.parse_args(["chaos", "--help"])
        return 2
    if args.command == "obs":
        if args.obs_command == "tail":
            return commands.cmd_obs_tail(
                shares=args.shares,
                quantum_ms=args.quantum_ms,
                seconds=args.seconds,
                seed=args.seed,
                count=args.count,
                kind=args.kind,
            )
        if args.obs_command == "export":
            return commands.cmd_obs_export(
                shares=args.shares,
                quantum_ms=args.quantum_ms,
                seconds=args.seconds,
                seed=args.seed,
                fmt=args.fmt,
                out=args.out,
                events_out=args.events_out,
            )
        parser.parse_args(["obs", "--help"])
        return 2
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover
