"""Command-line interface: ``python -m repro <command>``.

Commands reproduce individual paper artifacts (``fig4``, ``sec5``, …),
run the live Linux controller (``live``), or print the experiment
index (``list``).
"""

from repro.cli.main import main

__all__ = ["main"]
