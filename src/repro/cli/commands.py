"""CLI command implementations.

Each ``cmd_*`` runs one experiment, prints the paper-style table, and
optionally writes a CSV.  ``full=True`` switches to the paper's full
protocol (200 cycles × 3 seeds, all quantum lengths, N up to 120).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table


def _maybe_csv(csv: Optional[str], rows) -> None:
    if csv:
        path = write_csv(csv, rows)
        print(f"\n[csv written to {path}]")


def _sweep_cache(no_cache: bool):
    """The experiment commands' result cache (``--no-cache`` disables)."""
    if no_cache:
        return None
    from repro.sweep.cache import SweepCache

    return SweepCache()


def _sweep_workers(workers: Optional[int], full: bool) -> Optional[int]:
    """Worker count policy: parallel by default only for ``--full``
    runs (pool startup dominates the benchmark-sized sweeps)."""
    if workers is not None:
        return workers
    return None if full else 1


def _sweep_footer(outcome) -> None:
    print(f"\n{outcome.footer()}")


# ---------------------------------------------------------------------------
def cmd_table1(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.table1_ops import (
        Table1Result,
        table1_result_from_payload,
        table1_sweep_spec,
    )
    from repro.sweep.scheduler import run_sweep

    # Live host measurement: dispatched through the scheduler for the
    # uniform footer/error handling, but never cached and never pooled
    # (a worker process would time a different address space).
    outcome = run_sweep(table1_sweep_spec(quick=not full), workers=1)
    result = table1_result_from_payload(outcome.values[0])
    rows = [
        ["Receive a timer event", f"{result.timer_event_us:.2f}",
         f"{Table1Result.PAPER_TIMER_US:.2f}"],
        ["Measure CPU time of n processes",
         f"{result.measure_fixed_us:.1f} + {result.measure_per_proc_us:.1f}n",
         "1.1 + 17.4n"],
        ["Signal a process", f"{result.signal_us:.2f}",
         f"{Table1Result.PAPER_SIGNAL_US:.2f}"],
    ]
    print(format_table(
        ["operation", "this host (µs)", "paper (µs)"], rows,
        title="Table 1 — Primary ALPS operation times",
    ))
    _maybe_csv(csv, [{"operation": r[0], "host": r[1], "paper": r[2]} for r in rows])
    _sweep_footer(outcome)
    return 0


def cmd_fig4(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.accuracy import (
        accuracy_cell,
        accuracy_point_from_payload,
        run_accuracy_cell,
    )
    from repro.sweep.scheduler import SweepSpec, run_sweep
    from repro.workloads.shares import DISTRIBUTIONS

    quanta = (10, 15, 20, 25, 30, 35, 40) if full else (10, 20, 30, 40)
    seeds = (seed, seed + 1, seed + 2) if full else (seed,)
    cycles = {5: 200, 10: 200, 20: 200} if full else {5: 120, 10: 70, 20: 40}
    spec = SweepSpec(
        worker=run_accuracy_cell,
        cells=[
            accuracy_cell(model, n, q, cycles=cycles[n], seeds=seeds)
            for model in DISTRIBUTIONS
            for n in (5, 10, 20)
            for q in quanta
        ],
    )
    outcome = run_sweep(
        spec,
        workers=_sweep_workers(workers, full),
        cache=_sweep_cache(no_cache),
    )
    points = [accuracy_point_from_payload(v) for v in outcome.values]
    rows = [
        [p.label, p.quantum_ms, round(p.mean_rms_error_pct, 2)] for p in points
    ]
    print(format_table(
        ["workload", "Q (ms)", "mean RMS error %"], rows,
        title="Figure 4 — accuracy vs quantum length",
    ))
    series: dict[str, tuple[list, list]] = {}
    for p in points:
        xs, ys = series.setdefault(p.label, ([], []))
        xs.append(p.quantum_ms)
        ys.append(p.mean_rms_error_pct)
    print()
    print(ascii_series_plot(series, title="error % vs Q (ms)"))
    _maybe_csv(
        csv,
        [
            {"workload": p.label, "quantum_ms": p.quantum_ms,
             "error_pct": p.mean_rms_error_pct}
            for p in points
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_fig5(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.overhead import (
        overhead_point_from_payload,
        overhead_sweep_spec,
    )
    from repro.sweep.scheduler import run_sweep

    spec = overhead_sweep_spec(cycles=100 if full else 40, seed=seed)
    outcome = run_sweep(
        spec,
        workers=_sweep_workers(workers, full),
        cache=_sweep_cache(no_cache),
    )
    points = [overhead_point_from_payload(v) for v in outcome.values]
    rows = [
        [p.model.value, p.n, p.quantum_ms, round(p.overhead_pct, 3)]
        for p in points
    ]
    print(format_table(
        ["model", "N", "Q (ms)", "overhead %"], rows,
        title="Figure 5 — overhead vs workload",
    ))
    _maybe_csv(
        csv,
        [
            {"model": p.model.value, "n": p.n, "quantum_ms": p.quantum_ms,
             "overhead_pct": p.overhead_pct}
            for p in points
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_fig6(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.io import io_cell, io_result_from_payload, run_io_cell
    from repro.sweep.scheduler import SweepSpec, run_sweep

    spec = SweepSpec(
        worker=run_io_cell,
        cells=[
            io_cell(
                total_cycles=1200 if full else 800, warmup_cpu_s=8.0, seed=seed
            )
        ],
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    result = io_result_from_payload(outcome.values[0])
    steady = result.mean_shares(result.steady_mask)
    active = result.mean_shares(result.active_mask)
    blocked = result.mean_shares(result.blocked_mask)
    rows = [
        ["steady (pre-I/O)", *(round(x, 1) for x in steady)],
        ["B active", *(round(x, 1) for x in active)],
        ["B blocked", *(round(x, 1) for x in blocked)],
    ]
    print(format_table(
        ["phase", "A (1 share) %", "B (2 shares) %", "C (3 shares) %"], rows,
        title=f"Figure 6 — I/O redistribution (I/O starts at cycle "
        f"{result.io_start_cycle})",
    ))
    _maybe_csv(
        csv,
        [
            {"cycle": int(result.cycle_indices[i]),
             "A_pct": result.share_pct[i, 0],
             "B_pct": result.share_pct[i, 1],
             "C_pct": result.share_pct[i, 2]}
            for i in range(len(result.cycle_indices))
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_fig7(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.multi import (
        multi_cell,
        multi_result_from_payload,
        run_multi_cell,
    )
    from repro.sweep.scheduler import SweepSpec, run_sweep

    spec = SweepSpec(worker=run_multi_cell, cells=[multi_cell(seed=seed)])
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    result = multi_result_from_payload(outcome.values[0])
    table = result.table3()
    rows = [
        [r["share"], r["group"], round(r["target_pct"], 1),
         r["phase1_pct"], r["phase1_relerr"],
         r["phase2_pct"], r["phase2_relerr"],
         r["phase3_pct"], r["phase3_relerr"]]
        for r in table
    ]
    print(format_table(
        ["S", "grp", "target%", "ph1%", "re1", "ph2%", "re2", "ph3%", "re3"],
        rows,
        title="Table 3 — accuracy of multiple ALPSs",
    ))
    errs = [
        r[f"phase{p}_relerr"]
        for r in table for p in (1, 2, 3) if r[f"phase{p}_relerr"] is not None
    ]
    print(f"\naverage relative error: {np.mean(errs):.2f}%  (paper: 0.93%)")
    _maybe_csv(csv, table)
    _sweep_footer(outcome)
    return 0


def cmd_fig8(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.scalability import (
        analyze_breakdown,
        scalability_point_from_payload,
        scalability_sweep_spec,
    )
    from repro.sweep.scheduler import run_sweep

    sizes = (5, 10, 20, 30, 40, 50, 60, 80, 100, 120) if full else (
        5, 10, 20, 30, 40, 60, 80
    )
    spec = scalability_sweep_spec(
        sizes=sizes, cycles=40 if full else 25, seed=seed
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    points = [scalability_point_from_payload(v) for v in outcome.values]
    rows = [
        [p.n, p.quantum_ms, round(p.overhead_pct, 3),
         round(p.mean_rms_error_pct, 1)]
        for p in points
    ]
    print(format_table(
        ["N", "Q (ms)", "overhead %", "RMS error %"], rows,
        title="Figures 8/9 — scalability",
    ))
    print()
    arow = []
    for a in analyze_breakdown(points):
        arow.append(
            [a.quantum_ms, f"{a.fit.slope:.4f}N+{a.fit.intercept:.4f}",
             round(a.predicted_n), a.observed_n]
        )
    print(format_table(
        ["Q (ms)", "U_Q(N)", "predicted N*", "observed N*"], arow,
        title="Section 4.2 — breakdown thresholds "
        "(paper: pred. 39/54/75, obs. 40/60/90)",
    ))
    _maybe_csv(
        csv,
        [
            {"n": p.n, "quantum_ms": p.quantum_ms,
             "overhead_pct": p.overhead_pct,
             "error_pct": p.mean_rms_error_pct}
            for p in points
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_sec5(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.webserver import (
        run_webserver_cell,
        webserver_cell,
        webserver_result_from_payload,
    )
    from repro.sweep.scheduler import SweepSpec, run_sweep

    spec = SweepSpec(
        worker=run_webserver_cell,
        cells=[
            webserver_cell(
                warmup_s=20.0 if full else 15.0,
                measure_s=60.0 if full else 45.0,
                seed=seed,
            )
        ],
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    result = webserver_result_from_payload(outcome.values[0])
    rows = [
        [i + 1, result.shares[i], round(result.baseline_rps[i], 1),
         round(result.alps_rps[i], 1)]
        for i in range(3)
    ]
    print(format_table(
        ["site", "share", "kernel-only rps", "with ALPS rps"], rows,
        title="Section 5 — shared web server "
        "(paper: {29,30,40} → {18,35,53})",
    ))
    print(f"\nALPS overhead: {result.alps_overhead_pct:.2f}%")
    _maybe_csv(
        csv,
        [
            {"site": i + 1, "share": result.shares[i],
             "baseline_rps": result.baseline_rps[i],
             "alps_rps": result.alps_rps[i]}
            for i in range(3)
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_ablation(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    from repro.experiments.overhead import (
        overhead_cell,
        overhead_point_from_payload,
        run_overhead_cell,
    )
    from repro.sweep.scheduler import SweepSpec, run_sweep
    from repro.workloads.shares import DISTRIBUTIONS

    combos = [(model, n) for model in DISTRIBUTIONS for n in (5, 10, 20)]
    cycles = 100 if full else 40
    spec = SweepSpec(
        worker=run_overhead_cell,
        cells=[
            overhead_cell(
                model, n, 10, cycles=cycles, seed=seed, optimized=optimized
            )
            for model, n in combos
            for optimized in (True, False)
        ],
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    points = [overhead_point_from_payload(v) for v in outcome.values]
    rows = []
    data = []
    for (model, n), opt, unopt in zip(combos, points[0::2], points[1::2]):
        factor = unopt.overhead_pct / opt.overhead_pct
        rows.append(
            [f"{model.value}{n}", round(unopt.overhead_pct, 3),
             round(opt.overhead_pct, 3), round(factor, 2)]
        )
        data.append(
            {"workload": f"{model.value}{n}",
             "unoptimized_pct": unopt.overhead_pct,
             "optimized_pct": opt.overhead_pct, "factor": factor}
        )
    print(format_table(
        ["workload", "unoptimized %", "optimized %", "factor"], rows,
        title="Ablation — measurement postponement (paper: 1.8×–5.9×)",
    ))
    _maybe_csv(csv, data)
    _sweep_footer(outcome)
    return 0


def cmd_overload(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    """Past-the-knee degradation: ladder-armed vs control (docs/overload.md)."""
    from repro.experiments.overload import (
        KNEE_N,
        PAST_KNEE_N,
        OverloadComparison,
        overload_point_from_payload,
        overload_sweep_spec,
    )
    from repro.sweep.scheduler import run_sweep

    sizes = (KNEE_N, 60, PAST_KNEE_N, 120) if full else (KNEE_N, PAST_KNEE_N)
    spec = overload_sweep_spec(
        sizes=sizes, cycles=60 if full else 40, seed=seed
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    points = [overload_point_from_payload(v) for v in outcome.values]
    rows = [
        [p.n, "ladder" if p.ladder else "control",
         round(p.mean_rms_error_pct, 1), p.engagements, p.sheds,
         round(p.max_degraded_slip_quanta, 1)]
        for p in points
    ]
    print(format_table(
        ["N", "arm", "RMS error %", "engaged", "sheds", "max slip (q)"],
        rows,
        title=f"Overload — bounded degradation past the knee (knee N={KNEE_N})",
    ))
    print()
    for n in sizes:
        protected = next(p for p in points if p.n == n and p.ladder)
        control = next(p for p in points if p.n == n and not p.ladder)
        ratio = OverloadComparison(protected, control).error_ratio
        print(
            f"N={n:>3}: ladder {protected.mean_rms_error_pct:.1f}% vs "
            f"control {control.mean_rms_error_pct:.1f}%  "
            f"(ratio {ratio:.2f})"
        )
    _maybe_csv(
        csv,
        [
            {"n": p.n, "ladder": p.ladder,
             "error_pct": p.mean_rms_error_pct,
             "engagements": p.engagements, "sheds": p.sheds,
             "readmits": p.readmits,
             "max_degraded_slip_quanta": p.max_degraded_slip_quanta,
             "overhead_pct": p.overhead_pct}
            for p in points
        ],
    )
    _sweep_footer(outcome)
    return 0


def cmd_sharetree(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
    smoke: bool = False,
) -> int:
    """Gunther's ratios-not-guarantees share-tree sweep (docs/share_tree.md)."""
    from repro.experiments.sharetree import (
        SIBLING_COUNTS,
        TENANT_WEIGHT,
        sharetree_point_from_payload,
        sharetree_sweep_spec,
        throughput_variation,
    )
    from repro.sweep.scheduler import run_sweep

    if smoke:
        sibling_counts, cell_counts = (1, 4), (1,)
        cycles, horizon_s = 20, 6.0
    elif full:
        sibling_counts, cell_counts = SIBLING_COUNTS, (1, 2)
        cycles, horizon_s = 60, 12.0
    else:
        sibling_counts, cell_counts = SIBLING_COUNTS, (1,)
        cycles, horizon_s = 40, 10.0
    spec = sharetree_sweep_spec(
        sibling_counts=sibling_counts,
        cell_counts=cell_counts,
        cycles=cycles,
        seed=seed,
        horizon_s=horizon_s,
    )
    outcome = run_sweep(
        spec, workers=_sweep_workers(workers, full), cache=_sweep_cache(no_cache)
    )
    points = [sharetree_point_from_payload(v) for v in outcome.values]
    rows = [
        [p.k, p.cells, f"{p.share_ratio:.1f}", f"{p.attained_ratio:.2f}",
         f"{p.ratio_error_pct:.1f}", f"{p.tenant_fraction:.1%}",
         f"{p.tenant_us_per_s:,.0f}"]
        for p in points
    ]
    print(format_table(
        ["siblings k", "cells", "share ratio", "attained ratio",
         "ratio err %", "tenant frac", "tenant µs/s"],
        rows,
        title=(
            "Share tree — shares bound ratios, not guarantees "
            f"(tenant weight {TENANT_WEIGHT} vs k unit siblings)"
        ),
    ))
    single = [p for p in points if p.cells == 1]
    variation = throughput_variation(single)
    worst = max(p.ratio_error_pct for p in single)
    print(
        f"\nratio stays within {worst:.1f}% of the share-bound {TENANT_WEIGHT}:1 "
        f"envelope while absolute tenant throughput varies "
        f"{variation:.1f}x across load points — shares bound ratios, "
        f"never throughput."
    )
    _maybe_csv(
        csv,
        [
            {"k": p.k, "cells": p.cells, "share_ratio": p.share_ratio,
             "attained_ratio": p.attained_ratio,
             "ratio_error_pct": p.ratio_error_pct,
             "tenant_fraction": p.tenant_fraction,
             "tenant_us_per_s": p.tenant_us_per_s,
             "cycles": p.cycles_completed, "wall_us": p.wall_us}
            for p in points
        ],
    )
    _sweep_footer(outcome)
    return 0


def parse_group_spec(spec: str) -> list[tuple[int, int]]:
    """Parse 'SHARExMEMBERS,...' (e.g. '1x2,3x1') to (share, size) pairs."""
    groups: list[tuple[int, int]] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        share_s, _x, size_s = part.partition("x")
        share, size = int(share_s), int(size_s or "1")
        if share <= 0 or size <= 0:
            raise ValueError(f"bad group spec element {part!r}")
        groups.append((share, size))
    if not groups:
        raise ValueError(f"empty group spec {spec!r}")
    return groups


def _cmd_live_groups(spec: str, duration: float, quantum: float) -> int:
    from repro.hostos import HostGroupAlps, spawn_spinner

    try:
        groups = parse_group_spec(spec)
    except ValueError as exc:
        print(exc)
        return 2
    procs = []
    group_shares: dict[int, int] = {}
    group_pids: dict[int, list[int]] = {}
    for gid, (share, size) in enumerate(groups):
        members = [spawn_spinner() for _ in range(size)]
        procs.extend(members)
        group_shares[gid] = share
        group_pids[gid] = [p.pid for p in members]
    try:
        alps = HostGroupAlps(group_shares, group_pids, quantum_s=quantum)
        print(
            f"controlling {len(procs)} spinners in {len(groups)} groups "
            f"for {duration:.0f}s..."
        )
        report = alps.run(duration)
        by_group = alps.group_consumed(report)
        total = sum(by_group.values()) or 1
        total_shares = sum(group_shares.values())
        rows = [
            [gid, group_shares[gid], len(group_pids[gid]),
             f"{group_shares[gid] / total_shares:.1%}",
             f"{by_group[gid] / total:.1%}"]
            for gid in sorted(group_shares)
        ]
        print(format_table(
            ["group", "share", "members", "target", "achieved"], rows
        ))
        print(f"\ncycles: {report.cycles}   "
              f"overhead: {report.overhead_fraction:.2%}")
    finally:
        for p in procs:
            p.kill()
        for p in procs:
            p.wait()
    return 0


def cmd_live(
    *, shares: str, duration: float, quantum: float, groups: Optional[str] = None
) -> int:
    from repro.hostos import HostAlps, spawn_spinner

    if groups is not None:
        return _cmd_live_groups(groups, duration, quantum)
    share_list = [int(s) for s in shares.split(",") if s.strip()]
    if not share_list or any(s <= 0 for s in share_list):
        print("shares must be positive integers, e.g. --shares 1,2,3")
        return 2
    procs = [spawn_spinner() for _ in share_list]
    try:
        alps = HostAlps(
            {p.pid: s for p, s in zip(procs, share_list)}, quantum_s=quantum
        )
        print(
            f"controlling {len(procs)} spinners for {duration:.0f}s "
            f"(quantum {quantum * 1000:.0f} ms)..."
        )
        report = alps.run(duration)
        fr = report.fractions()
        total = sum(share_list)
        rows = [
            [p.pid, s, f"{s / total:.1%}", f"{fr[p.pid]:.1%}"]
            for p, s in zip(procs, share_list)
        ]
        print(format_table(["pid", "share", "target", "achieved"], rows))
        print(f"\ncycles: {report.cycles}   "
              f"overhead: {report.overhead_fraction:.2%}")
    finally:
        for p in procs:
            p.kill()
        for p in procs:
            p.wait()
    return 0


def cmd_demo(*, shares: str, quantum_ms: float, seconds: float, seed: int) -> int:
    from repro.alps.config import AlpsConfig
    from repro.metrics.accuracy import (
        mean_rms_relative_error,
        per_subject_fractions,
    )
    from repro.units import ms, sec
    from repro.workloads.scenarios import build_controlled_workload

    share_list = [int(s) for s in shares.split(",") if s.strip()]
    if not share_list or any(s <= 0 for s in share_list):
        print("shares must be positive integers, e.g. --shares 1,2,3")
        return 2
    cw = build_controlled_workload(
        share_list, AlpsConfig(quantum_us=ms(quantum_ms)), seed=seed
    )
    cw.engine.run_until(sec(seconds))
    from repro.analysis.summary import summarize_workload

    print(summarize_workload(cw).format())
    return 0


def cmd_perf_report(
    *,
    shares: str,
    quantum_ms: float,
    seconds: float,
    seed: int,
    profile: bool,
    backend: str = "auto",
) -> int:
    """Run a controlled workload with counters attached and report them.

    ``backend="all"`` instead runs the same workload once per kernel
    backend and prints the active fastloop implementation plus a
    side-by-side events/sec comparison table.
    """
    from repro.alps.config import AlpsConfig
    from repro.kernel.kconfig import KernelConfig
    from repro.perf.counters import PerfCounters
    from repro.perf.profiler import profile_call
    from repro.perf.report import collect_workload_counters, render_report
    from repro.units import ms, sec
    from repro.workloads.scenarios import build_controlled_workload

    share_list = [int(s) for s in shares.split(",") if s.strip()]
    if not share_list or any(s <= 0 for s in share_list):
        print("shares must be positive integers, e.g. --shares 1,2,3")
        return 2
    if backend == "all":
        return _perf_report_all_backends(
            share_list,
            quantum_ms=quantum_ms,
            seconds=seconds,
            seed=seed,
            profile=profile,
        )
    counters = PerfCounters()
    cw = build_controlled_workload(
        share_list,
        AlpsConfig(quantum_us=ms(quantum_ms)),
        seed=seed,
        kernel_config=KernelConfig(
            strict=(backend == "strict"), backend=backend
        ),
        counters=counters,
    )
    if profile:
        profiled = profile_call(cw.engine.run_until, sec(seconds))
        print(profiled.report)
    else:
        cw.engine.run_until(sec(seconds))
    collect_workload_counters(cw, into=counters)
    print(render_report(counters))
    return 0


#: Backend order of the ``perf report --backend all`` comparison table.
_REPORT_BACKENDS = ("strict", "optimized", "batch", "resident")


def _perf_report_all_backends(
    share_list: list,
    *,
    quantum_ms: float,
    seconds: float,
    seed: int,
    profile: bool,
) -> int:
    """Run the workload once per kernel backend; print events/sec
    side-by-side plus which fastloop implementation is active."""
    import time

    from repro.alps.config import AlpsConfig
    from repro.kernel.kconfig import KernelConfig
    from repro.sim.fastloop import ACTIVE_IMPL
    from repro.units import ms, sec
    from repro.workloads.scenarios import build_controlled_workload

    if profile:
        print("[--profile applies to single-backend runs; ignoring]")
    print(f"fastloop impl: {ACTIVE_IMPL}")
    print(f"{'backend':<10} {'events':>8} {'wall_s':>8} {'events/sec':>12}")
    rows = []
    for backend in _REPORT_BACKENDS:
        cw = build_controlled_workload(
            share_list,
            AlpsConfig(quantum_us=ms(quantum_ms)),
            seed=seed,
            kernel_config=KernelConfig(
                strict=(backend == "strict"), backend=backend
            ),
        )
        t0 = time.perf_counter()
        cw.engine.run_until(sec(seconds))
        wall = time.perf_counter() - t0
        events = cw.engine.events_processed
        rows.append((backend, events))
        print(
            f"{backend:<10} {events:>8} {wall:>8.3f} "
            f"{events / wall:>12.1f}"
        )
    counts = {events for _, events in rows}
    if len(counts) == 1:
        print(f"\nall backends agree on {rows[0][1]} events")
    else:
        print("\nWARNING: event counts differ across backends:")
        for backend, events in rows:
            print(f"  {backend}: {events}")
        return 1
    return 0


def cmd_perf_diff(
    *,
    sizes: str,
    seeds: str,
    quantum_ms: float,
    seconds: float,
    backend: str = "optimized",
) -> int:
    """Run the strict-vs-challenger differential sweep and report results.

    ``backend`` selects the challenger compared against the strict
    reference: ``optimized`` (default), ``batch``, or ``resident``.

    On any mismatch the exit status is non-zero and a one-line summary
    goes to *stderr* naming the first mismatching cell — challenger
    backend, share model, workload size, seed — and the offset of the
    first diverging byte within the fingerprint, so CI logs point at
    the offending cell without scraping the full table.
    """
    import sys

    from repro.perf.differential import differential_check
    from repro.units import ms, sec

    size_list = [int(s) for s in sizes.split(",") if s.strip()]
    seed_list = [int(s) for s in seeds.split(",") if s.strip()]
    if not size_list or not seed_list:
        print("need at least one size and one seed")
        return 2
    results = differential_check(
        sizes=size_list,
        seeds=seed_list,
        quantum_us=ms(quantum_ms),
        horizon_us=sec(seconds),
        backend=backend,
    )
    mismatches = 0
    first_bad = None
    for cell in results:
        status = "ok" if cell.matches else "MISMATCH"
        line = (
            f"{cell.model.value:<8} n={cell.n:<3} seed={cell.seed}  "
            f"{cell.strict_digest}  {status}"
        )
        if not cell.matches:
            mismatches += 1
            if first_bad is None:
                first_bad = cell
            line += f"\n    {cell.detail}"
        print(line)
    print(
        f"\n{len(results)} cells, {mismatches} mismatches"
        + ("" if mismatches else f" — strict and {backend} paths agree")
    )
    if first_bad is not None:
        where = (
            f"{first_bad.diverged_section} byte {first_bad.diverged_byte}"
            if first_bad.diverged_byte >= 0
            else "scalar fields (event count / final clock)"
        )
        print(
            f"perf diff: first mismatch: backend={backend} "
            f"model={first_bad.model.value} n={first_bad.n} "
            f"seed={first_bad.seed}; first divergence: {where}",
            file=sys.stderr,
        )
    return 1 if mismatches else 0


# ---------------------------------------------------------------------------
def _observed_workload(shares: str, quantum_ms: float, seed: int):
    """Build a controlled workload with a fresh Observer attached."""
    from repro.alps.config import AlpsConfig
    from repro.obs import Observer
    from repro.units import ms
    from repro.workloads.scenarios import build_controlled_workload

    share_list = [int(s) for s in shares.split(",") if s.strip()]
    if not share_list or any(s <= 0 for s in share_list):
        print("shares must be positive integers, e.g. --shares 1,2,3")
        return None
    return build_controlled_workload(
        share_list,
        AlpsConfig(quantum_us=ms(quantum_ms)),
        seed=seed,
        observer=Observer(),
    )


def cmd_top(
    *,
    shares: str,
    quantum_ms: float,
    seed: int,
    frame_ms: float,
    frames: Optional[int],
    interval: float,
    skip_cycles: int,
    tree: bool = False,
    cells: int = 1,
) -> int:
    """Live share-vs-attained view over a simulated workload.

    ``tree=True`` runs the docs chapter's demo share tree
    (:func:`repro.sharetree.demo_tree`) instead of the flat ``shares``
    list and renders the indented per-subtree view.  ``cells > 1``
    shards that tree over a supervised
    :class:`~repro.sharetree.plane.ShardedAlpsPlane` and adds per-cell
    health lines (supervisor state, restarts, epoch, last re-home).
    """
    from repro.obs.top import run_top
    from repro.units import ms

    if cells < 1:
        print(f"repro top: --cells must be >= 1, got {cells}")
        return 2
    if tree and cells > 1:
        from repro.alps.config import AlpsConfig
        from repro.obs import Observer
        from repro.obs.top import run_plane_top
        from repro.sharetree import ShardedAlpsPlane, demo_tree
        from repro.sharetree.resilience import PlaneResilienceConfig

        plane = ShardedAlpsPlane(
            demo_tree(),
            AlpsConfig(quantum_us=ms(quantum_ms)),
            cells=cells,
            seed=seed,
            observer=Observer(),
            resilience=PlaneResilienceConfig(),
        )
        run_plane_top(
            plane,
            frame_us=ms(frame_ms),
            frames=frames,
            interval_s=interval,
        )
        return 0
    if tree:
        from repro.alps.config import AlpsConfig
        from repro.obs import Observer
        from repro.sharetree import demo_tree
        from repro.workloads.scenarios import build_controlled_workload

        demo = demo_tree()
        leaf_weights = [leaf.weight for leaf in demo.leaves()]
        cw = build_controlled_workload(
            leaf_weights,
            AlpsConfig(quantum_us=ms(quantum_ms)),
            seed=seed,
            observer=Observer(),
            sharetree=demo,
        )
    else:
        cw = _observed_workload(shares, quantum_ms, seed)
    if cw is None:
        return 2
    run_top(
        cw,
        frame_us=ms(frame_ms),
        frames=frames,
        interval_s=interval,
        skip_cycles=skip_cycles,
        tree=tree,
    )
    return 0


def cmd_obs_tail(
    *,
    shares: str,
    quantum_ms: float,
    seconds: float,
    seed: int,
    count: int,
    kind: Optional[str],
) -> int:
    """Run an observed workload and print its last events as JSONL."""
    from repro.units import sec

    cw = _observed_workload(shares, quantum_ms, seed)
    if cw is None:
        return 2
    cw.engine.run_until(sec(seconds))
    log = cw.observer.events
    events = log.of_kind(kind) if kind else list(log.tail(len(log)))
    for ev in events[-count:]:
        print(ev.to_json())
    print(
        f"# {log.emitted} events emitted, {log.dropped} dropped "
        f"(ring capacity {log.capacity})"
    )
    return 0


def cmd_obs_export(
    *,
    shares: str,
    quantum_ms: float,
    seconds: float,
    seed: int,
    fmt: str,
    out: Optional[str],
    events_out: Optional[str],
) -> int:
    """Run an observed workload and export its metrics (and events)."""
    from repro.obs.bridge import collect_workload
    from repro.obs.export import (
        events_to_jsonl,
        metrics_to_csv,
        metrics_to_jsonl,
        metrics_to_prometheus,
    )
    from repro.units import sec

    cw = _observed_workload(shares, quantum_ms, seed)
    if cw is None:
        return 2
    cw.engine.run_until(sec(seconds))
    obs = collect_workload(cw)
    # Fold the sweep cache's counters (this process + lifetime totals
    # from the cache root's stats.json) into the exported registry.
    from repro.sweep.cache import attach_sweep_metrics

    attach_sweep_metrics(obs.metrics)
    renderers = {
        "jsonl": metrics_to_jsonl,
        "csv": metrics_to_csv,
        "prometheus": metrics_to_prometheus,
    }
    text = renderers[fmt](obs.metrics)
    if out:
        with open(out, "w", encoding="utf-8") as fh:
            fh.write(text)
        print(f"[metrics written to {out}]")
    else:
        print(text, end="" if text.endswith("\n") else "\n")
    if events_out:
        log = obs.events
        with open(events_out, "w", encoding="utf-8") as fh:
            fh.write(events_to_jsonl(log.tail(len(log))))
        print(
            f"[{len(log)} events written to {events_out}; "
            f"{log.dropped} dropped from ring]"
        )
    return 0


def cmd_obs_snapshot(
    *,
    full: bool,
    seed: int,
    csv: Optional[str],
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    """Canonical observed run: entitlement table + Table 1 cost spans.

    The report's observability section — everything below is produced
    by the ``repro.obs`` exporters from one observed workload, so the
    numbers are exactly reproducible from the seed.
    """
    from repro.obs.bridge import collect_workload
    from repro.obs.export import rows_to_markdown
    from repro.units import sec

    cw = _observed_workload("1,2,4", 10.0, seed)
    assert cw is not None
    cw.engine.run_until(sec(30 if full else 10))
    obs = collect_workload(cw, skip_cycles=5)
    reg = obs.metrics
    rows = []
    for sid in range(len(cw.shares)):
        lbl = {"sid": str(sid)}
        target = reg.get("alps_subject_target_fraction", lbl).value
        got = reg.get("alps_subject_attained_fraction", lbl).value
        rows.append(
            [sid, int(reg.get("alps_subject_share", lbl).value),
             f"{target:.1%}", f"{got:.1%}", f"{got - target:+.2%}"]
        )
    print("Shares 1:2:4, Q = 10 ms, skip 5 warm-up cycles "
          f"(seed {seed}, `python -m repro obs export`):\n")
    print(rows_to_markdown(
        ["sid", "share", "target", "attained", "drift"], rows
    ))
    print(
        f"\nRMS error {reg.get('alps_rms_error_pct').value:.2f}%, "
        f"overhead {reg.get('alps_overhead_fraction').value:.2%}, "
        f"{int(reg.get('alps_cycles_completed').value)} cycles, "
        f"{obs.events.emitted} structured events.\n"
    )
    print("Agent cost breakdown (virtual µs, Table 1 cost model):\n")
    print(obs.spans.format_breakdown())
    _maybe_csv(csv, [
        {"sid": r[0], "share": r[1], "target": r[2],
         "attained": r[3], "drift": r[4]} for r in rows
    ])
    return 0


# ---------------------------------------------------------------------------
def _parse_rates(rates: str) -> tuple[float, ...]:
    try:
        parsed = tuple(float(tok) for tok in rates.split(",") if tok.strip())
    except ValueError:
        raise SystemExit(f"invalid --rates {rates!r}: expected floats")
    if not parsed:
        raise SystemExit("at least one fault rate is required")
    return parsed


def _run_chaos(
    *,
    seed: int,
    episodes: int,
    rates: str,
    shares: Optional[str],
    quantum_ms: float,
    cycles: int,
    suite: str,
    workers: Optional[int],
    no_cache: bool,
):
    from repro.resilience.chaos import run_chaos_campaign

    return run_chaos_campaign(
        seed,
        suite=suite,
        episodes=episodes,
        rates=_parse_rates(rates),
        shares=(
            tuple(int(s) for s in shares.split(",")) if shares else None
        ),
        quantum_ms=quantum_ms,
        cycles=cycles,
        workers=workers,
        cache=_sweep_cache(no_cache),
    )


def _chaos_verdict(report) -> int:
    """Shared exit policy: non-zero with a stderr summary on violation."""
    import sys

    violations = report.violations()
    if not violations:
        return 0
    print(
        f"chaos: {len(violations)} invariant violation(s):", file=sys.stderr
    )
    for ep, name, detail in violations:
        print(f"  episode {ep}: {name}: {detail}", file=sys.stderr)
    return 1


def cmd_chaos_run(
    *,
    seed: int,
    episodes: int,
    rates: str,
    shares: Optional[str],
    quantum_ms: float,
    cycles: int,
    suite: str = "resilience",
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    """``repro chaos run`` — one seeded campaign, table to stdout."""
    report = _run_chaos(
        seed=seed, episodes=episodes, rates=rates, shares=shares,
        quantum_ms=quantum_ms, cycles=cycles, suite=suite, workers=workers,
        no_cache=no_cache,
    )
    print(report.format_table())
    return _chaos_verdict(report)


def cmd_chaos_report(
    *,
    seed: int,
    episodes: int,
    rates: str,
    shares: Optional[str],
    quantum_ms: float,
    cycles: int,
    out: str,
    suite: str = "resilience",
    workers: Optional[int] = None,
    no_cache: bool = False,
) -> int:
    """``repro chaos report`` — campaign + full JSON detail to a file."""
    import json

    from repro.resilience.chaos import episode_payload

    report = _run_chaos(
        seed=seed, episodes=episodes, rates=rates, shares=shares,
        quantum_ms=quantum_ms, cycles=cycles, suite=suite, workers=workers,
        no_cache=no_cache,
    )
    payload = {
        "campaign_seed": report.campaign_seed,
        "ok": report.ok,
        "episodes": [episode_payload(ep) for ep in report.episodes],
    }
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(report.format_table())
    print(f"\n[chaos report written to {out}]")
    return _chaos_verdict(report)
