"""Exception hierarchy for the ALPS reproduction library."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class SimulationError(ReproError):
    """Raised for inconsistencies detected inside the simulation engine."""


class SimulationTruncatedError(SimulationError):
    """Raised when a bounded run ends before reaching its goal.

    Carries how far the run got so callers that can tolerate partial
    results (e.g. past-breakdown scalability sweeps) can still consume
    them after catching — or opt out with ``on_incomplete="ignore"``.
    """

    def __init__(self, goal: str, reached: str) -> None:
        super().__init__(f"simulation truncated: wanted {goal}, reached {reached}")
        self.goal = goal
        self.reached = reached


class KernelError(ReproError):
    """Raised for invalid operations against the simulated kernel."""


class NoSuchProcessError(KernelError):
    """Raised when a pid does not name a live process."""

    def __init__(self, pid: int) -> None:
        super().__init__(f"no such process: pid {pid}")
        self.pid = pid


class InvalidProcessStateError(KernelError):
    """Raised when an operation is illegal in the process's current state."""


class TransientReadError(KernelError):
    """Raised when a process-accounting read fails transiently.

    Unlike :class:`NoSuchProcessError` the target is still alive; the
    caller may retry.  Fault injection uses this to model EAGAIN-style
    procfs/kvm read failures.
    """

    def __init__(self, pid: int) -> None:
        super().__init__(f"transient accounting read failure: pid {pid}")
        self.pid = pid


class SchedulerConfigError(ReproError):
    """Raised for invalid ALPS or kernel scheduler configuration."""


class SweepError(ReproError):
    """Raised for failures in the sweep scheduler or result cache."""


class SweepCellError(SweepError):
    """A sweep cell failed (worker exception, exhausted retries).

    Carries the failing cell's configuration so a mid-sweep crash names
    the exact (experiment, params) that died instead of losing it in a
    pool traceback.
    """

    def __init__(
        self, experiment: str, params, reason: str, *, attempts: int = 1
    ) -> None:
        super().__init__(
            f"sweep cell failed after {attempts} attempt(s): "
            f"experiment={experiment!r} params={params!r}: {reason}"
        )
        self.experiment = experiment
        self.params = params
        self.reason = reason
        self.attempts = attempts


class SweepCellTimeoutError(SweepCellError):
    """A sweep cell exceeded its per-cell timeout (after retries)."""


class HostOSError(ReproError):
    """Raised by the real-OS backend for host-level failures."""


class ResilienceError(ReproError):
    """Base class for the crash-safety subsystem (:mod:`repro.resilience`)."""


class JournalCorruptError(ResilienceError):
    """Raised when a state journal cannot yield a usable snapshot.

    Tolerant recovery truncates torn or corrupt *tail* records silently;
    this error means the damage goes deeper — a valid-looking record
    carries an unusable payload (wrong snapshot version, missing
    fields), or a strict recovery found bytes it had to discard.
    Catchers fall back to the lossy re-baseline restart path.
    """

    def __init__(self, reason: str, *, discarded_bytes: int = 0) -> None:
        super().__init__(f"journal corrupt: {reason}")
        self.reason = reason
        self.discarded_bytes = discarded_bytes


class RestartBudgetExhausted(ResilienceError):
    """Raised by the supervisor when a crashing agent exceeds its
    restart budget; the catcher must enter the degraded "resume-all and
    stand down" mode instead of restarting again."""

    def __init__(self, restarts: int, budget: int) -> None:
        super().__init__(
            f"restart budget exhausted: {restarts} restarts, budget {budget}"
        )
        self.restarts = restarts
        self.budget = budget


class MigrationTornError(ResilienceError):
    """A sharded-plane migration was torn mid-batch by an injected
    :class:`~repro.faults.plan.MigrationTear`.

    ``crash=True`` models the controller process dying — no in-process
    cleanup ran, and the caller must run
    :meth:`~repro.sharetree.resilience.PlaneResilience.salvage` to
    complete or roll back the journaled intent.  ``crash=False`` is an
    ordinary mid-rebalance exception; the readmit-to-source guard has
    already restored the membership partition by the time it propagates.
    """

    def __init__(self, *, crash: bool, after_ops: int) -> None:
        mode = "controller crash" if crash else "exception"
        super().__init__(
            f"migration torn ({mode}) after {after_ops} release/adopt op(s)"
        )
        self.crash = crash
        self.after_ops = after_ops


class InvariantViolation(ResilienceError):
    """One or more chaos-campaign invariants failed.

    Carries the individual violations as ``(episode, invariant, detail)``
    triples so the CLI can print a summary before exiting non-zero.
    """

    def __init__(self, violations) -> None:
        self.violations = list(violations)
        lines = ", ".join(
            f"episode {ep}: {name} ({detail})" for ep, name, detail in self.violations
        )
        super().__init__(
            f"{len(self.violations)} chaos invariant violation(s): {lines}"
        )
