"""Deterministic fault injection against the simulated kernel.

The :class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultPlan`
into runtime misbehavior along three seams:

* **engine events** — scheduled/Poisson process crashes and fork storms
  are materialised at :meth:`arm` time and fired by the event loop;
* **the system-call surface** — :meth:`wrap` returns a
  :class:`FaultyKernelAPI` that transparently drops/delays signals and
  fails accounting reads with the plan's probabilities;
* **the agent's own execution** — :class:`FaultableAlpsBehavior`
  interposes on the agent's action stream to stretch its sleeps past
  quantum boundaries (stalls) and to crash-and-restart it.

Every injected fault is appended to :attr:`FaultInjector.trace`;
:meth:`trace_lines` renders it as a stable text form so tests can assert
byte-identical replay for equal seeds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import NoSuchProcessError, TransientReadError
from repro.faults.plan import AgentCrash, FaultPlan, FaultRecord
from repro.kernel.actions import Action, Sleep
from repro.kernel.signals import SIGKILL, signal_name
from repro.sim.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alps.agent import AlpsAgent
    from repro.kernel.behaviors import Behavior
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.sim.engine import Engine


class FaultInjector:
    """Runtime state of one fault plan over one simulation."""

    def __init__(
        self,
        plan: FaultPlan,
        engine: "Engine",
        kernel: "Kernel",
        *,
        behavior_factory: Optional[Callable[[], "Behavior"]] = None,
    ) -> None:
        self.plan = plan
        self.engine = engine
        self.kernel = kernel
        self._behavior_factory = behavior_factory
        self.rng = RngStreams(plan.seed)
        self.trace: list[FaultRecord] = []
        self._armed = False
        self._victims: list[int] = []
        # Agent-targeted overload faults (docs/overload.md), armed by
        # arm_agent() once the agent exists.
        self._agent_armed = False
        self._agent: Optional["AlpsAgent"] = None
        self._alps_pid: Optional[int] = None
        self._kapi: Optional["KernelAPI"] = None
        #: Next sid handed to a storm arrival; far above any workload's
        #: own sids so storm subjects can never collide.
        self._next_storm_sid = 1_000_000
        # Agent-fault schedules, consumed in time order by the wrapper.
        self._stalls = sorted(plan.agent_stalls, key=lambda s: s.time_us)
        self._agent_crashes = sorted(plan.agent_crashes, key=lambda c: c.time_us)
        # Counters (exported by the robustness experiment).
        self.crashes_injected = 0
        self.forks_spawned = 0
        self.signals_dropped = 0
        self.signals_delayed = 0
        self.reads_failed = 0
        self.stalls_injected = 0
        self.agent_crashes_injected = 0
        self.journal_writes_lost = 0
        self.journal_writes_torn = 0
        self.storm_arrivals = 0
        self.nice_bombs_injected = 0

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def record(self, kind: str, detail: str) -> None:
        """Append one fault occurrence to the replay trace.

        Mirrored into the attached observer's event log (kind
        ``fault.<kind>``) when the engine carries one, so exported
        JSONL streams interleave injected misbehavior with the
        scheduler's own events.
        """
        self.trace.append(FaultRecord(self.engine.now, kind, detail))
        obs = self.engine.observer
        if obs is not None and obs.enabled:
            obs.events.emit(self.engine.now, "fault." + kind, detail=detail)

    def trace_lines(self) -> list[str]:
        """Stable textual trace (equal seeds must replay it verbatim)."""
        return [rec.line() for rec in self.trace]

    # ------------------------------------------------------------------
    # Arming: materialise the time-triggered schedule
    # ------------------------------------------------------------------
    def arm(self, victim_pids: list[int]) -> None:
        """Schedule the plan's time-triggered faults.

        ``victim_pids`` are the controlled worker pids, in spawn order;
        crash victim indexes resolve against this list, so the mapping
        is stable across runs.
        """
        if self._armed:
            raise RuntimeError("FaultInjector.arm() called twice")
        self._armed = True
        self._victims = list(victim_pids)
        crash_times: list[tuple[int, int]] = [
            (c.time_us, c.victim_index) for c in self.plan.crashes
        ]
        if self.plan.crash_rate_per_sec > 0 and self._victims:
            stream = self.rng.stream("crash")
            t = 0.0
            scale = 1_000_000 / self.plan.crash_rate_per_sec
            while True:
                t += float(stream.exponential(scale))
                if t >= self.plan.horizon_us:
                    break
                victim = int(stream.integers(0, len(self._victims)))
                crash_times.append((int(t), victim))
        for when, victim_index in sorted(crash_times):
            self.engine.at(
                max(when, self.engine.now),
                self._fire_crash,
                payload=victim_index,
                tag="fault:crash",
            )
        for storm in self.plan.fork_storms:
            self.engine.at(
                max(storm.time_us, self.engine.now),
                self._fire_fork_storm,
                payload=storm,
                tag="fault:forkstorm",
            )

    def arm_agent(self, agent: "AlpsAgent", alps_pid: int) -> None:
        """Schedule the agent-targeted overload faults.

        Arrival storms need the agent's admission surface
        (:meth:`~repro.alps.agent.AlpsAgent.submit_subject`) and nice
        bombs need the agent's pid, so this is a second arming step run
        after the agent is spawned (``build_controlled_workload`` wires
        it).  A plan with neither fault kind schedules nothing.
        """
        if self._agent_armed:
            raise RuntimeError("FaultInjector.arm_agent() called twice")
        self._agent_armed = True
        self._agent = agent
        self._alps_pid = alps_pid
        for storm in self.plan.arrival_storms:
            self.engine.at(
                max(storm.time_us, self.engine.now),
                self._fire_arrival_storm,
                payload=storm,
                tag="fault:arrivalstorm",
            )
        for bomb in self.plan.agent_nice_bombs:
            self.engine.at(
                max(bomb.time_us, self.engine.now),
                self._fire_nice_bomb,
                payload=bomb,
                tag="fault:nicebomb",
            )

    def _fire_arrival_storm(self, event) -> None:
        from repro.alps.subjects import ProcessSubject

        storm = event.payload
        agent = self._agent
        if agent is None:  # pragma: no cover - armed without an agent
            return
        if self._kapi is None:
            from repro.kernel.kapi import KernelAPI

            self._kapi = KernelAPI(self.kernel)
        if self._behavior_factory is None:
            from repro.workloads.spinner import spinner_behavior

            factory: Callable[[], "Behavior"] = spinner_behavior
        else:
            factory = self._behavior_factory
        admitted = 0
        pids: list[int] = []
        for i in range(storm.count):
            sid = self._next_storm_sid
            self._next_storm_sid += 1
            proc = self.kernel.spawn(
                f"arr-u{storm.uid}-{sid}", factory(), uid=storm.uid
            )
            pids.append(proc.pid)
            subject = ProcessSubject(sid=sid, share=storm.share, pid=proc.pid)
            if agent.submit_subject(subject, self._kapi):
                admitted += 1
        if storm.lifetime_us > 0:
            self.engine.after(
                storm.lifetime_us,
                self._fire_storm_reap,
                payload=tuple(pids),
                tag="fault:stormreap",
            )
        self.storm_arrivals += storm.count
        self.record(
            "arrival-storm",
            f"uid={storm.uid} count={storm.count} admitted={admitted}",
        )

    def _fire_storm_reap(self, event) -> None:
        """End of a storm's lifetime: kill its processes so the load
        clears and recovery has something to recover *to*."""
        reaped = 0
        for pid in event.payload:
            try:
                self.kernel.kill(pid, SIGKILL)
            except NoSuchProcessError:
                continue
            reaped += 1
        self.record("storm-reap", f"count={reaped}")

    def _fire_nice_bomb(self, event) -> None:
        bomb = event.payload
        pid = self._alps_pid
        if pid is None:  # pragma: no cover - armed without an agent
            return
        try:
            old = self.kernel.renice(pid, bomb.nice)
        except NoSuchProcessError:
            self.record("nice-bomb-noop", f"pid={pid}")
            return
        self.nice_bombs_injected += 1
        self.record(
            "nice-bomb",
            f"pid={pid} nice={bomb.nice} duration_us={bomb.duration_us}",
        )
        self.engine.after(
            bomb.duration_us,
            self._fire_nice_restore,
            payload=(pid, old),
            tag="fault:nicerestore",
        )

    def _fire_nice_restore(self, event) -> None:
        pid, old = event.payload
        try:
            self.kernel.renice(pid, old)
        except NoSuchProcessError:
            return
        self.record("nice-restore", f"pid={pid} nice={old}")

    def _fire_crash(self, event) -> None:
        if not self._victims:
            return
        pid = self._victims[event.payload % len(self._victims)]
        try:
            self.kernel.kill(pid, SIGKILL)
        except NoSuchProcessError:
            self.record("crash-noop", f"pid={pid}")
            return
        self.crashes_injected += 1
        self.record("crash", f"pid={pid}")

    def _fire_fork_storm(self, event) -> None:
        storm = event.payload
        if self._behavior_factory is None:
            from repro.workloads.spinner import spinner_behavior

            factory: Callable[[], "Behavior"] = spinner_behavior
        else:
            factory = self._behavior_factory
        for i in range(storm.count):
            self.kernel.spawn(
                f"storm-u{storm.uid}-{i}", factory(), uid=storm.uid
            )
        self.forks_spawned += storm.count
        self.record("forkstorm", f"uid={storm.uid} count={storm.count}")

    # ------------------------------------------------------------------
    # Per-operation faults (called by FaultyKernelAPI)
    # ------------------------------------------------------------------
    def fault_getrusage(self, kapi: "KernelAPI", pid: int) -> int:
        plan = self.plan
        if plan.rusage_fail_prob > 0 and (
            float(self.rng.stream("read").random()) < plan.rusage_fail_prob
        ):
            self.reads_failed += 1
            self.record("read-fail", f"pid={pid}")
            raise TransientReadError(pid)
        return kapi.getrusage(pid)

    def fault_kill(self, kapi: "KernelAPI", pid: int, signo: int) -> None:
        plan = self.plan
        if plan.signal_drop_prob > 0 or plan.signal_delay_prob > 0:
            draw = float(self.rng.stream("signal").random())
            if draw < plan.signal_drop_prob:
                self.signals_dropped += 1
                self.record("signal-drop", f"pid={pid} sig={signal_name(signo)}")
                return
            if draw < plan.signal_drop_prob + plan.signal_delay_prob:
                self.signals_delayed += 1
                self.record("signal-delay", f"pid={pid} sig={signal_name(signo)}")
                self.engine.after(
                    plan.signal_delay_us,
                    self._fire_delayed_signal,
                    payload=(pid, signo),
                    tag="fault:sigdelay",
                )
                return
        kapi.kill(pid, signo)

    def _fire_delayed_signal(self, event) -> None:
        pid, signo = event.payload
        try:
            self.kernel.kill(pid, signo)
        except NoSuchProcessError:
            pass

    # ------------------------------------------------------------------
    # Agent faults (called by FaultableAlpsBehavior)
    # ------------------------------------------------------------------
    def stall_quanta(self, now: int) -> int:
        """Quanta the agent must oversleep right now (0 = no stall)."""
        total = 0
        while self._stalls and self._stalls[0].time_us <= now:
            stall = self._stalls.pop(0)
            total += stall.skipped_quanta
            self.stalls_injected += 1
            self.record("stall", f"quanta={stall.skipped_quanta}")
        if self.plan.agent_stall_prob > 0 and (
            float(self.rng.stream("stall").random()) < self.plan.agent_stall_prob
        ):
            total += self.plan.agent_stall_quanta
            self.stalls_injected += 1
            self.record("stall", f"quanta={self.plan.agent_stall_quanta}")
        return total

    def agent_crash_due(self, now: int) -> Optional[AgentCrash]:
        """The agent crash scheduled at or before ``now``, if any."""
        if self._agent_crashes and self._agent_crashes[0].time_us <= now:
            crash = self._agent_crashes.pop(0)
            self.agent_crashes_injected += 1
            self.record("agent-crash", f"downtime_us={crash.downtime_us}")
            return crash
        return None

    # ------------------------------------------------------------------
    # Journal-persistence faults (repro.resilience.journal fault hook)
    # ------------------------------------------------------------------
    def fault_journal_append(self, encoded: bytes) -> Optional[bytes]:
        """Perturb one journal append per the plan's write-fault rates.

        Returns the bytes that actually reach the store: ``None`` for a
        lost write, a truncated prefix for a torn one, or ``encoded``
        unchanged.  Draws come from the dedicated ``journal`` RNG
        stream, so enabling journal faults cannot shift the schedule of
        any other fault kind.  Pass this method as
        :class:`~repro.resilience.journal.MemoryJournal`'s
        ``fault_hook``.
        """
        plan = self.plan
        if plan.journal_write_fail_prob <= 0 and plan.journal_torn_write_prob <= 0:
            return encoded
        stream = self.rng.stream("journal")
        draw = float(stream.random())
        if draw < plan.journal_write_fail_prob:
            self.journal_writes_lost += 1
            self.record("journal-drop", f"bytes={len(encoded)}")
            return None
        if draw < plan.journal_write_fail_prob + plan.journal_torn_write_prob:
            cut = 1 + int(stream.integers(0, max(1, len(encoded) - 1)))
            self.journal_writes_torn += 1
            self.record("journal-torn", f"kept={cut} of={len(encoded)}")
            return encoded[:cut]
        return encoded

    # ------------------------------------------------------------------
    # KernelAPI wrapping
    # ------------------------------------------------------------------
    def wrap(self, kapi: "KernelAPI") -> "FaultyKernelAPI":
        """A KernelAPI view of ``kapi`` with this plan's faults applied."""
        return FaultyKernelAPI(kapi, self)


class FaultyKernelAPI:
    """KernelAPI-compatible proxy that injects signal/read faults.

    Only the operations the plan can perturb are intercepted; everything
    else delegates verbatim, so a null plan is an exact pass-through.
    """

    __slots__ = ("_inner", "_injector")

    def __init__(self, inner: "KernelAPI", injector: FaultInjector) -> None:
        self._inner = inner
        self._injector = injector

    @property
    def now(self) -> int:
        return self._inner.now

    @property
    def observer(self):
        return self._inner.observer

    def getrusage(self, pid: int) -> int:
        return self._injector.fault_getrusage(self._inner, pid)

    def kill(self, pid: int, signo: int) -> None:
        self._injector.fault_kill(self._inner, pid, signo)

    def wait_channel_of(self, pid: int):
        return self._inner.wait_channel_of(pid)

    def is_blocked(self, pid: int) -> bool:
        return self._inner.is_blocked(pid)

    def is_stopped(self, pid: int) -> bool:
        return self._inner.is_stopped(pid)

    def spawn(self, name, behavior, *, uid=0, nice=0, start_delay=0):
        return self._inner.spawn(
            name, behavior, uid=uid, nice=nice, start_delay=start_delay
        )

    def pids_of_uid(self, uid: int) -> list[int]:
        return self._inner.pids_of_uid(uid)

    def pid_exists(self, pid: int) -> bool:
        return self._inner.pid_exists(pid)

    def exit_count(self) -> int:
        return self._inner.exit_count()

    def wakeup(self, channel: str) -> int:
        return self._inner.wakeup(channel)

    def wakeup_one(self, channel: str) -> bool:
        return self._inner.wakeup_one(channel)


class FaultableAlpsBehavior:
    """Behavior wrapper hosting an ALPS agent under fault injection.

    The wrapped agent sees the world through the injector's faulty
    KernelAPI; on top of that the wrapper stretches the agent's sleeps
    (stall faults) and simulates crash-with-restart by wiping the
    agent's volatile state and idling it for the crash's downtime.
    """

    __slots__ = ("agent", "injector", "_fkapi")

    def __init__(self, agent: "AlpsAgent", injector: FaultInjector) -> None:
        self.agent = agent
        self.injector = injector
        self._fkapi: Optional[FaultyKernelAPI] = None

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        if self._fkapi is None:
            self._fkapi = self.injector.wrap(kapi)
        crash = self.injector.agent_crash_due(kapi.now)
        if crash is not None:
            self.agent.restart()
            return Sleep(crash.downtime_us, channel="alpsrestart")
        action = self.agent.next_action(proc, self._fkapi)
        if isinstance(action, Sleep) and action.channel == "alpstimer":
            extra = self.injector.stall_quanta(kapi.now)
            if extra:
                action = Sleep(
                    action.duration_us + extra * self.agent.cfg.quantum_us,
                    channel=action.channel,
                )
        return action


__all__ = ["FaultInjector", "FaultyKernelAPI", "FaultableAlpsBehavior"]
