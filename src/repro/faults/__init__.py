"""Deterministic fault injection for the ALPS reproduction.

The seed reproduction exercised only the happy path; a production
resource manager must absorb process churn, lost signals, failed
accounting reads, and its own stalls and crashes.  This package makes
those failures a first-class, *reproducible* input: a seeded
:class:`FaultPlan` describes what goes wrong, a :class:`FaultInjector`
enacts it against the simulated kernel, and the agent's recovery paths
(:mod:`repro.alps.agent`) turn graceful degradation into a measurable
curve (:mod:`repro.experiments.robustness`).

See ``docs/fault_model.md`` for the fault taxonomy and the determinism
contract.
"""

from repro.faults.injector import (
    FaultableAlpsBehavior,
    FaultInjector,
    FaultyKernelAPI,
)
from repro.faults.plan import (
    AgentCrash,
    AgentStall,
    CellCrash,
    FaultPlan,
    FaultRecord,
    ForkStorm,
    MigrationTear,
    ProcessCrash,
    default_fault_plan,
)

__all__ = [
    "AgentCrash",
    "AgentStall",
    "CellCrash",
    "FaultInjector",
    "FaultPlan",
    "FaultRecord",
    "FaultableAlpsBehavior",
    "FaultyKernelAPI",
    "ForkStorm",
    "MigrationTear",
    "ProcessCrash",
    "default_fault_plan",
]
