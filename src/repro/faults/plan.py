"""Declarative, seeded fault plans.

A :class:`FaultPlan` describes *what goes wrong and when* for one run:
process crashes (scheduled or Poisson-random), fork storms against a
multi-process principal, lost or delayed SIGSTOP/SIGCONT delivery,
transient accounting-read failures, agent oversleeps that skip quantum
boundaries, and agent crash-with-restart.

Determinism contract
--------------------
All randomness is drawn from :class:`~repro.sim.rng.RngStreams` seeded
with ``plan.seed`` — *not* from the simulation engine's streams — so a
plan replays the identical fault schedule regardless of unrelated code
changes.  Time-triggered faults (crash schedule, fork storms, agent
crashes) are fully materialised up front by the injector; per-operation
faults (signal loss, read failures) are drawn at operation time, which
is still deterministic because the simulation itself is.  A plan with
every rate at zero and every schedule empty injects nothing and must
leave results byte-identical to a run without an injector.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulerConfigError
from repro.units import MSEC, SEC


@dataclass(slots=True, frozen=True)
class ProcessCrash:
    """Kill one controlled process at a scheduled simulation time."""

    time_us: int
    #: Index into the injector's armed victim list (stable across runs).
    victim_index: int


@dataclass(slots=True, frozen=True)
class ForkStorm:
    """Spawn ``count`` extra processes owned by ``uid`` at ``time_us``.

    Exercises the Section 5 principal-refresh path: a suspended user's
    fork storm must be discovered and stopped, and must not let the
    user free-ride past its share.
    """

    time_us: int
    uid: int
    count: int


@dataclass(slots=True, frozen=True)
class AgentStall:
    """Force the agent to oversleep, skipping quantum boundaries."""

    time_us: int
    skipped_quanta: int = 4


@dataclass(slots=True, frozen=True)
class AgentCrash:
    """Crash the agent at ``time_us``; it restarts after ``downtime_us``
    with its volatile state (stop-set, read baselines) wiped."""

    time_us: int
    downtime_us: int = 50 * MSEC


@dataclass(slots=True, frozen=True)
class CellCrash:
    """Crash one *cell* agent of a sharded control plane at ``time_us``.

    The plane analogue of :class:`AgentCrash`: the targeted cell's agent
    loses its volatile state and restarts after ``downtime_us`` under
    its supervisor's backoff policy — until the restart budget is
    exhausted, at which point the supervisor resumes every process the
    cell controlled and the plane re-homes its subtrees onto surviving
    cells (docs/share_tree.md, "Plane fault tolerance").
    """

    time_us: int
    #: Cell index the crash targets.
    cell: int = 0
    downtime_us: int = 50 * MSEC


@dataclass(slots=True, frozen=True)
class MigrationTear:
    """Tear the control plane mid-migration after ``after_ops``
    release/adopt operations of the first rebalance at or after
    ``time_us``.

    ``crash=True`` models the controller process dying mid-batch — no
    in-process cleanup runs and recovery must salvage the journaled
    migration intent (complete it forward or roll it back).
    ``crash=False`` raises an ordinary exception through ``rebalance()``
    instead, exercising the readmit-to-source ``finally`` guard.
    """

    time_us: int
    #: Release/adopt operations allowed before the tear fires.
    after_ops: int = 1
    crash: bool = True


@dataclass(slots=True, frozen=True)
class ArrivalStorm:
    """Spawn ``count`` new compute-bound processes at ``time_us`` and
    offer each to the agent's group through admission control
    (:meth:`~repro.alps.agent.AlpsAgent.submit_subject`).

    Exercises the overload layer (docs/overload.md): with a bounded
    group the storm queues instead of inflating the measurement set;
    without one it reproduces the Section 4.2 breakdown.
    """

    time_us: int
    count: int
    #: Share each storm arrival asks for.
    share: int = 1
    #: Uid the storm processes run as (storms from distinct tenants get
    #: distinct uids so fork-storm discovery stays separate).
    uid: int = 900
    #: How long the storm processes live before the injector reaps them
    #: (0 = forever).  A finite lifetime lets an episode's load clear so
    #: the degrade-then-recover round-trip invariant has something to
    #: verify.
    lifetime_us: int = 0


@dataclass(slots=True, frozen=True)
class AgentNiceBomb:
    """Renice the *agent* to ``nice`` at ``time_us`` for ``duration_us``.

    Models an administrator (or a co-tenant with CAP_SYS_NICE) pushing
    the agent's priority down — the kernel deprioritises the scheduler
    itself, which is exactly the §4.2 starvation signature the timer-slip
    monitor must detect.
    """

    time_us: int
    nice: int = 16
    duration_us: int = 2 * SEC


@dataclass(slots=True, frozen=True)
class FaultPlan:
    """One run's complete fault description (see module docstring).

    Rates are per-operation probabilities in [0, 1]; ``crash_rate_per_sec``
    is a Poisson rate materialised over ``horizon_us`` at arm time.
    The default plan injects nothing.
    """

    seed: int = 0

    # -- process-population faults ----------------------------------
    crashes: tuple[ProcessCrash, ...] = ()
    crash_rate_per_sec: float = 0.0
    fork_storms: tuple[ForkStorm, ...] = ()

    # -- signal-delivery faults -------------------------------------
    signal_drop_prob: float = 0.0
    signal_delay_prob: float = 0.0
    signal_delay_us: int = 2 * MSEC

    # -- accounting-read faults -------------------------------------
    rusage_fail_prob: float = 0.0

    # -- agent faults -----------------------------------------------
    agent_stalls: tuple[AgentStall, ...] = ()
    agent_stall_prob: float = 0.0
    agent_stall_quanta: int = 4
    agent_crashes: tuple[AgentCrash, ...] = ()

    # -- overload faults (repro.overload, docs/overload.md) ---------
    arrival_storms: tuple[ArrivalStorm, ...] = ()
    agent_nice_bombs: tuple[AgentNiceBomb, ...] = ()

    # -- control-plane faults (repro.sharetree.resilience) ----------
    cell_crashes: tuple[CellCrash, ...] = ()
    migration_tears: tuple[MigrationTear, ...] = ()

    # -- journal-persistence faults (repro.resilience) --------------
    #: Probability a journal append is lost before reaching the store.
    journal_write_fail_prob: float = 0.0
    #: Probability a journal append is torn (truncated mid-record).
    journal_torn_write_prob: float = 0.0

    #: Horizon over which Poisson crash times are materialised.
    horizon_us: int = 60 * SEC

    def __post_init__(self) -> None:
        for name in (
            "crash_rate_per_sec",
            "signal_drop_prob",
            "signal_delay_prob",
            "rusage_fail_prob",
            "agent_stall_prob",
            "journal_write_fail_prob",
            "journal_torn_write_prob",
        ):
            value = getattr(self, name)
            if value < 0:
                raise SchedulerConfigError(f"{name} must be >= 0, got {value}")
        for name in (
            "signal_drop_prob",
            "signal_delay_prob",
            "rusage_fail_prob",
            "agent_stall_prob",
            "journal_write_fail_prob",
            "journal_torn_write_prob",
        ):
            if getattr(self, name) > 1:
                raise SchedulerConfigError(f"{name} must be <= 1")
        if self.signal_delay_us <= 0:
            raise SchedulerConfigError("signal_delay_us must be positive")
        if self.agent_stall_quanta < 1:
            raise SchedulerConfigError("agent_stall_quanta must be >= 1")
        if self.horizon_us <= 0:
            raise SchedulerConfigError("horizon_us must be positive")
        for storm in self.arrival_storms:
            if storm.count < 1:
                raise SchedulerConfigError(
                    f"arrival storm count must be >= 1, got {storm.count}"
                )
            if storm.share < 1:
                raise SchedulerConfigError(
                    f"arrival storm share must be >= 1, got {storm.share}"
                )
            if storm.lifetime_us < 0:
                raise SchedulerConfigError(
                    f"arrival storm lifetime must be >= 0, got {storm.lifetime_us}"
                )
        for bomb in self.agent_nice_bombs:
            if bomb.duration_us <= 0:
                raise SchedulerConfigError(
                    f"nice bomb duration must be positive, got {bomb.duration_us}"
                )
        for crash in self.cell_crashes:
            if crash.cell < 0:
                raise SchedulerConfigError(
                    f"cell crash cell must be >= 0, got {crash.cell}"
                )
            if crash.downtime_us <= 0:
                raise SchedulerConfigError(
                    f"cell crash downtime must be positive, "
                    f"got {crash.downtime_us}"
                )
        for tear in self.migration_tears:
            if tear.after_ops < 0:
                raise SchedulerConfigError(
                    f"migration tear after_ops must be >= 0, "
                    f"got {tear.after_ops}"
                )

    @property
    def is_null(self) -> bool:
        """True when the plan can never inject a fault (clean path)."""
        return (
            not self.crashes
            and self.crash_rate_per_sec == 0.0
            and not self.fork_storms
            and self.signal_drop_prob == 0.0
            and self.signal_delay_prob == 0.0
            and self.rusage_fail_prob == 0.0
            and not self.agent_stalls
            and self.agent_stall_prob == 0.0
            and not self.agent_crashes
            and not self.arrival_storms
            and not self.agent_nice_bombs
            and not self.cell_crashes
            and not self.migration_tears
            and self.journal_write_fail_prob == 0.0
            and self.journal_torn_write_prob == 0.0
        )


def default_fault_plan(
    rate: float,
    *,
    seed: int = 0,
    horizon_us: int = 60 * SEC,
    agent_crash: bool = True,
) -> FaultPlan:
    """The robustness sweep's standard mapping from one scalar fault
    rate to a mixed plan (signal loss, delayed delivery, read failures,
    agent stalls, and — at higher rates — one agent crash mid-horizon).

    ``rate == 0`` returns a null plan (clean path).
    """
    if rate < 0 or rate > 1:
        raise SchedulerConfigError(f"fault rate must be in [0, 1], got {rate}")
    if rate == 0:
        return FaultPlan(seed=seed, horizon_us=horizon_us)
    crashes: tuple[AgentCrash, ...] = ()
    if agent_crash and rate >= 0.1:
        crashes = (AgentCrash(time_us=horizon_us // 2),)
    return FaultPlan(
        seed=seed,
        signal_drop_prob=rate,
        signal_delay_prob=rate / 2,
        rusage_fail_prob=rate,
        agent_stall_prob=rate / 4,
        agent_crashes=crashes,
        horizon_us=horizon_us,
    )


@dataclass(slots=True, frozen=True)
class FaultRecord:
    """One injected fault, as recorded in the injector's trace."""

    time_us: int
    kind: str
    detail: str

    def line(self) -> str:
        """Stable one-line rendering (the byte-identical replay unit)."""
        return f"{self.time_us} {self.kind} {self.detail}"


__all__ = [
    "AgentCrash",
    "AgentNiceBomb",
    "AgentStall",
    "ArrivalStorm",
    "CellCrash",
    "FaultPlan",
    "FaultRecord",
    "ForkStorm",
    "MigrationTear",
    "ProcessCrash",
    "default_fault_plan",
]
