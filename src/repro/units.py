"""Time units used throughout the simulator and the ALPS implementation.

All simulated time is kept as **integer microseconds** to avoid floating
point drift in long experiments (a 200-cycle accuracy run simulates hours
of virtual CPU time).  These helpers convert between human-friendly units
and the internal representation.
"""

from __future__ import annotations

#: One microsecond (the base unit).
USEC: int = 1
#: Microseconds per millisecond.
MSEC: int = 1_000
#: Microseconds per second.
SEC: int = 1_000_000


def ms(value: float) -> int:
    """Convert milliseconds to integer microseconds (rounded)."""
    return round(value * MSEC)


def sec(value: float) -> int:
    """Convert seconds to integer microseconds (rounded)."""
    return round(value * SEC)


def usec(value: float) -> int:
    """Convert (possibly fractional) microseconds to integer microseconds."""
    return round(value)


def to_ms(value: int) -> float:
    """Convert integer microseconds to floating-point milliseconds."""
    return value / MSEC


def to_sec(value: int) -> float:
    """Convert integer microseconds to floating-point seconds."""
    return value / SEC
