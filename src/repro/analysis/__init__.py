"""Result formatting: ASCII tables, terminal plots, CSV export.

The benchmark harness uses these to print the same rows/series the
paper's tables and figures report.
"""

from repro.analysis.ascii_plot import ascii_series_plot
from repro.analysis.export import write_csv
from repro.analysis.tables import format_table
from repro.analysis.timeline import RunInterval, Timeline, attach_timeline

__all__ = [
    "RunInterval",
    "Timeline",
    "ascii_series_plot",
    "attach_timeline",
    "format_table",
    "write_csv",
]
