"""CSV export of experiment results."""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Mapping, Sequence


def write_csv(
    path: str | Path,
    rows: Sequence[Mapping[str, Any]],
    *,
    fieldnames: Sequence[str] | None = None,
) -> Path:
    """Write dict rows to ``path``; returns the resolved path."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    names = list(fieldnames) if fieldnames is not None else list(rows[0].keys())
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=names)
        writer.writeheader()
        for row in rows:
            writer.writerow({k: row.get(k) for k in names})
    return path
