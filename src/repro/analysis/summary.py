"""Run summaries: one table describing what happened in a simulation.

``summarize_workload`` condenses a :class:`ControlledWorkload` run into
per-process rows (CPU, share of group, context switches, signals) plus
scheduler totals — the first thing to look at when a share
configuration behaves unexpectedly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.metrics.accuracy import mean_rms_relative_error, per_subject_fractions
from repro.workloads.scenarios import ControlledWorkload


@dataclass(slots=True, frozen=True)
class WorkloadSummary:
    """Aggregated view of one controlled run."""

    wall_us: int
    cycles: int
    error_pct: float
    overhead_pct: float
    alps_invocations: int
    alps_reads: int
    alps_signals: int
    context_switches: int
    rows: tuple[tuple, ...]  # (name, share, target, achieved, cpu_ms, preempt)

    def format(self) -> str:
        """Render as an aligned table with a totals footer."""
        table = format_table(
            ["process", "share", "target", "achieved", "cpu (ms)", "preemptions"],
            [list(r) for r in self.rows],
            title="workload summary",
        )
        footer = (
            f"\nwall {self.wall_us / 1e6:.1f}s   cycles {self.cycles}   "
            f"error {self.error_pct:.2f}%   overhead {self.overhead_pct:.3f}%"
            f"\nALPS: {self.alps_invocations} invocations, "
            f"{self.alps_reads} reads, {self.alps_signals} signals; "
            f"kernel: {self.context_switches} context switches"
        )
        return table + footer


def summarize_workload(
    workload: ControlledWorkload, *, skip_cycles: int = 5
) -> WorkloadSummary:
    """Build the summary for a finished (or in-flight) run."""
    kernel = workload.kernel
    agent = workload.agent
    log = agent.cycle_log
    fractions = per_subject_fractions(log, skip=skip_cycles)
    total_share = workload.total_shares
    rows = []
    for sid, (worker, share) in enumerate(zip(workload.workers, workload.shares)):
        cpu = kernel.getrusage(worker.pid) if worker.alive else worker.cpu_time
        rows.append(
            (
                worker.name,
                share,
                f"{share / total_share:.1%}",
                f"{fractions.get(sid, 0.0):.1%}",
                round(cpu / 1000, 1),
                worker.preemptions,
            )
        )
    return WorkloadSummary(
        wall_us=kernel.now,
        cycles=len(log),
        error_pct=mean_rms_relative_error(log, skip=skip_cycles),
        overhead_pct=100 * workload.overhead_fraction(),
        alps_invocations=agent.invocations,
        alps_reads=agent.reads,
        alps_signals=agent.signals_sent,
        context_switches=kernel.context_switches,
        rows=tuple(rows),
    )
