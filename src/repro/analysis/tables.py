"""Plain-text table formatting for benchmark output."""

from __future__ import annotations

from typing import Any, Sequence


def _fmt(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)
