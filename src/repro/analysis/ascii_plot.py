"""Minimal terminal line plots for benchmark output.

Not a plotting library — just enough to show a figure's *shape*
(monotonicity, crossovers, knees) next to the numeric series.
"""

from __future__ import annotations

from typing import Mapping, Sequence

_MARKS = "ox+*#@%&"


def ascii_series_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 64,
    height: int = 16,
    title: str | None = None,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Plot named (x, y) series on one character grid."""
    xs = [x for pts in series.values() for x in pts[0]]
    ys = [y for pts in series.values() for y in pts[1]]
    if not xs:
        return "(no data)"
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    if xmax == xmin:
        xmax = xmin + 1
    if ymax == ymin:
        ymax = ymin + 1
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (sx, sy)) in enumerate(series.items()):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(sx, sy):
            col = int((x - xmin) / (xmax - xmin) * (width - 1))
            row = height - 1 - int((y - ymin) / (ymax - ymin) * (height - 1))
            grid[row][col] = mark
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(f"{ymax:10.2f} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{ymin:10.2f} +" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{xmin:<10.1f}" + " " * max(0, width - 20) + f"{xmax:>10.1f}"
    )
    if xlabel or ylabel:
        lines.append(" " * 12 + f"x: {xlabel}   y: {ylabel}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
