"""Scheduling timelines: record and render who held the CPU when.

`attach_timeline(kernel)` hooks the kernel's charge path and records
every materialised run interval.  The result can be queried (per-pid
busy time in a window, interval list) or rendered as an ASCII Gantt
chart — handy for debugging scheduler behaviour and for asserting
fine-grained properties in tests.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.kernel import Kernel


@dataclass(slots=True, frozen=True)
class RunInterval:
    """One contiguous on-CPU interval of a process."""

    pid: int
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


@dataclass(slots=True)
class Timeline:
    """Recorded run intervals, in chronological order."""

    intervals: list[RunInterval] = field(default_factory=list)

    def add(self, pid: int, start: int, end: int) -> None:
        if end <= start:
            return
        last = self.intervals[-1] if self.intervals else None
        if last is not None and last.pid == pid and last.end == start:
            # Merge contiguous charges of the same process.
            self.intervals[-1] = RunInterval(pid, last.start, end)
        else:
            self.intervals.append(RunInterval(pid, start, end))

    def busy_of(self, pid: int, lo: int = 0, hi: Optional[int] = None) -> int:
        """CPU time (µs) pid held within [lo, hi)."""
        total = 0
        for iv in self.intervals:
            if iv.pid != pid:
                continue
            end = iv.end if hi is None else min(iv.end, hi)
            start = max(iv.start, lo)
            if end > start:
                total += end - start
        return total

    def pids(self) -> list[int]:
        """All pids that ever ran."""
        return sorted({iv.pid for iv in self.intervals})

    def render(
        self,
        lo: int,
        hi: int,
        *,
        width: int = 72,
        labels: Optional[dict[int, str]] = None,
    ) -> str:
        """ASCII Gantt chart of [lo, hi): one row per pid."""
        if hi <= lo:
            raise ValueError("need hi > lo")
        labels = labels or {}
        rows: list[str] = []
        scale = (hi - lo) / width
        for pid in self.pids():
            cells = [" "] * width
            for iv in self.intervals:
                if iv.pid != pid or iv.end <= lo or iv.start >= hi:
                    continue
                c0 = int((max(iv.start, lo) - lo) / scale)
                c1 = int((min(iv.end, hi) - lo - 1) / scale)
                for c in range(max(c0, 0), min(c1, width - 1) + 1):
                    cells[c] = "#"
            name = labels.get(pid, f"pid{pid}")
            rows.append(f"{name:>10} |{''.join(cells)}|")
        header = (
            f"{'':>10}  {lo / 1000:.1f} ms"
            + " " * max(0, width - 24)
            + f"{hi / 1000:.1f} ms"
        )
        return "\n".join([header] + rows)


def attach_timeline(kernel: Kernel) -> Timeline:
    """Start recording run intervals on ``kernel``; returns the timeline.

    Wraps the kernel's internal charge step, so every interval is
    captured exactly once regardless of why it was materialised
    (completion, preemption, housekeeping).
    """
    timeline = Timeline()
    original = kernel._charge_proc

    def charging(proc):
        start = proc.run_start
        now = kernel.now
        if now > start:
            timeline.add(proc.pid, start, now)
        original(proc)

    kernel._charge_proc = charging  # type: ignore[method-assign]
    return timeline
