"""The ALPS agent: a simulated *process* running the ALPS algorithm.

The agent is an ordinary unprivileged process in the simulated kernel.
Every quantum its timer fires; once the kernel actually schedules it,
it pays CPU for receiving the timer event and for reading the progress
of the subjects that are due (per the Table 1 cost model), runs the
Figure 3 algorithm, pays for and sends the SIGSTOP/SIGCONT transitions,
and sleeps until the next quantum boundary.

Because the agent competes for the CPU like everyone else, everything
the paper observes about user-level scheduling — sampling jitter,
overhead, and the loss of control when the agent's work exceeds its
fair share (Section 4.2) — emerges from the simulation rather than
being asserted.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.alps.algorithm import AlpsCore, Measurement, QuantumDecisions
from repro.alps.config import AlpsConfig
from repro.alps.costs import CostAccumulator
from repro.alps.instrumentation import CycleLog
from repro.alps.subjects import ProcessSubject, Subject
from repro.errors import NoSuchProcessError
from repro.kernel.actions import Action, Compute, Sleep
from repro.kernel.signals import SIGCONT, SIGSTOP

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process


class _Phase(enum.Enum):
    INIT = "init"
    SLEEPING = "sleeping"
    MEASURING = "measuring"
    SIGNALING = "signaling"


class AlpsAgent:
    """Behavior implementing one ALPS scheduler over a set of subjects."""

    def __init__(self, subjects: Sequence[Subject], config: AlpsConfig) -> None:
        if not subjects:
            raise ValueError("AlpsAgent requires at least one subject")
        self.cfg = config
        self.subjects: dict[int, Subject] = {s.sid: s for s in subjects}
        if len(self.subjects) != len(subjects):
            raise ValueError("subject ids must be unique")
        self.core = AlpsCore(
            {s.sid: s.share for s in subjects},
            config.quantum_us,
            optimized=config.optimized,
        )
        self._acc = CostAccumulator()
        self._phase = _Phase.INIT
        self._epoch = 0
        self._next_refresh = 0
        self._due: list[tuple[int, list[int]]] = []
        self._pending_signals: list[tuple[int, int]] = []  # (pid, signo)
        self._last_read: dict[int, int] = {}
        self._stopped_pids: set[int] = set()
        self._cumulative: dict[int, int] = {}
        #: Number of algorithm invocations performed (timer events serviced).
        self.invocations = 0
        #: Total progress reads performed (for overhead statistics).
        self.reads = 0
        #: Total signals sent.
        self.signals_sent = 0
        #: Delay (µs) between each quantum boundary and the moment the
        #: progress reads actually executed — the sampling-latency
        #: distribution whose growth is the §4.2 breakdown.
        self.sampling_delays_us: list[int] = []
        self._wake_boundary = 0

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def cycle_log(self) -> CycleLog:
        """Per-cycle consumption log (the paper's accuracy instrument)."""
        return self.core.cycle_log

    def set_share(self, sid: int, share: int) -> None:
        """Reweight a subject mid-run (takes effect next quantum)."""
        self.core.set_share(sid, share)
        subj = self.subjects.get(sid)
        if subj is not None:
            subj.share = share

    def cumulative_cpu_of(self, sid: int) -> int:
        """CPU (µs) consumed by subject ``sid`` since control began, as
        known from the agent's own measurements."""
        subj = self.subjects.get(sid)
        if subj is None:
            return 0
        return self._cumulative.get(sid, 0)

    # ------------------------------------------------------------------
    # Behavior protocol
    # ------------------------------------------------------------------
    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        if self._phase is _Phase.INIT:
            return self._do_init(kapi)
        if self._phase is _Phase.SLEEPING:
            return self._do_wake(kapi)
        if self._phase is _Phase.MEASURING:
            return self._do_apply(kapi)
        if self._phase is _Phase.SIGNALING:
            return self._do_deliver(kapi)
        raise AssertionError(f"unknown phase {self._phase}")  # pragma: no cover

    # -- phase bodies ----------------------------------------------------
    def _do_init(self, kapi: "KernelAPI") -> Action:
        self._epoch = kapi.now
        self.core._now_fn = lambda: kapi.now
        self._cumulative: dict[int, int] = {s: 0 for s in self.subjects}
        for subj in self.subjects.values():
            subj.refresh(kapi)
            for pid in subj.pids(kapi):
                self._last_read[pid] = self._safe_rusage(kapi, pid)
        self._next_refresh = kapi.now + self.cfg.principal_refresh_us
        self._phase = _Phase.SLEEPING
        return Sleep(self._until_next_boundary(kapi.now), channel="alpstimer")

    def _do_wake(self, kapi: "KernelAPI") -> Action:
        """Timer fired: select who to measure and pay for the work."""
        cost = self.cfg.costs.timer_event_us
        if kapi.now >= self._next_refresh:
            cost += self._refresh_principals(kapi)
            self._next_refresh = kapi.now + self.cfg.principal_refresh_us
        self._reap_dead_subjects(kapi)
        due_sids = self.core.begin_quantum()
        self.invocations += 1
        self._wake_boundary = kapi.now
        self._due = []
        npids = 0
        for sid in due_sids:
            pids = self.subjects[sid].pids(kapi)
            self._due.append((sid, pids))
            npids += len(pids)
        cost += self.cfg.costs.measure_cost(npids)
        self.reads += npids
        self._phase = _Phase.MEASURING
        return Compute(self._acc.charge(cost))

    def _do_apply(self, kapi: "KernelAPI") -> Action:
        """Measurement CPU spent: read progress now and run the algorithm."""
        self.sampling_delays_us.append(kapi.now - self._wake_boundary)
        measurements: dict[int, Measurement] = {}
        for sid, pids in self._due:
            if sid not in self.core.subjects:
                continue
            consumed = 0
            blocked_votes: list[bool] = []
            live = 0
            for pid in pids:
                try:
                    usage = kapi.getrusage(pid)
                except NoSuchProcessError:
                    self._last_read.pop(pid, None)
                    self._stopped_pids.discard(pid)
                    continue
                live += 1
                consumed += usage - self._last_read.get(pid, usage)
                self._last_read[pid] = usage
                blocked_votes.append(kapi.is_blocked(pid))
            blocked = (
                self.cfg.track_io and live > 0 and all(blocked_votes)
            )
            measurements[sid] = Measurement(consumed_us=consumed, blocked=blocked)
            self._cumulative[sid] = self._cumulative.get(sid, 0) + consumed
        decisions = self.core.complete_quantum(measurements)
        self._pending_signals = self._signals_for(kapi, decisions)
        if not self._pending_signals:
            self._phase = _Phase.SLEEPING
            return Sleep(self._until_next_boundary(kapi.now), channel="alpstimer")
        self._phase = _Phase.SIGNALING
        cost = self.cfg.costs.signal_us * len(self._pending_signals)
        return Compute(self._acc.charge(cost))

    def _do_deliver(self, kapi: "KernelAPI") -> Action:
        """Signal CPU spent: actually deliver the queued signals."""
        for pid, signo in self._pending_signals:
            try:
                kapi.kill(pid, signo)
            except NoSuchProcessError:
                self._stopped_pids.discard(pid)
                continue
            self.signals_sent += 1
            if signo == SIGSTOP:
                self._stopped_pids.add(pid)
            else:
                self._stopped_pids.discard(pid)
        self._pending_signals = []
        self._phase = _Phase.SLEEPING
        return Sleep(self._until_next_boundary(kapi.now), channel="alpstimer")

    # -- helpers ----------------------------------------------------------
    def _until_next_boundary(self, now: int) -> int:
        q = self.cfg.quantum_us
        k = (now - self._epoch) // q + 1
        return self._epoch + k * q - now

    def _signals_for(
        self, kapi: "KernelAPI", decisions: QuantumDecisions
    ) -> list[tuple[int, int]]:
        signals: list[tuple[int, int]] = []
        for sid in decisions.to_suspend:
            subj = self.subjects.get(sid)
            if subj is None:
                continue
            for pid in subj.pids(kapi):
                if pid not in self._stopped_pids:
                    signals.append((pid, SIGSTOP))
        for sid in decisions.to_resume:
            subj = self.subjects.get(sid)
            if subj is None:
                continue
            for pid in subj.pids(kapi):
                if pid in self._stopped_pids:
                    signals.append((pid, SIGCONT))
        return signals

    def _refresh_principals(self, kapi: "KernelAPI") -> float:
        """Re-enumerate multi-process principals (Section 5).

        Newly discovered pids inherit the principal's current
        eligibility (a new worker of a suspended user is stopped at
        discovery).  Returns the CPU cost to charge.
        """
        cost = 0.0
        for sid, subj in self.subjects.items():
            before = set(subj.pids(kapi))
            if not subj.refresh(kapi):
                continue
            cost += self.cfg.costs.principal_refresh_us
            after = set(subj.pids(kapi))
            for pid in after - before:
                self._last_read[pid] = self._safe_rusage(kapi, pid)
                if sid in self.core.subjects and not self.core.subjects[sid].eligible:
                    self._pending_signals.append((pid, SIGSTOP))
            for pid in before - after:
                self._last_read.pop(pid, None)
                self._stopped_pids.discard(pid)
        # Deliver discovery-time stops immediately (they are few).
        if self._pending_signals:
            for pid, signo in self._pending_signals:
                try:
                    kapi.kill(pid, signo)
                    self.signals_sent += 1
                    if signo == SIGSTOP:
                        self._stopped_pids.add(pid)
                except NoSuchProcessError:
                    pass
            self._pending_signals = []
        return cost

    def _reap_dead_subjects(self, kapi: "KernelAPI") -> None:
        """Drop single-process subjects whose process exited."""
        for sid in list(self.subjects):
            subj = self.subjects[sid]
            if not isinstance(subj, ProcessSubject):
                continue
            subj.refresh(kapi)
            if subj.pids(kapi):
                continue
            if sid in self.core.subjects and len(self.core.subjects) > 1:
                self.core.remove_subject(sid)
            del self.subjects[sid]

    def _safe_rusage(self, kapi: "KernelAPI", pid: int) -> int:
        try:
            return kapi.getrusage(pid)
        except NoSuchProcessError:
            return 0


def spawn_alps(
    kernel: "Kernel",
    subjects: Sequence[Subject],
    config: AlpsConfig,
    *,
    name: str = "alps",
    uid: int = 0,
    nice: int = 0,
    start_delay: int = 0,
) -> tuple["Process", AlpsAgent]:
    """Spawn an ALPS scheduler process in the simulated kernel.

    Returns the agent's process (for overhead accounting via
    ``proc.cpu_time``) and the agent object (for its cycle log).
    """
    agent = AlpsAgent(subjects, config)
    proc = kernel.spawn(name, agent, uid=uid, nice=nice, start_delay=start_delay)
    return proc, agent
