"""The ALPS agent: a simulated *process* running the ALPS algorithm.

The agent is an ordinary unprivileged process in the simulated kernel.
Every quantum its timer fires; once the kernel actually schedules it,
it pays CPU for receiving the timer event and for reading the progress
of the subjects that are due (per the Table 1 cost model), runs the
Figure 3 algorithm, pays for and sends the SIGSTOP/SIGCONT transitions,
and sleeps until the next quantum boundary.

Because the agent competes for the CPU like everyone else, everything
the paper observes about user-level scheduling — sampling jitter,
overhead, and the loss of control when the agent's work exceeds its
fair share (Section 4.2) — emerges from the simulation rather than
being asserted.

Robustness (docs/fault_model.md): the agent survives subject death at
any point of the measurement cycle, transient accounting-read failures
(bounded retries), lost or delayed signal delivery (post-delivery
verification against kernel process state, bounded re-sends, and
wedge healing on later measurements), its own stalls (missed quantum
boundaries are detected and the read baselines re-established instead
of issuing a burst of catch-up decisions), and crash-with-restart
(:meth:`AlpsAgent.restart` wipes volatile state; the next activation
reconciles the stop-set against kernel truth so no subject is left
wedged in SIGSTOP).

Crash *safety* (docs/resilience.md): with a journal attached via
:meth:`AlpsAgent.attach_journal` the agent appends one checksummed
snapshot of its scheduling state per quantum, and :meth:`restart`
replays it — the restarted agent resumes the same cycle with its
fairness debt (allowances, cycle remainder, read baselines) intact
instead of forgiving everything that happened while it was down.  A
corrupt or empty journal falls back to the lossy reconciliation path
above.  Journal appends charge no CPU and draw no engine randomness,
so journaling is schedule-invisible until a crash actually happens.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.alps.algorithm import AlpsCore, QuantumDecisions
from repro.alps.config import AlpsConfig
from repro.alps.costs import CostAccumulator
from repro.alps.instrumentation import CycleLog
from repro.alps.state import Eligibility
from repro.alps.subjects import ProcessSubject, Subject
from repro.errors import (
    JournalCorruptError,
    NoSuchProcessError,
    SchedulerConfigError,
    TransientReadError,
)
from repro.kernel.actions import Action, Compute, Sleep
from repro.kernel.signals import SIGCONT, SIGSTOP
from repro.overload.ladder import Rung
from repro.resilience.journal import (
    SNAPSHOT_VERSION,
    core_snapshot,
    drain_debt,
    restore_core,
    schedule_debt,
    validate_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.injector import FaultInjector
    from repro.kernel.behaviors import Behavior
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.kernel import Kernel
    from repro.kernel.process import Process
    from repro.obs.observer import Observer
    from repro.overload.guard import OverloadGuard
    from repro.resilience.journal import MemoryJournal
    from repro.sharetree.tree import ShareNode, ShareTree


_EMPTY_SET: frozenset[int] = frozenset()


class _Phase(enum.Enum):
    INIT = "init"
    SLEEPING = "sleeping"
    MEASURING = "measuring"
    SIGNALING = "signaling"
    RECONCILING = "reconciling"
    RECOVERING = "recovering"


class AlpsAgent:
    """Behavior implementing one ALPS scheduler over a set of subjects."""

    def __init__(self, subjects: Sequence[Subject], config: AlpsConfig) -> None:
        if not subjects:
            raise ValueError("AlpsAgent requires at least one subject")
        self.cfg = config
        self.subjects: dict[int, Subject] = {s.sid: s for s in subjects}
        if len(self.subjects) != len(subjects):
            raise ValueError("subject ids must be unique")
        # Single-process subjects, cached for the per-quantum liveness
        # sweep (subjects are only ever removed, in _reap_dead_subjects,
        # which also maintains this list).
        self._proc_subjects: list[ProcessSubject] = [
            s for s in self.subjects.values() if isinstance(s, ProcessSubject)
        ]
        self.core = AlpsCore(
            {s.sid: s.share for s in subjects},
            config.quantum_us,
            optimized=config.optimized,
        )
        self._acc = CostAccumulator()
        # Hoisted scalars for the per-quantum charge arithmetic (the
        # cost model is a frozen dataclass; these cannot drift).
        costs = config.costs
        self._quantum_us = config.quantum_us
        self._cost_timer_us = costs.timer_event_us
        self._cost_measure_fixed = costs.measure_fixed_us
        self._cost_measure_per = costs.measure_per_proc_us
        self._cost_signal_us = costs.signal_us
        self._phase = _Phase.INIT
        self._epoch = 0
        self._next_refresh = 0
        self._due: list[tuple[int, list[int]]] = []
        self._pending_signals: list[tuple[int, int]] = []  # (pid, signo)
        self._last_read: dict[int, int] = {}
        self._stopped_pids: set[int] = set()
        #: Kernel exit counter at the last liveness sweep; -1 forces the
        #: next sweep (initial state, and after a crash-restart).
        self._seen_exit_count = -1
        self._cumulative: dict[int, int] = {}
        #: The boundary the agent intended to wake at (stall detection).
        self._sleep_target = 0
        #: Previous wake's timestamp and the intended wake-to-wake
        #: period, for the overload layer's cadence-slip signal; -1
        #: means no previous wake (startup, crash-restart).
        self._last_wake_now = -1
        self._wake_cadence_us = config.quantum_us
        #: Fractional CPU owed for recovery work (retries), folded into
        #: the next quantum's charge.
        self._deferred_cost_us = 0.0
        #: Number of algorithm invocations performed (timer events serviced).
        self.invocations = 0
        #: Total progress reads performed (for overhead statistics).
        self.reads = 0
        #: Total signals sent.
        self.signals_sent = 0
        #: Delay (µs) between each quantum boundary and the moment the
        #: progress reads actually executed — the sampling-latency
        #: distribution whose growth is the §4.2 breakdown.
        self.sampling_delays_us: list[int] = []
        self._wake_boundary = 0
        # -- robustness statistics (docs/fault_model.md) ---------------
        #: Quantum boundaries the agent slept through (stalls).
        self.missed_boundaries = 0
        #: Times the agent re-established its read baselines after a stall.
        self.rebaselines = 0
        #: Accounting reads retried after a transient failure.
        self.read_retries = 0
        #: Measurements skipped because the retry budget was exhausted.
        self.read_failures = 0
        #: Signals re-sent because delivery was not observed.
        self.signal_retries = 0
        #: Wedged subjects resumed outside a normal eligibility transition.
        self.heals = 0
        #: Crash-with-restart recoveries performed.
        self.restarts = 0
        #: Impossible observations tolerated (e.g. CPU counters running
        #: backwards); nonzero values indicate substrate misbehavior.
        self.anomalies = 0
        #: Observability handle (repro.obs), inherited from the kernel's
        #: attached observer at first activation.  ``None`` keeps every
        #: instrumentation point at a single attribute read; observation
        #: is read-only and schedule-invisible either way.
        self._obs: Optional["Observer"] = None
        # -- crash safety (docs/resilience.md) -------------------------
        #: Write-ahead journal (repro.resilience); None = PR 1 behavior.
        self._journal: Optional["MemoryJournal"] = None
        #: Snapshot payload recovered by restart(), consumed by the
        #: RECOVERING activation.
        self._recovered: Optional[dict] = None
        #: Restarts that replayed the journal successfully.
        self.journal_recoveries = 0
        #: Restarts that fell back to lossy reconciliation (corrupt or
        #: empty journal).
        self.recovery_fallbacks = 0
        #: Whether the most recent restart recovered from the journal.
        self.last_restart_journaled = False
        #: Downtime CPU debt (µs) per subject awaiting amortized
        #: repayment (:func:`~repro.resilience.journal.drain_debt`).
        self._deferred_debt: dict[int, int] = {}
        # -- overload protection (docs/overload.md) --------------------
        #: Guard composing admission control, the timer-slip monitor and
        #: the degradation ladder; None = no overload layer (exact seed
        #: behavior).  Schedule-invisible while the ladder sits at
        #: NORMAL: the wake-path hook is pure bookkeeping that charges
        #: no CPU and changes no decision until a rung engages.
        self._overload: Optional["OverloadGuard"] = None
        #: Subjects currently released to best-effort by the SHED rung,
        #: kept aside (out of the core and the liveness sweep) until the
        #: ladder walks back down and readmits them.
        self._shed_subjects: dict[int, Subject] = {}
        # -- hierarchical shares (docs/share_tree.md) ------------------
        #: Share tree resolving each subject's effective share from its
        #: ancestors' weights; None = the flat model (exact seed
        #: behavior).  A flat-equivalent tree is schedule-invisible:
        #: its effective shares equal the raw weights verbatim, so
        #: every ``set_share`` it issues no-ops on a zero delta.
        self._sharetree: Optional["ShareTree"] = None

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    @property
    def cycle_log(self) -> CycleLog:
        """Per-cycle consumption log (the paper's accuracy instrument)."""
        return self.core.cycle_log

    def set_share(self, sid: int, share: int) -> None:
        """Reweight a subject mid-run (takes effect next quantum)."""
        self.core.set_share(sid, share)
        subj = self.subjects.get(sid)
        if subj is not None:
            subj.share = share

    def cumulative_cpu_of(self, sid: int) -> int:
        """CPU (µs) consumed by subject ``sid`` since control began, as
        known from the agent's own measurements."""
        subj = self.subjects.get(sid)
        if subj is None:
            return 0
        return self._cumulative.get(sid, 0)

    # ------------------------------------------------------------------
    # Crash / shutdown recovery surface
    # ------------------------------------------------------------------
    def attach_journal(self, journal: "MemoryJournal") -> None:
        """Attach a write-ahead journal (:mod:`repro.resilience.journal`).

        The agent appends one snapshot per quantum (at the end of the
        measurement phase, before signals are delivered) and
        :meth:`restart` replays the latest valid record.  The journal
        object must survive the crash — it models persistent storage.
        """
        self._journal = journal

    # ------------------------------------------------------------------
    # Overload protection surface (docs/overload.md)
    # ------------------------------------------------------------------
    def attach_overload(self, guard: "OverloadGuard") -> None:
        """Attach an overload guard (:mod:`repro.overload`).

        Every wake feeds the guard the timer slip (actual minus
        scheduled delivery); the guard's ladder answers with the current
        quantum stretch, measurement-postponement boost, and shed
        decisions, which the agent enacts.  Like the journal and the
        observer, an attached-but-idle guard is schedule-invisible.
        """
        self._overload = guard

    @property
    def overload(self) -> Optional["OverloadGuard"]:
        """The attached overload guard, if any (obs/top surface)."""
        return self._overload

    @property
    def timer_slip_us(self) -> int:
        """Most recent wake's timer slip (µs); 0 without a guard.

        The supervision wrapper feeds this into its heartbeat so
        starvation shows up as supervisor pressure, not just as an
        overload metric.
        """
        guard = self._overload
        if guard is None:
            return 0
        return int(guard.slip.last_quanta * self._quantum_us)

    # ------------------------------------------------------------------
    # Hierarchical shares surface (docs/share_tree.md)
    # ------------------------------------------------------------------
    def attach_sharetree(self, tree: "ShareTree") -> None:
        """Attach a share tree (:mod:`repro.sharetree`).

        The tree becomes the authority for every subject's share: its
        recursive weights are resolved to flat integer effective shares
        and applied to the core immediately (and again on every tree
        mutation, admission, or subject death).  A flat-equivalent tree
        resolves to the raw weights, so attaching it changes nothing —
        the same schedule-invisibility discipline as the journal, the
        observer, and the overload guard.
        """
        self._sharetree = tree
        self.reweigh_from_tree()

    @property
    def sharetree(self) -> Optional["ShareTree"]:
        """The attached share tree, if any (obs/top surface)."""
        return self._sharetree

    def reweigh_from_tree(self) -> None:
        """Re-apply the tree's effective shares to the core.

        ``AlpsCore.set_share`` early-outs on a zero delta, so this is
        free (and trace-invisible) whenever the resolved shares already
        match — the flat-equivalence case.
        """
        tree = self._sharetree
        if tree is None:
            return
        core_subjects = self.core.subjects
        for sid, share in tree.effective_shares().items():
            if sid not in core_subjects:
                continue
            self.core.set_share(sid, share)
            subj = self.subjects.get(sid)
            if subj is not None:
                subj.share = share

    def set_tree_weight(self, path: str, weight: int) -> None:
        """Reweight a tree node; every descendant leaf follows."""
        tree = self._sharetree
        if tree is None:
            raise SchedulerConfigError("no share tree attached")
        tree.set_weight(path, weight)
        self.reweigh_from_tree()

    def _active_leaves_under(self, gate: "ShareNode") -> int:
        """Admitted members of a gated subtree (its enforced count)."""
        tree = self._sharetree
        assert tree is not None
        core_subjects = self.core.subjects
        return sum(
            1 for leaf in tree.leaves(gate) if leaf.sid in core_subjects
        )

    def _submit_tree_subject(
        self, subject: Subject, kapi: "KernelAPI", path: str
    ) -> bool:
        """Route an arrival through its subtree's admission gate.

        The leaf is only created in the tree once admitted — a queued
        arrival must not dilute its siblings' effective shares while it
        waits.  Queue entries are ``(subject, path)`` pairs.
        """
        tree = self._sharetree
        assert tree is not None
        parent = tree.node(path.rpartition("/")[0])
        gate = tree.admission_for(parent)
        obs = self._obs
        if gate is not None:
            assert gate.admission is not None
            admitted = gate.admission.submit(
                (subject, path), self._active_leaves_under(gate)
            )
            if not admitted:
                if obs is not None and obs.enabled:
                    obs.events.emit(
                        kapi.now, "sharetree.queued",
                        sid=subject.sid, path=path,
                        depth=gate.admission.depth,
                    )
                return False
        tree.leaf(path, sid=subject.sid, weight=subject.share)
        if not self._admit_subject(subject, kapi):
            tree.remove(path)  # died before admission
            return False
        self.reweigh_from_tree()
        if obs is not None and obs.enabled:
            obs.events.emit(
                kapi.now, "sharetree.admitted", sid=subject.sid, path=path
            )
        return True

    def _drain_tree_admissions(self, kapi: "KernelAPI") -> float:
        """Admit queued subtree arrivals into spare capacity (per gate)."""
        tree = self._sharetree
        assert tree is not None
        npids = 0
        admitted_any = False
        obs = self._obs
        for gate in tree.gates():
            queue = gate.admission
            if queue is None or not queue.depth:
                continue
            for subject, path in queue.admit_ready(
                self._active_leaves_under(gate)
            ):
                try:
                    tree.leaf(path, sid=subject.sid, weight=subject.share)
                except SchedulerConfigError:
                    continue  # its branch vanished while it waited
                if not self._admit_subject(subject, kapi):
                    tree.remove(path)
                    continue
                admitted_any = True
                npids += len(subject.pids(kapi))
                if obs is not None and obs.enabled:
                    obs.events.emit(
                        kapi.now, "sharetree.admitted",
                        sid=subject.sid, path=path,
                    )
        if admitted_any:
            self.reweigh_from_tree()
        if npids == 0:
            return 0.0
        self.reads += npids
        return self.cfg.costs.measure_cost(npids)

    def release_subject(self, sid: int, kapi: "KernelAPI") -> Subject:
        """Withdraw a subject from this agent (cell migration).

        The control-plane half of rebalancing: the subject leaves the
        enforced set, its stopped pids are resumed so it is never
        wedged between cells, and the subject object is returned for
        :meth:`adopt_subject` on the destination agent.
        """
        subj = self.subjects.pop(sid, None)
        if subj is None:
            subj = self._shed_subjects.pop(sid, None)
            if subj is not None:
                guard = self._overload
                if guard is not None:
                    guard.note_departed(sid)
                return subj  # shed: already best-effort, nothing stopped
            raise SchedulerConfigError(f"agent does not control sid {sid}")
        if isinstance(subj, ProcessSubject):
            self._proc_subjects.remove(subj)
        if sid in self.core.subjects:
            self.core.remove_subject(sid)
        for pid in subj.pids(kapi):
            if pid in self._stopped_pids:
                try:
                    kapi.kill(pid, SIGCONT)
                    self.signals_sent += 1
                except NoSuchProcessError:
                    pass
            self._forget_pid(pid)
        self._cumulative.pop(sid, None)
        return subj

    def adopt_subject(self, subject: Subject, kapi: "KernelAPI") -> bool:
        """Receive a migrating subject (already admitted in its old
        cell, so admission control is deliberately bypassed)."""
        if not self._admit_subject(subject, kapi):
            return False
        if self._sharetree is not None:
            self.reweigh_from_tree()
        return True

    def submit_subject(
        self, subject: Subject, kapi: "KernelAPI", *, path: Optional[str] = None
    ) -> bool:
        """Offer a new arrival to the group through admission control.

        Without a guard (or with spare capacity) the subject joins the
        enforced set immediately; otherwise it waits in the FIFO
        admission queue and is drained at a later wake as capacity
        frees up.  Returns True when admitted immediately.

        With a share tree attached, ``path`` places the arrival in the
        tree and routes it through its subtree's *own* admission gate
        (nearest gated ancestor; docs/share_tree.md) instead of the
        whole-group queue.
        """
        if path is not None:
            if self._sharetree is None:
                raise SchedulerConfigError(
                    "submit_subject(path=...) requires an attached share tree"
                )
            return self._submit_tree_subject(subject, kapi, path)
        guard = self._overload
        if guard is None:
            self._admit_subject(subject, kapi)
            return True
        admitted = guard.admission.submit(
            subject, len(self.core.subjects), paused=guard.admission_paused
        )
        obs = self._obs
        if admitted:
            self._admit_subject(subject, kapi)
            if obs is not None and obs.enabled:
                obs.events.emit(kapi.now, "overload.admitted", sid=subject.sid)
        elif obs is not None and obs.enabled:
            obs.events.emit(
                kapi.now, "overload.queued",
                sid=subject.sid, depth=guard.admission.depth,
            )
        return admitted

    def _admit_subject(self, subject: Subject, kapi: "KernelAPI") -> bool:
        """Add a subject to the enforced set; False if it died first."""
        subject.refresh(kapi)
        pids = subject.pids(kapi)
        if not pids:
            return False  # died before admission; nothing to enforce
        sid = subject.sid
        self.subjects[sid] = subject
        if isinstance(subject, ProcessSubject):
            self._proc_subjects.append(subject)
        self.core.add_subject(sid, subject.share)
        self._cumulative.setdefault(sid, 0)
        for pid in pids:
            self._set_baseline(kapi, pid)
        return True

    def _drain_admissions(self, kapi: "KernelAPI") -> float:
        """Admit queued arrivals into spare capacity; returns CPU cost."""
        guard = self._overload
        ready = guard.admission.admit_ready(
            len(self.core.subjects), paused=guard.admission_paused
        )
        if not ready:
            return 0.0
        npids = 0
        obs = self._obs
        for subject in ready:
            if not self._admit_subject(subject, kapi):
                continue
            npids += len(subject.pids(kapi))
            if obs is not None and obs.enabled:
                obs.events.emit(kapi.now, "overload.admitted", sid=subject.sid)
        if npids == 0:
            return 0.0
        self.reads += npids
        return self.cfg.costs.measure_cost(npids)

    def _apply_ladder(self, kapi: "KernelAPI", now: int, delta: int) -> float:
        """Enact a ladder transition; returns the CPU cost of enactment."""
        guard = self._overload
        self.core.postpone_boost = guard.postpone_boost
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(
                now,
                "overload.engage" if delta > 0 else "overload.relax",
                rung=int(guard.rung),
                slip_ewma_quanta=round(guard.slip.ewma_quanta, 3),
            )
        cost = 0.0
        if delta > 0 and guard.rung >= Rung.SHED:
            cost += self._shed_members(kapi, now)
        elif delta < 0 and guard.rung < Rung.SHED and guard.shed_sids:
            cost += self._readmit_shed(kapi, now)
        return cost

    def _shed_members(self, kapi: "KernelAPI", now: int) -> float:
        """SHED rung: release the lowest-share tail to best-effort.

        Shed subjects leave the enforced set entirely (core, liveness
        sweep, measurement loop) and their stopped pids are resumed —
        best-effort means the kernel schedules them, not us.
        """
        guard = self._overload
        quota = guard.shed_quota(len(self.core.subjects))
        if quota <= 0:
            return 0.0
        shares = {sid: st.share for sid, st in self.core.subjects.items()}
        cost = 0.0
        obs = self._obs
        for sid in guard.select_shed(shares, quota):
            subj = self.subjects.pop(sid, None)
            if subj is None:  # pragma: no cover - raced a reap
                continue
            if isinstance(subj, ProcessSubject):
                self._proc_subjects.remove(subj)
            self.core.remove_subject(sid)
            self._shed_subjects[sid] = subj
            guard.note_shed(sid)
            # Resume-all for the tail: deliver immediately (the pending
            # list belongs to the measurement phase) and pay for it.
            for pid in subj.pids(kapi):
                if pid in self._stopped_pids:
                    try:
                        kapi.kill(pid, SIGCONT)
                        self.signals_sent += 1
                    except NoSuchProcessError:
                        pass
                    cost += self._cost_signal_us
                self._forget_pid(pid)
            if obs is not None and obs.enabled:
                obs.events.emit(now, "overload.shed", sid=sid)
        return cost

    def _readmit_shed(self, kapi: "KernelAPI", now: int) -> float:
        """Walking back below SHED: return the shed tail to enforcement.

        Best-effort consumption while shed is deliberately forgiven —
        the baseline restarts at the current reading; the subject
        rejoins with a full allowance like any other arrival.
        """
        guard = self._overload
        cost = 0.0
        npids = 0
        obs = self._obs
        for sid in list(guard.shed_sids):
            subj = self._shed_subjects.pop(sid, None)
            if subj is None:  # pragma: no cover - bookkeeping drift
                guard.note_departed(sid)
                continue
            subj.refresh(kapi)
            pids = subj.pids(kapi)
            if not pids:
                guard.note_departed(sid)
                continue
            self.subjects[sid] = subj
            if isinstance(subj, ProcessSubject):
                self._proc_subjects.append(subj)
            self.core.add_subject(sid, subj.share)
            self._cumulative.setdefault(sid, 0)
            for pid in pids:
                self._set_baseline(kapi, pid)
                npids += 1
            guard.note_readmitted(sid)
            if obs is not None and obs.enabled:
                obs.events.emit(now, "overload.readmit", sid=sid)
        if npids:
            self.reads += npids
            cost += self.cfg.costs.measure_cost(npids)
        return cost

    def snapshot_state(self, now: int) -> dict:
        """JSON-safe snapshot of all state a restart must not lose."""
        return {
            "v": SNAPSHOT_VERSION,
            "kind": "snapshot",
            "t": now,
            "core": core_snapshot(self.core),
            "agent": {
                "epoch": self._epoch,
                "last_read": {
                    str(pid): usage for pid, usage in sorted(self._last_read.items())
                },
                "stopped": sorted(self._stopped_pids),
                "cumulative": {
                    str(sid): total
                    for sid, total in sorted(self._cumulative.items())
                },
                "debt": {
                    str(sid): owed
                    for sid, owed in sorted(self._deferred_debt.items())
                },
            },
        }

    def restart(self) -> None:
        """Simulate a crash-with-restart: wipe all volatile state.

        Without a journal only the algorithm core object survives in
        whatever state the crash left it; read baselines, the stop-set,
        and in-flight work are gone, and the next activation runs a
        reconciliation pass that rebuilds them from kernel truth —
        forgiving all fairness debt.  With a journal attached, the next
        activation instead replays the last valid snapshot
        (:meth:`_do_recover`); a corrupt or empty journal falls back to
        the lossy path.
        """
        self._phase = _Phase.RECONCILING
        self._due = []
        self._pending_signals = []
        self._last_read = {}
        self._stopped_pids = set()
        self._seen_exit_count = -1
        self._acc = CostAccumulator()
        self._deferred_cost_us = 0.0
        #: Downtime must not read as kernel starvation: the cadence-slip
        #: baseline restarts with the agent.
        self._last_wake_now = -1
        self.restarts += 1
        self.last_restart_journaled = False
        self._recovered = None
        self._deferred_debt = {}
        journal = self._journal
        if journal is None:
            return
        try:
            rec = journal.recover()
            if rec.snapshot is None:
                raise JournalCorruptError("journal holds no snapshot")
            self._recovered = dict(validate_snapshot(rec.snapshot))
        except JournalCorruptError:
            self.recovery_fallbacks += 1
            return
        self._phase = _Phase.RECOVERING
        self.last_restart_journaled = True

    def shutdown(self, kapi: "KernelAPI") -> int:
        """Resume every controlled process left stopped; returns the
        number resumed.  Mirrors ``HostAlps._resume_all``: consults
        kernel truth, not just the agent's own stop-set, so a wedged
        subject (lost bookkeeping, delayed SIGSTOP) is released too.
        """
        to_resume = set(self._stopped_pids)
        subjects = list(self.subjects.values())
        subjects.extend(self._shed_subjects.values())
        for subj in subjects:
            for pid in subj.pids(kapi):
                try:
                    if kapi.is_stopped(pid):
                        to_resume.add(pid)
                except NoSuchProcessError:
                    continue
        resumed = 0
        for pid in to_resume:
            try:
                kapi.kill(pid, SIGCONT)
                resumed += 1
            except NoSuchProcessError:
                pass
        self._stopped_pids = set()
        return resumed

    # ------------------------------------------------------------------
    # Behavior protocol
    # ------------------------------------------------------------------
    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        # Steady-state phases first (INIT/RECONCILING fire once each).
        phase = self._phase
        if phase is _Phase.SLEEPING:
            return self._do_wake(kapi)
        if phase is _Phase.MEASURING:
            return self._do_apply(kapi)
        if phase is _Phase.SIGNALING:
            return self._do_deliver(kapi)
        if phase is _Phase.INIT:
            return self._do_init(kapi)
        if phase is _Phase.RECONCILING:
            return self._do_reconcile(kapi)
        if phase is _Phase.RECOVERING:
            return self._do_recover(kapi)
        raise AssertionError(f"unknown phase {phase}")  # pragma: no cover

    # -- phase bodies ----------------------------------------------------
    def _do_init(self, kapi: "KernelAPI") -> Action:
        self._epoch = kapi.now
        # Duck-typed kapi surfaces (unit-test fakes, alternative hosts)
        # may not expose an observability handle; absence means None.
        self._obs = getattr(kapi, "observer", None)
        self.core._now_fn = lambda: kapi.now
        self._cumulative = {s: 0 for s in self.subjects}
        for subj in self.subjects.values():
            subj.refresh(kapi)
            for pid in subj.pids(kapi):
                self._set_baseline(kapi, pid)
        self._next_refresh = kapi.now + self.cfg.principal_refresh_us
        self._phase = _Phase.SLEEPING
        return self._sleep_until_boundary(kapi.now)

    def _do_wake(self, kapi: "KernelAPI") -> Action:
        """Timer fired: select who to measure and pay for the work."""
        now = kapi.now
        cost = self._cost_timer_us + self._deferred_cost_us
        self._deferred_cost_us = 0.0
        guard = self._overload
        if guard is not None:
            # Starvation detection: feed the wake's timer slip to the
            # ladder.  Slip is *cadence* slip — the actual wake-to-wake
            # gap minus the intended period — because a deprioritised
            # agent shows up as servicing (Compute bursts) crawling
            # between boundaries, not as late timer delivery (wakeups
            # carry a priority boost).  Pure bookkeeping unless a rung
            # actually changes or queued arrivals fit —
            # schedule-invisible while idle.
            prev = self._last_wake_now
            self._last_wake_now = now
            if prev >= 0:
                delta = guard.observe_wake(
                    now - prev - self._wake_cadence_us, self._quantum_us
                )
                if delta:
                    cost += self._apply_ladder(kapi, now, delta)
            if guard.admission.depth and not guard.admission_paused:
                cost += self._drain_admissions(kapi)
        tree = self._sharetree
        # _gates first: ungated trees (the common flat-equivalent case)
        # must not pay a generator sum on every wake.
        if tree is not None and tree._gates and tree.pending_admissions:
            cost += self._drain_tree_admissions(kapi)
        if now - self._sleep_target >= self._quantum_us:
            # At least one whole quantum overslept (the guard mirrors
            # _absorb_stall's own missed <= 0 early-out).
            cost += self._absorb_stall(kapi, now)
        if now >= self._next_refresh:
            cost += self._refresh_principals(kapi)
            self._next_refresh = now + self.cfg.principal_refresh_us
        self._reap_dead_subjects(kapi)
        due_sids = self.core.begin_quantum()
        self.invocations += 1
        self._wake_boundary = now
        due: list[tuple[int, list[int]]] = []
        subjects_get = self.subjects.get
        npids = 0
        for sid in due_sids:
            subj = subjects_get(sid)
            if subj is None:
                # The subject died after the core selected it (e.g. the
                # whole group is gone); measure nothing for it.
                continue
            pids = subj.pids(kapi)
            due.append((sid, pids))
            npids += len(pids)
        self._due = due
        if npids:
            cost += self._cost_measure_fixed + self._cost_measure_per * npids
            self.reads += npids
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(
                now, "quantum.tick",
                count=self.core.count, due=len(due), pids=npids,
            )
            obs.spans.record("timer_event", self._cost_timer_us, start_us=now)
            if npids:
                obs.spans.record(
                    "measure",
                    self._cost_measure_fixed + self._cost_measure_per * npids,
                    start_us=now,
                )
        self._phase = _Phase.MEASURING
        return Compute(self._acc.charge(cost))

    def _do_apply(self, kapi: "KernelAPI") -> Action:
        """Measurement CPU spent: read progress now and run the algorithm.

        This is the agent's hottest loop (one read per controlled pid
        per quantum): the first getrusage attempt is inlined and the
        rare transient-failure path lives in :meth:`_retry_read`; the
        blocked vote short-circuits once any pid is found runnable
        (``is_blocked`` is a side-effect-free, fault-transparent
        inspection, so skipping calls is schedule-invisible).
        """
        now = kapi.now  # no events fire inside next_action: read once
        self.sampling_delays_us.append(now - self._wake_boundary)
        # Batched measurement fast path: only the batch backend's kapi
        # (repro.kernel.batch.BatchKernelAPI) advertises ``measure_many``.
        # Fault wrappers deliberately do not forward it — the injector
        # must see every individual read to keep its per-call RNG draw
        # order — so faulted and classic kapis take the per-pid loop.
        measure_many = getattr(kapi, "measure_many", None)
        stopped_cache: Optional[dict[int, Optional[bool]]] = None
        if measure_many is not None:
            measurements, stopped_cache = self._measure_batched(measure_many)
        else:
            measurements = self._measure_classic(kapi)
        decisions = self.core.complete_quantum(measurements)
        if self.cfg.enforce_invariants:
            self.core.check_runtime_invariants()
        self._pending_signals = self._signals_for(kapi, decisions, stopped_cache)
        obs = self._obs
        if obs is not None and obs.enabled:
            events = obs.events
            for sid in decisions.to_suspend:
                events.emit(now, "eligibility.stop", sid=sid)
            for sid in decisions.to_resume:
                events.emit(now, "eligibility.cont", sid=sid)
            if decisions.cycle_completed:
                rec = decisions.cycle_record
                events.emit(
                    now, "cycle.complete",
                    index=rec.index if rec is not None else -1,
                    consumed_us=rec.total_consumed if rec is not None else 0,
                )
            if self._pending_signals:
                obs.spans.record(
                    "signal",
                    self._cost_signal_us * len(self._pending_signals),
                    start_us=now,
                )
        journal = self._journal
        if journal is not None:
            # Write-ahead: the snapshot is durable before the decisions
            # it encodes are enacted.  Appends charge no CPU and draw no
            # engine randomness, so journaling is schedule-invisible.
            journal.append(self.snapshot_state(now))
        if not self._pending_signals:
            self._phase = _Phase.SLEEPING
            return self._sleep_until_boundary(now)
        self._phase = _Phase.SIGNALING
        cost = self._cost_signal_us * len(self._pending_signals)
        return Compute(self._acc.charge(cost))

    def _measure_classic(self, kapi: "KernelAPI") -> dict[int, tuple[int, bool]]:
        """Per-pid measurement loop (the reference semantics).

        One getrusage per due pid, the blocked vote short-circuited via
        ``is_blocked``, dead pids forgotten in iteration order,
        transient failures retried.  :meth:`_measure_batched` must stay
        behaviorally identical to this loop — the backend matrix pins
        the resulting schedules byte-for-byte.
        """
        measurements: dict[int, tuple[int, bool]] = {}
        core_subjects = self.core.subjects
        last_read = self._last_read
        cumulative = self._cumulative
        deferred = self._deferred_debt
        getrusage = kapi.getrusage
        is_blocked = kapi.is_blocked
        track_io = self.cfg.track_io
        for sid, pids in self._due:
            if sid not in core_subjects:
                continue
            consumed = 0
            live = 0
            blocked = track_io
            for pid in pids:
                try:
                    usage = getrusage(pid)
                except NoSuchProcessError:
                    self._forget_pid(pid)
                    continue
                except TransientReadError:
                    usage = self._retry_read(kapi, pid)
                    if usage is None:
                        continue
                live += 1
                delta = usage - last_read.get(pid, usage)
                if delta < 0:
                    # Accounting ran backwards; tolerate, don't corrupt
                    # allowances with negative charges.
                    self.anomalies += 1
                    delta = 0
                consumed += delta
                last_read[pid] = usage
                if blocked and not is_blocked(pid):
                    blocked = False
            blocked = blocked and live > 0
            cumulative[sid] = cumulative.get(sid, 0) + consumed
            if deferred:
                # Post-crash repayment: charge a share-proportional
                # sliver of the downtime debt on top of the measured
                # consumption (never touches the clean path — deferred
                # is empty unless a journaled recovery scheduled debt).
                st = core_subjects.get(sid)
                if st is not None:
                    consumed += drain_debt(
                        deferred, sid, st.share,
                        self.core.quantum_us, self.core.total_shares,
                    )
            # A bare tuple, not Measurement: the NamedTuple constructor
            # costs several times a tuple display, and complete_quantum
            # unpacks positionally so both are accepted.
            measurements[sid] = (consumed, blocked)
        return measurements

    def _measure_batched(
        self, measure_many
    ) -> tuple[dict[int, tuple[int, bool]], dict[int, Optional[bool]]]:
        """One-call measurement over every due pid (batch backend only).

        Behaviorally identical to :meth:`_measure_classic`: same
        per-pid readings (``measure_many`` reuses the getrusage
        arithmetic), same dead-pid forgetting, same blocked vote per
        subject.  Additionally returns a pid → stopped cache for the
        wedge-healing pass: no events fire inside one agent activation,
        so kernel state cannot change between the measurement and
        :meth:`_signals_for` reading it — the cached values equal what
        per-pid ``is_stopped`` calls would return.  ``None`` in the
        cache marks a pid found dead (already forgotten here).
        """
        measurements: dict[int, tuple[int, bool]] = {}
        stopped_cache: dict[int, Optional[bool]] = {}
        core_subjects = self.core.subjects
        last_read = self._last_read
        cumulative = self._cumulative
        deferred = self._deferred_debt
        track_io = self.cfg.track_io
        due = [(sid, pids) for sid, pids in self._due if sid in core_subjects]
        readings: dict[int, tuple[int, bool]] = {}
        all_pids = [pid for _, pids in due for pid in pids]
        for pid, usage, blk, stopped in measure_many(all_pids):
            if usage is None:
                self._forget_pid(pid)
                stopped_cache[pid] = None
            else:
                readings[pid] = (usage, blk)
                stopped_cache[pid] = stopped
        for sid, pids in due:
            consumed = 0
            live = 0
            blocked = track_io
            for pid in pids:
                reading = readings.get(pid)
                if reading is None:
                    continue  # dead; forgotten above
                usage, blk = reading
                live += 1
                delta = usage - last_read.get(pid, usage)
                if delta < 0:
                    self.anomalies += 1
                    delta = 0
                consumed += delta
                last_read[pid] = usage
                if blocked and not blk:
                    blocked = False
            blocked = blocked and live > 0
            cumulative[sid] = cumulative.get(sid, 0) + consumed
            if deferred:
                st = core_subjects.get(sid)
                if st is not None:
                    consumed += drain_debt(
                        deferred, sid, st.share,
                        self.core.quantum_us, self.core.total_shares,
                    )
            measurements[sid] = (consumed, blocked)
        return measurements, stopped_cache

    def _do_deliver(self, kapi: "KernelAPI") -> Action:
        """Signal CPU spent: deliver the queued signals, verify, retry."""
        for pid, signo in self._pending_signals:
            self._deliver_signal(kapi, pid, signo)
        self._pending_signals = []
        self._phase = _Phase.SLEEPING
        return self._sleep_until_boundary(kapi.now)

    def _do_reconcile(self, kapi: "KernelAPI") -> Action:
        """First activation after a restart: rebuild state from kernel truth.

        Never trust state a crash may have invalidated: re-enumerate
        membership, re-baseline every progress read, and resume any
        controlled process found stopped (the algorithm re-suspends the
        truly ineligible on the next quantum — one quantum of lost
        proportions beats a subject wedged in SIGSTOP forever).
        """
        npids = 0
        resume: list[tuple[int, int]] = []
        for subj in self.subjects.values():
            subj.refresh(kapi)
            for pid in subj.pids(kapi):
                npids += 1
                self._set_baseline(kapi, pid)
                try:
                    stopped = kapi.is_stopped(pid)
                except NoSuchProcessError:
                    self._forget_pid(pid)
                    continue
                if stopped:
                    self._stopped_pids.add(pid)
                    resume.append((pid, SIGCONT))
        self._reap_dead_subjects(kapi)
        self._next_refresh = kapi.now + self.cfg.principal_refresh_us
        self._pending_signals = resume
        cost = self.cfg.costs.measure_cost(npids)
        self.reads += npids
        cost += self.cfg.costs.signal_us * len(resume)
        self._phase = _Phase.SIGNALING
        return Compute(self._acc.charge(cost))

    def _do_recover(self, kapi: "KernelAPI") -> Action:
        """First activation after a journaled restart: replay the snapshot.

        Restores the algorithm core (allowances, cycle position,
        eligibility partition, postponement indices) and — crucially —
        preserves the fairness debt: the CPU each subject consumed
        while the agent was down (current reading minus the journaled
        baseline) is scheduled for amortized repayment
        (:func:`~repro.resilience.journal.schedule_debt`) instead of
        being forgiven by a re-baseline.  Repayment is spread over
        subsequent measurements at each debtor's fair-share rate — a
        one-shot lump charge would destabilise the postponement
        optimization.  Kernel truth still wins where it disagrees: dead
        subjects are dropped, and any pid whose stopped-ness
        contradicts the restored eligibility partition gets a fix-up
        signal.  Any inconsistency in the payload degrades to the lossy
        reconciliation path rather than failing the agent.
        """
        payload = self._recovered
        self._recovered = None
        now = kapi.now
        obs = self._obs
        try:
            if payload is None:
                raise JournalCorruptError("recovery payload missing")
            ag = payload.get("agent", {})
            last_read = {
                int(pid): int(usage)
                for pid, usage in ag.get("last_read", {}).items()
            }
            cumulative = {
                int(sid): int(total)
                for sid, total in ag.get("cumulative", {}).items()
            }
            deferred = {
                int(sid): int(owed)
                for sid, owed in ag.get("debt", {}).items()
                if int(owed) > 0
            }
            epoch = int(ag.get("epoch", self._epoch))
            restore_core(self.core, payload["core"])
        except (JournalCorruptError, TypeError, ValueError, KeyError, AttributeError):
            # Unusable payload: degrade to the PR 1 reconciliation pass.
            self.recovery_fallbacks += 1
            self.last_restart_journaled = False
            if obs is not None and obs.enabled:
                obs.events.emit(now, "agent.recovery_fallback")
            self._phase = _Phase.RECONCILING
            return self._do_reconcile(kapi)
        # The core snapshot predates any subject deaths the liveness
        # sweep noticed between snapshot and crash: self.subjects is
        # kernel-adjacent truth, so prune restored sids it lost.
        for sid in list(self.core.subjects):
            if sid not in self.subjects:
                self.core.remove_subject(sid)
        self._epoch = epoch
        npids = 0
        stopped_now: set[int] = set()
        debts: dict[int, int] = {}
        pid_rows: list[tuple[int, int, bool]] = []
        for sid, subj in self.subjects.items():
            subj.refresh(kapi)
            debt = 0
            for pid in subj.pids(kapi):
                npids += 1
                try:
                    stopped = kapi.is_stopped(pid)
                except NoSuchProcessError:
                    last_read.pop(pid, None)
                    continue
                try:
                    usage = kapi.getrusage(pid)
                except NoSuchProcessError:
                    continue
                except TransientReadError:
                    usage = self._retry_read(kapi, pid)
                if usage is not None:
                    base = last_read.get(pid)
                    if base is not None and usage > base:
                        debt += usage - base
                    self._last_read[pid] = usage
                if stopped:
                    stopped_now.add(pid)
                pid_rows.append((sid, pid, stopped))
            if debt:
                debts[sid] = debt
        # Downtime consumption is repaid gradually, not as a lump (see
        # schedule_debt); the restored eligibility partition stands.
        scheduled_us = schedule_debt(self.core, debts, deferred)
        self._deferred_debt = deferred
        fixups: list[tuple[int, int]] = []
        core_subjects = self.core.subjects
        for sid, pid, stopped in pid_rows:
            st = core_subjects.get(sid)
            want_stopped = st is not None and not st.eligible
            if stopped != want_stopped:
                fixups.append((pid, SIGSTOP if want_stopped else SIGCONT))
        self._stopped_pids = stopped_now
        self._reap_dead_subjects(kapi)
        for sid in self.subjects:
            cumulative.setdefault(sid, 0)
        self._cumulative = cumulative
        self._next_refresh = now + self.cfg.principal_refresh_us
        self._pending_signals = fixups
        self.journal_recoveries += 1
        if obs is not None and obs.enabled:
            obs.events.emit(
                now, "agent.recovered",
                subjects=len(core_subjects), fixups=len(fixups),
                debt_us=scheduled_us,
            )
        # The stopped-ness checks walk every pid like a measurement pass,
        # and the fix-up signals are real kill(2) calls: charge both.
        cost = self.cfg.costs.measure_cost(npids)
        self.reads += npids
        cost += self.cfg.costs.signal_us * len(fixups)
        self._phase = _Phase.SIGNALING
        return Compute(self._acc.charge(cost))

    # -- helpers ----------------------------------------------------------
    def _until_next_boundary(self, now: int) -> int:
        q = self._quantum_us
        k = (now - self._epoch) // q + 1
        return self._epoch + k * q - now

    def _sleep_until_boundary(self, now: int) -> Sleep:
        duration = self._until_next_boundary(now)
        guard = self._overload
        if guard is not None:
            # STRETCH and above: skip ahead extra boundaries so the
            # agent wakes every stretch × Q.  The epoch-aligned grid is
            # unchanged, so walking back down re-synchronises exactly.
            stretch = guard.stretch_factor
            if stretch > 1:
                duration += (stretch - 1) * self._quantum_us
            self._wake_cadence_us = stretch * self._quantum_us
        self._sleep_target = now + duration
        return Sleep(duration, "alpstimer")

    def _absorb_stall(self, kapi: "KernelAPI", now: int) -> float:
        """Detect missed quantum boundaries and re-baseline if needed.

        An agent that overslept N quanta (preemption storm, injected
        stall, paging) must not charge the whole outage as one quantum's
        consumption — that floods allowances and triggers a burst of
        catch-up suspensions.  Past ``stall_tolerance_quanta`` the read
        baselines are re-established at current values, forgiving the
        unobserved interval.  Returns the CPU cost of the extra reads.
        """
        q = self._quantum_us
        missed = (now - self._sleep_target) // q
        if missed <= 0:
            return 0.0
        self.missed_boundaries += missed
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(now, "agent.stall", missed=missed)
        if missed <= self.cfg.stall_tolerance_quanta:
            return 0.0
        npids = 0
        for subj in self.subjects.values():
            for pid in subj.pids(kapi):
                npids += 1
                self._set_baseline(kapi, pid)
        self.rebaselines += 1
        self.reads += npids
        return self.cfg.costs.measure_cost(npids)

    def _deliver_signal(self, kapi: "KernelAPI", pid: int, signo: int) -> None:
        """Send one signal, verify its effect, re-send within budget."""
        want_stopped = signo == SIGSTOP
        for attempt in range(self.cfg.signal_retry_budget + 1):
            try:
                kapi.kill(pid, signo)
            except NoSuchProcessError:
                self._forget_pid(pid)
                return
            self.signals_sent += 1
            if attempt > 0:
                self.signal_retries += 1
                self._deferred_cost_us += self.cfg.costs.signal_us
            if want_stopped:
                self._stopped_pids.add(pid)
            else:
                self._stopped_pids.discard(pid)
            try:
                if kapi.is_stopped(pid) == want_stopped:
                    return
            except NoSuchProcessError:
                self._forget_pid(pid)
                return
        # Budget exhausted: bookkeeping above reflects the *intended*
        # state; a later measurement's wedge-healing or the next
        # eligibility transition gets another chance.

    def _signals_for(
        self,
        kapi: "KernelAPI",
        decisions: QuantumDecisions,
        stopped_cache: Optional[dict[int, Optional[bool]]] = None,
    ) -> list[tuple[int, int]]:
        signals: list[tuple[int, int]] = []
        to_suspend = decisions.to_suspend
        suspend = set(to_suspend) if to_suspend else _EMPTY_SET
        for sid in decisions.to_suspend:
            subj = self.subjects.get(sid)
            if subj is None:
                continue
            for pid in subj.pids(kapi):
                if pid not in self._stopped_pids:
                    signals.append((pid, SIGSTOP))
        for sid in decisions.to_resume:
            subj = self.subjects.get(sid)
            if subj is None:
                continue
            for pid in subj.pids(kapi):
                if pid in self._stopped_pids:
                    signals.append((pid, SIGCONT))
        # Wedge healing: a subject measured this quantum that is (and
        # stays) eligible must not have stopped processes.  A pid found
        # stopped here lost a SIGCONT (or caught a delayed SIGSTOP); the
        # agent's bookkeeping can't be trusted, kernel state is.
        core_get = self.core.subjects.get
        is_stopped = kapi.is_stopped
        eligible = Eligibility.ELIGIBLE
        for sid, pids in self._due:
            st = core_get(sid)
            if st is None or st.state is not eligible or sid in suspend:
                continue
            for pid in pids:
                if stopped_cache is not None:
                    # Batched path: stopped-ness was read in the same
                    # activation (no intervening events, so it cannot
                    # have changed); None marks a pid found dead and
                    # already forgotten during measurement.
                    stopped = stopped_cache.get(pid)
                    if stopped:
                        signals.append((pid, SIGCONT))
                        self._stopped_pids.add(pid)  # make delivery resume it
                        self.heals += 1
                    continue
                try:
                    if is_stopped(pid):
                        signals.append((pid, SIGCONT))
                        self._stopped_pids.add(pid)  # make delivery resume it
                        self.heals += 1
                except NoSuchProcessError:
                    self._forget_pid(pid)
        return signals

    def _refresh_principals(self, kapi: "KernelAPI") -> float:
        """Re-enumerate multi-process principals (Section 5).

        Newly discovered pids inherit the principal's current
        eligibility (a new worker of a suspended user is stopped at
        discovery).  Returns the CPU cost to charge, including the
        discovery-time signals — they are real kill(2) calls and must
        show up in the §4 overhead accounting like any other signal.
        """
        cost = 0.0
        discovery_stops: list[int] = []
        for sid, subj in self.subjects.items():
            before = set(subj.pids(kapi))
            if not subj.refresh(kapi):
                continue
            cost += self.cfg.costs.principal_refresh_us
            after = set(subj.pids(kapi))
            for pid in after - before:
                self._set_baseline(kapi, pid)
                if sid in self.core.subjects and not self.core.subjects[sid].eligible:
                    discovery_stops.append(pid)
            for pid in before - after:
                self._forget_pid(pid)
        # Deliver discovery-time stops immediately (they are few), and
        # charge them: signals are never free.
        for pid in discovery_stops:
            try:
                kapi.kill(pid, SIGSTOP)
                self.signals_sent += 1
                self._stopped_pids.add(pid)
            except NoSuchProcessError:
                self._forget_pid(pid)
            cost += self.cfg.costs.signal_us
        return cost

    def _reap_dead_subjects(self, kapi: "KernelAPI") -> None:
        """Drop single-process subjects whose process exited.

        The dead subject leaves *all* agent maps — its core entry, its
        read baseline, and its stop-set entry — so long churny runs do
        not leak state (and a recycled pid can never inherit it).

        Runs every quantum, but the per-pid sweep is skipped outright
        when the kernel's global exit counter has not moved since the
        last sweep — no exit anywhere means no subject can have died.
        The counter read and ``pid_exists`` are free, fault-transparent
        inspections, so the skip is schedule-invisible.
        """
        exits = kapi.exit_count()
        if exits == self._seen_exit_count:
            return
        self._seen_exit_count = exits
        dead: Optional[list[ProcessSubject]] = None
        pid_exists = kapi.pid_exists
        for subj in self._proc_subjects:
            if pid_exists(subj.pid):
                continue  # pids are never recycled, so alive stays True
            subj._alive = False
            if dead is None:
                dead = []
            dead.append(subj)
        if dead is None:
            return
        for subj in dead:
            sid = subj.sid
            if sid in self.core.subjects:
                self.core.remove_subject(sid)
            self._forget_pid(subj.pid)
            del self.subjects[sid]
        self._proc_subjects = [s for s in self._proc_subjects if s._alive]
        tree = self._sharetree
        if tree is not None:
            # A dead leaf leaves the tree; its siblings' fractions grow
            # recursively (flat-equivalent trees resolve to the same raw
            # weights, so the reweigh no-ops there).
            changed = False
            for subj in dead:
                changed |= tree.discard_sid(subj.sid)
            if changed:
                self.reweigh_from_tree()

    def _forget_pid(self, pid: int) -> None:
        """Remove every per-pid record (death or departure cleanup)."""
        self._last_read.pop(pid, None)
        self._stopped_pids.discard(pid)

    def _retry_read(self, kapi: "KernelAPI", pid: int) -> Optional[int]:
        """Continue a getrusage whose first attempt failed transiently.

        Performs up to ``read_retry_budget`` further attempts, charging
        each retry's CPU into the next quantum.  Returns None when the
        pid is gone or the budget is exhausted; in the latter case the
        baseline is left untouched so the next successful read charges
        the full elapsed consumption — a skipped measurement defers
        accounting, it never loses it.
        """
        for _ in range(self.cfg.read_retry_budget):
            self.read_retries += 1
            self._deferred_cost_us += self.cfg.costs.measure_per_proc_us
            try:
                return kapi.getrusage(pid)
            except NoSuchProcessError:
                self._forget_pid(pid)
                return None
            except TransientReadError:
                continue
        self.read_failures += 1
        return None

    def _set_baseline(self, kapi: "KernelAPI", pid: int) -> None:
        """(Re)set a pid's progress baseline to its current reading.

        On a transient failure the stale baseline is dropped instead:
        the next successful read then starts a fresh interval (delta 0),
        which can only under-charge — safe for a recovery path.
        """
        try:
            self._last_read[pid] = kapi.getrusage(pid)
        except NoSuchProcessError:
            self._forget_pid(pid)
        except TransientReadError:
            self._last_read.pop(pid, None)


def spawn_alps(
    kernel: "Kernel",
    subjects: Sequence[Subject],
    config: AlpsConfig,
    *,
    name: str = "alps",
    uid: int = 0,
    nice: int = 0,
    start_delay: int = 0,
    injector: Optional["FaultInjector"] = None,
    journal: Optional["MemoryJournal"] = None,
    supervisor=None,
    overload: Optional["OverloadGuard"] = None,
    sharetree: Optional["ShareTree"] = None,
) -> tuple["Process", AlpsAgent]:
    """Spawn an ALPS scheduler process in the simulated kernel.

    Returns the agent's process (for overhead accounting via
    ``proc.cpu_time``) and the agent object (for its cycle log).  When a
    :class:`~repro.faults.injector.FaultInjector` is supplied, the agent
    runs behind its behavior wrapper and sees the injector's faulty
    system-call surface.  A ``journal`` makes restarts crash-safe
    (:meth:`AlpsAgent.attach_journal`); a ``supervisor``
    (:class:`~repro.resilience.supervisor.Supervisor`) hosts the agent
    behind :class:`~repro.resilience.supervisor.SupervisedAlpsBehavior`,
    which subsumes the plain fault wrapper; an ``overload`` guard
    (:class:`~repro.overload.guard.OverloadGuard`) arms admission
    control, starvation detection and the degradation ladder
    (:meth:`AlpsAgent.attach_overload`); a ``sharetree``
    (:class:`~repro.sharetree.tree.ShareTree`) makes the tree the
    authority for every subject's share
    (:meth:`AlpsAgent.attach_sharetree`).
    """
    agent = AlpsAgent(subjects, config)
    if journal is not None:
        agent.attach_journal(journal)
    if overload is not None:
        agent.attach_overload(overload)
    if sharetree is not None:
        agent.attach_sharetree(sharetree)
    behavior: "Behavior" = agent
    if supervisor is not None:
        from repro.resilience.supervisor import SupervisedAlpsBehavior

        behavior = SupervisedAlpsBehavior(agent, supervisor, injector)
    elif injector is not None:
        from repro.faults.injector import FaultableAlpsBehavior

        behavior = FaultableAlpsBehavior(agent, injector)
    proc = kernel.spawn(name, behavior, uid=uid, nice=nice, start_delay=start_delay)
    return proc, agent
