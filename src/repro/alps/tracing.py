"""Observability for ALPS schedulers: a per-quantum decision trace.

Attaching an :class:`AlpsTrace` to an agent records, for every
invocation: when it woke, which subjects it measured and what it saw,
which transitions it enacted, and whether a cycle completed.  Useful
for debugging share configurations and for fine-grained tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.alps.algorithm import Measurement, QuantumDecisions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alps.agent import AlpsAgent


@dataclass(slots=True, frozen=True)
class QuantumTraceRecord:
    """One algorithm invocation as observed at the core boundary."""

    count: int
    measured: Mapping[int, Measurement]
    suspended: tuple[int, ...]
    resumed: tuple[int, ...]
    cycle_completed: bool
    tc_after: int


@dataclass(slots=True)
class AlpsTrace:
    """Collected per-quantum records."""

    records: list[QuantumTraceRecord] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.records)

    def suspensions_of(self, sid: int) -> int:
        """How many times ``sid`` was suspended."""
        return sum(1 for r in self.records if sid in r.suspended)

    def measurements_of(self, sid: int) -> int:
        """How many times ``sid`` was measured."""
        return sum(1 for r in self.records if sid in r.measured)

    def cycles(self) -> int:
        """Number of cycle completions observed."""
        return sum(1 for r in self.records if r.cycle_completed)

    def format(self, last: int = 20) -> str:
        """Human-readable tail of the trace."""
        lines = []
        for r in self.records[-last:]:
            seen = ", ".join(
                f"{sid}:{m.consumed_us}us{'(blk)' if m.blocked else ''}"
                for sid, m in r.measured.items()
            )
            marks = []
            if r.suspended:
                marks.append(f"stop{list(r.suspended)}")
            if r.resumed:
                marks.append(f"cont{list(r.resumed)}")
            if r.cycle_completed:
                marks.append("CYCLE")
            lines.append(
                f"#{r.count:<5} measured[{seen}] {' '.join(marks)}"
            )
        return "\n".join(lines)


def attach_alps_trace(agent: "AlpsAgent") -> AlpsTrace:
    """Record every invocation of ``agent``'s core; returns the trace."""
    trace = AlpsTrace()
    core = agent.core
    original = core.complete_quantum

    def wrapped(measurements: Mapping[int, Measurement]) -> QuantumDecisions:
        decisions = original(measurements)
        trace.records.append(
            QuantumTraceRecord(
                count=core.count,
                # Hot drivers pass bare (consumed_us, blocked) tuples;
                # normalize so record consumers get Measurement fields.
                measured={s: Measurement(*m) for s, m in measurements.items()},
                suspended=tuple(decisions.to_suspend),
                resumed=tuple(decisions.to_resume),
                cycle_completed=decisions.cycle_completed,
                tc_after=core.tc,
            )
        )
        return decisions

    core.complete_quantum = wrapped  # type: ignore[method-assign]
    return trace
