"""The ALPS scheduling algorithm (paper Figure 3), as a pure state machine.

The core is deliberately independent of any execution substrate: it
never reads clocks, sends signals, or sleeps.  A driver (the simulated
agent in :mod:`repro.alps.agent` or the real-Linux controller in
:mod:`repro.hostos.controller`) calls :meth:`AlpsCore.begin_quantum` when
its quantum timer fires, performs the (costly) progress reads the core
asked for, and feeds them to :meth:`AlpsCore.complete_quantum`, which
returns the eligibility transitions to enact.

Algorithm recap (Figure 3).  Each subject *i* has ``share_i`` and an
``allowance_i`` measured in quanta.  Per invocation::

    count += 1
    for i eligible with update_i <= count:
        consumed_i, blocked_i = READ-PROGRESS(i)
        allowance_i -= consumed_i / Q ;  tc -= consumed_i
        if blocked_i: allowance_i -= 1 ;  tc -= Q
    if tc <= 0: tc += S*Q ; cycles = 1 else 0
    for all i:
        allowance_i += share_i * cycles
        state_i = eligible if allowance_i > 0 else ineligible
        if update_i <= count: update_i = count + ceil(allowance_i)

The ``update_i`` bookkeeping is the paper's key optimization: a subject
with allowance *a* cannot exhaust it in fewer than ⌈a⌉ quanta, so its
progress need not be read again sooner.  Constructing the core with
``optimized=False`` disables it (every eligible subject is measured
every quantum), which is the ablation of Section 3.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, NamedTuple, Optional

from repro.alps.instrumentation import CycleLog, CycleRecord
from repro.alps.state import Eligibility, SubjectState
from repro.errors import SchedulerConfigError, SimulationError


class Measurement(NamedTuple):
    """Result of READ-PROGRESS for one subject.

    A NamedTuple rather than a frozen dataclass: drivers build one per
    measured subject per quantum, and the tuple constructor is several
    times cheaper while keeping immutability, equality, and hashing.

    Attributes:
        consumed_us: CPU time consumed since the previous measurement.
        blocked: True if the subject was observed blocked (sleeping on a
            wait channel) at read time.
    """

    consumed_us: int
    blocked: bool = False


@dataclass(slots=True)
class QuantumDecisions:
    """What the driver must enact after one algorithm invocation."""

    #: Subjects that transitioned eligible -> ineligible (suspend them).
    to_suspend: list[int] = field(default_factory=list)
    #: Subjects that transitioned ineligible -> eligible (resume them).
    to_resume: list[int] = field(default_factory=list)
    #: Set when this invocation completed a cycle.
    cycle_completed: bool = False
    #: The finished cycle's record (present iff ``cycle_completed``).
    cycle_record: Optional[CycleRecord] = None


class AlpsCore:
    """Backend-independent implementation of the ALPS algorithm.

    Subjects are integer ids (pids for per-process scheduling, or
    principal ids for user-level grouping).  Shares must be positive
    integers.  The paper scales shares by their GCD when defining the
    cycle length; we follow the evaluation section and use the raw total
    (the evaluation explicitly does not rescale).
    """

    def __init__(
        self,
        shares: Mapping[int, int],
        quantum_us: int,
        *,
        optimized: bool = True,
        cycle_log: Optional[CycleLog] = None,
        now_fn: Callable[[], int] = lambda: 0,
    ) -> None:
        if quantum_us <= 0:
            raise SchedulerConfigError(f"quantum must be positive, got {quantum_us}")
        if not shares:
            raise SchedulerConfigError("at least one subject is required")
        self.quantum_us = quantum_us
        self.optimized = optimized
        #: Multiplier on the postponement intervals (Section 2.3).  The
        #: overload layer's COARSEN rung raises it so measurements batch
        #: more coarsely under pressure; 1 is the exact paper behavior
        #: (docs/overload.md).
        self.postpone_boost = 1
        self.cycle_log = cycle_log if cycle_log is not None else CycleLog()
        self._now_fn = now_fn
        self.subjects: dict[int, SubjectState] = {}
        self.count = 0
        self.cycles_completed = 0
        self.total_shares = 0
        #: Remaining CPU time (µs) in the current cycle (tc in Figure 3).
        self.tc = 0
        #: Set when the next partition must sweep *all* subjects: after
        #: construction and any membership/share change, a subject's
        #: eligibility can change without it having been measured.
        self._dirty = True
        #: Subject ids returned by the latest begin_quantum (the only
        #: subjects, besides measured ones, whose update bookkeeping the
        #: matching complete_quantum can owe a write to).
        self._last_due: list[int] = []
        for sid, share in shares.items():
            self._insert_subject(sid, share)
        self.tc = self.cycle_length_us

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _insert_subject(self, sid: int, share: int) -> None:
        if share <= 0:
            raise SchedulerConfigError(
                f"share for subject {sid} must be a positive integer, got {share}"
            )
        if sid in self.subjects:
            raise SchedulerConfigError(f"duplicate subject id {sid}")
        self.subjects[sid] = SubjectState(share=share, allowance=float(share))
        self.total_shares += share
        self._dirty = True

    @property
    def cycle_length_us(self) -> int:
        """S · Q — the CPU time over which proportions are guaranteed."""
        return self.total_shares * self.quantum_us

    def add_subject(self, sid: int, share: int) -> None:
        """Add a subject mid-run.

        The new subject starts ineligible with a full allowance, and the
        current cycle is extended by its entitlement (``share · Q``) so
        existing subjects' proportions within the extended cycle are
        preserved.
        """
        self._insert_subject(sid, share)
        self.tc += share * self.quantum_us

    def set_share(self, sid: int, share: int) -> None:
        """Change a subject's share mid-run (extension).

        The paper's motivating scientific application reweights
        processes as its mesh refines; this adjusts the cycle the same
        way add/remove do: the current cycle is stretched or shrunk by
        the entitlement delta, and the subject's allowance is adjusted
        so already-earned credit is preserved.
        """
        st = self.subjects.get(sid)
        if st is None:
            raise SchedulerConfigError(f"unknown subject id {sid}")
        if share <= 0:
            raise SchedulerConfigError(
                f"share for subject {sid} must be a positive integer, got {share}"
            )
        delta = share - st.share
        if delta == 0:
            return
        self.total_shares += delta
        self.tc += delta * self.quantum_us
        st.allowance += delta
        st.share = share
        self._dirty = True
        # Eligibility is deliberately left as-is: the next invocation's
        # partition loop recomputes it and reports the transition, so
        # the driver sends the matching SIGSTOP/SIGCONT.

    def remove_subject(self, sid: int) -> SubjectState:
        """Remove a subject (e.g. its process exited) and return its state.

        The unconsumed part of its entitlement leaves the cycle with it,
        so remaining subjects are not stretched over CPU time that will
        never be consumed.
        """
        state = self.subjects.pop(sid, None)
        if state is None:
            raise SchedulerConfigError(f"unknown subject id {sid}")
        self.total_shares -= state.share
        if self.total_shares < 0:  # pragma: no cover - defensive
            raise SchedulerConfigError("total shares went negative")
        remaining_entitlement = max(0.0, state.allowance) * self.quantum_us
        self.tc -= int(remaining_entitlement)
        self._dirty = True
        return state

    # ------------------------------------------------------------------
    # The algorithm
    # ------------------------------------------------------------------
    def begin_quantum(self) -> list[int]:
        """Start an invocation: advance ``count`` and pick who to measure.

        Returns the subject ids whose progress the driver must read
        (eligible, and due per the postponement optimization).  The
        driver then calls :meth:`complete_quantum` with the readings.
        """
        count = self.count + 1
        self.count = count
        due: list[int] = []
        append = due.append
        eligible = Eligibility.ELIGIBLE
        optimized = self.optimized
        for sid, st in self.subjects.items():
            if st.state is not eligible:
                continue
            if optimized and st.update > count:
                continue
            append(sid)
        self._last_due = due
        return due

    def complete_quantum(
        self, measurements: Mapping[int, tuple[int, bool]]
    ) -> QuantumDecisions:
        """Apply one invocation's measurements (Figure 3 body).

        ``measurements`` must cover exactly the ids returned by the
        matching :meth:`begin_quantum` call (missing ids are treated as
        unmeasured, which preserves liveness if a read failed).  Values
        are :class:`Measurement` instances or plain
        ``(consumed_us, blocked)`` tuples — hot drivers pass the latter
        to skip the NamedTuple constructor.
        """
        q = self.quantum_us
        subjects = self.subjects
        subjects_get = subjects.get
        measured_set: set[int] = set()
        tc = self.tc
        # Measurement is a NamedTuple: unpack it instead of two
        # attribute reads per entry.
        for sid, (consumed, was_blocked) in measurements.items():
            st = subjects_get(sid)
            if st is None:
                continue  # subject removed between begin and complete
            st.allowance -= consumed / q
            tc -= consumed
            st.consumed_this_cycle += consumed
            st.measurements += 1
            if was_blocked:
                st.allowance -= 1.0
                tc -= q
                st.blocked_quanta_this_cycle += 1
            measured_set.add(sid)
        self.tc = tc

        decisions = QuantumDecisions()
        cycles = 0
        if tc <= 0 and subjects:
            cycles = 1
            self.tc += self.cycle_length_us
            decisions.cycle_completed = True
            decisions.cycle_record = self._finish_cycle()

        count = self.count
        eligible = Eligibility.ELIGIBLE
        ineligible = Eligibility.INELIGIBLE
        ceil = math.ceil
        boost = self.postpone_boost
        if cycles or self._dirty:
            # Full partition sweep: a cycle credit (or a membership /
            # share change since the last sweep) can flip any subject.
            for sid, st in subjects.items():
                allowance = st.allowance
                if cycles:
                    allowance = st.allowance = allowance + st.share
                new_state = eligible if allowance > 0 else ineligible
                if new_state is not st.state:
                    if new_state is eligible:
                        decisions.to_resume.append(sid)
                    else:
                        decisions.to_suspend.append(sid)
                    st.state = new_state
                if st.update <= count or sid in measured_set:
                    up = ceil(allowance)
                    if up < 1:
                        up = 1
                    st.update = count + up * boost
            self._dirty = False
        else:
            # No credit and no external change: only subjects whose
            # allowance this call touched (measured) or that were due
            # can transition, and only due/measured subjects are owed an
            # ``update`` write.  Skipped ineligible subjects keep a
            # stale ``update <= count``, which begin_quantum never reads
            # while they are ineligible and which the next full sweep
            # recomputes from the same inputs — so the skip is
            # unobservable (the oracle differential test pins this).
            visit = self._last_due
            extras = [sid for sid in measured_set if sid not in visit]
            if extras:
                visit = visit + extras
            for sid in visit:
                st = subjects_get(sid)
                if st is None:
                    continue
                allowance = st.allowance
                new_state = eligible if allowance > 0 else ineligible
                if new_state is not st.state:
                    if new_state is eligible:
                        decisions.to_resume.append(sid)
                    else:
                        decisions.to_suspend.append(sid)
                    st.state = new_state
                if st.update <= count or sid in measured_set:
                    up = ceil(allowance)
                    if up < 1:
                        up = 1
                    st.update = count + up * boost
        return decisions

    def _finish_cycle(self) -> CycleRecord:
        record = CycleRecord(
            index=self.cycles_completed,
            end_time=self._now_fn(),
            consumed={sid: st.consumed_this_cycle for sid, st in self.subjects.items()},
            blocked_quanta={
                sid: st.blocked_quanta_this_cycle for sid, st in self.subjects.items()
            },
            shares={sid: st.share for sid, st in self.subjects.items()},
            quantum_us=self.quantum_us,
        )
        self.cycle_log.append(record)
        self.cycles_completed += 1
        for st in self.subjects.values():
            st.consumed_this_cycle = 0
            st.blocked_quanta_this_cycle = 0
        return record

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def eligibility(self, sid: int) -> Eligibility:
        """Current eligibility of a subject."""
        return self.subjects[sid].state

    def allowance(self, sid: int) -> float:
        """Current allowance (quanta) of a subject."""
        return self.subjects[sid].allowance

    def check_runtime_invariants(self) -> None:
        """Raise :class:`SimulationError` if scheduler state is corrupt.

        Meant to run after each :meth:`complete_quantum` (drivers gate
        it on ``AlpsConfig.enforce_invariants``).  Checks:

        * every allowance is finite (fault-corrupted accounting shows
          up as NaN/inf long before results are visibly wrong);
        * eligibility matches the allowance sign (Figure 3's partition
          is the ground truth, and complete_quantum just recomputed it);
        * no livelock: with subjects present and no cycle completion
          pending (``tc > 0``), at least one subject must be eligible —
          an all-ineligible state with a positive cycle remainder can
          never measure progress and would idle the group forever.
        """
        isfinite = math.isfinite
        eligible_state = Eligibility.ELIGIBLE
        any_eligible = False
        # Iterate values() — the sid is only needed for error messages,
        # and the failure path recovers it with a cold scan.
        for st in self.subjects.values():
            allowance = st.allowance
            if not isfinite(allowance):
                sid = self._sid_of(st)
                raise SimulationError(
                    f"subject {sid} allowance is not finite: {allowance}"
                )
            eligible = st.state is eligible_state
            if eligible != (allowance > 0):
                sid = self._sid_of(st)
                raise SimulationError(
                    f"subject {sid} eligibility {st.state} inconsistent "
                    f"with allowance {allowance}"
                )
            if eligible:
                any_eligible = True
        if self.subjects and self.tc > 0 and not any_eligible:
            raise SimulationError(
                "livelock: all subjects ineligible with cycle remainder "
                f"tc={self.tc} > 0"
            )

    def _sid_of(self, state: SubjectState) -> int:
        """Recover a subject's id from its state object (error paths)."""
        for sid, st in self.subjects.items():
            if st is state:
                return sid
        return -1  # pragma: no cover - state not in the table

    def invariant_check(self) -> None:
        """Sanity checks used by tests: eligibility matches allowance sign.

        Raises AssertionError on violation.
        """
        for sid, st in self.subjects.items():
            if st.allowance > 0:
                assert st.state is Eligibility.ELIGIBLE, (sid, st)
            else:
                assert st.state is Eligibility.INELIGIBLE, (sid, st)
