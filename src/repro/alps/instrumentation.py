"""Per-cycle instrumentation of an ALPS scheduler.

The paper evaluates accuracy from "a log of the CPU time consumed by
each process in every cycle" (Section 3.1).  :class:`CycleLog` is that
log; the metrics in :mod:`repro.metrics.accuracy` consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

import numpy as np


@dataclass(slots=True, frozen=True)
class CycleRecord:
    """One completed ALPS cycle.

    Attributes:
        index: cycle number (0-based).
        end_time: virtual time (µs) at which the completing quantum's
            bookkeeping ran.
        consumed: CPU time (µs) each subject consumed during the cycle,
            keyed by subject id.
        blocked_quanta: quanta charged per subject for being blocked.
        shares: share of each subject during the cycle.
        quantum_us: ALPS quantum length during the cycle.
    """

    index: int
    end_time: int
    consumed: Mapping[int, int]
    blocked_quanta: Mapping[int, int]
    shares: Mapping[int, int]
    quantum_us: int

    @property
    def total_consumed(self) -> int:
        """Total CPU (µs) consumed by all subjects in the cycle."""
        return sum(self.consumed.values())


@dataclass(slots=True)
class CycleLog:
    """Append-only log of :class:`CycleRecord` entries."""

    records: list[CycleRecord] = field(default_factory=list)

    def append(self, record: CycleRecord) -> None:
        """Add a completed cycle."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CycleRecord]:
        return iter(self.records)

    def __getitem__(self, idx: int) -> CycleRecord:
        return self.records[idx]

    def consumption_matrix(self, subject_ids: list[int]) -> np.ndarray:
        """(cycles × subjects) array of per-cycle CPU consumption (µs)."""
        out = np.zeros((len(self.records), len(subject_ids)), dtype=np.int64)
        for row, rec in enumerate(self.records):
            for col, sid in enumerate(subject_ids):
                out[row, col] = rec.consumed.get(sid, 0)
        return out

    def tail(self, n: int) -> "CycleLog":
        """A view-like log holding only the last ``n`` cycles."""
        return CycleLog(records=self.records[-n:])

    def skip(self, n: int) -> "CycleLog":
        """A log without the first ``n`` (warm-up) cycles."""
        return CycleLog(records=self.records[n:])
