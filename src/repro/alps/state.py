"""Per-subject bookkeeping for the ALPS algorithm."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Eligibility(enum.Enum):
    """Whether a subject may contend for the CPU this quantum."""

    ELIGIBLE = "eligible"
    INELIGIBLE = "ineligible"


@dataclass(slots=True)
class SubjectState:
    """Scheduler state for one subject (process or principal).

    Mirrors the per-process variables of Figure 3: ``share``,
    ``allowance`` (in quanta), eligibility ``state``, and the
    measurement-postponement index ``update``.
    """

    share: int
    #: Remaining quanta of CPU the subject may use this cycle.
    allowance: float
    state: Eligibility = Eligibility.INELIGIBLE
    #: Quantum index at which to next measure the subject's progress.
    update: int = 0
    #: CPU consumed (µs) within the current cycle (instrumentation).
    consumed_this_cycle: int = 0
    #: Quanta charged for being blocked within the current cycle.
    blocked_quanta_this_cycle: int = 0
    #: Total number of times this subject was measured (statistics).
    measurements: int = 0

    @property
    def eligible(self) -> bool:
        """Convenience accessor for the eligibility flag."""
        return self.state is Eligibility.ELIGIBLE
