"""Resource principals: what an ALPS schedules.

Sections 2–4 of the paper schedule individual processes; Section 5
generalises the principal to *a user* — every process owned by the user
counts against one allocation and is stopped/resumed as a group.  Both
are modelled here behind one small interface the agent consumes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kapi import KernelAPI


@runtime_checkable
class Subject(Protocol):
    """A schedulable principal with a share of the CPU."""

    #: Unique id used as the key inside :class:`~repro.alps.algorithm.AlpsCore`.
    sid: int
    #: Integer share of CPU time.
    share: int

    def pids(self, kapi: "KernelAPI") -> list[int]:
        """Current live pids belonging to this principal."""
        ...

    def refresh(self, kapi: "KernelAPI") -> bool:
        """Re-enumerate membership; returns True if membership changed."""
        ...


class ProcessSubject:
    """A principal that is a single process (the paper's base case)."""

    __slots__ = ("sid", "share", "pid", "_alive", "_pids")

    def __init__(self, sid: int, share: int, pid: int) -> None:
        self.sid = sid
        self.share = share
        self.pid = pid
        self._alive = True
        # Membership never changes while alive (pids are not recycled),
        # so the singleton list is cached; callers must not mutate it.
        self._pids = [pid]

    def pids(self, kapi: "KernelAPI") -> list[int]:
        return self._pids if self._alive else []

    def refresh(self, kapi: "KernelAPI") -> bool:
        alive = kapi.pid_exists(self.pid)
        changed = alive != self._alive
        self._alive = alive
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessSubject(sid={self.sid}, share={self.share}, pid={self.pid})"


class UserSubject:
    """A principal that is a user: all of the user's processes share one
    allocation (Section 5's shared web server policy).

    Membership is refreshed lazily by the agent (once per
    ``principal_refresh_us``), mirroring the paper's once-per-second
    ``kvm_getprocs`` scan.
    """

    __slots__ = ("sid", "share", "uid", "_pids")

    def __init__(self, sid: int, share: int, uid: int) -> None:
        self.sid = sid
        self.share = share
        self.uid = uid
        self._pids: list[int] = []

    def pids(self, kapi: "KernelAPI") -> list[int]:
        return list(self._pids)

    def refresh(self, kapi: "KernelAPI") -> bool:
        new = sorted(kapi.pids_of_uid(self.uid))
        changed = new != self._pids
        self._pids = new
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UserSubject(sid={self.sid}, share={self.share}, uid={self.uid})"
