"""Configuration for an ALPS scheduler instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alps.costs import CostModel
from repro.errors import SchedulerConfigError
from repro.units import MSEC, SEC


@dataclass(slots=True, frozen=True)
class AlpsConfig:
    """Tunables of one ALPS instance.

    Attributes:
        quantum_us: the ALPS quantum Q — the period between invocations
            of the scheduling algorithm and the unit of allowances.  The
            paper evaluates 10–40 ms (100 ms for the web server).
        optimized: enable the measurement-postponement optimization
            (Section 2.3).  Disabling it is the Section 3.2 ablation.
        track_io: enable blocked-process accounting (Section 2.4).
        costs: the Table 1 cost model charged to the agent's own CPU.
        principal_refresh_us: how often multi-process principals
            re-enumerate their membership (Section 5 uses 1 s).
    """

    quantum_us: int = 10 * MSEC
    optimized: bool = True
    track_io: bool = True
    costs: CostModel = field(default_factory=CostModel)
    principal_refresh_us: int = 1 * SEC

    def __post_init__(self) -> None:
        if self.quantum_us <= 0:
            raise SchedulerConfigError(
                f"quantum_us must be positive, got {self.quantum_us}"
            )
        if self.principal_refresh_us <= 0:
            raise SchedulerConfigError(
                f"principal_refresh_us must be positive, got {self.principal_refresh_us}"
            )
