"""Configuration for an ALPS scheduler instance."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.alps.costs import CostModel
from repro.errors import SchedulerConfigError
from repro.units import MSEC, SEC


@dataclass(slots=True, frozen=True)
class AlpsConfig:
    """Tunables of one ALPS instance.

    Attributes:
        quantum_us: the ALPS quantum Q — the period between invocations
            of the scheduling algorithm and the unit of allowances.  The
            paper evaluates 10–40 ms (100 ms for the web server).
        optimized: enable the measurement-postponement optimization
            (Section 2.3).  Disabling it is the Section 3.2 ablation.
        track_io: enable blocked-process accounting (Section 2.4).
        costs: the Table 1 cost model charged to the agent's own CPU.
        principal_refresh_us: how often multi-process principals
            re-enumerate their membership (Section 5 uses 1 s).
        read_retry_budget: extra attempts after a transient accounting
            read failure before the measurement is skipped this quantum.
        signal_retry_budget: extra deliveries after a SIGSTOP/SIGCONT
            whose effect is not observed in kernel process state.
        stall_tolerance_quanta: missed quantum boundaries tolerated
            before the agent re-baselines its progress reads instead of
            charging the whole outage as one burst of consumption.
        enforce_invariants: check scheduler-state invariants every
            quantum and raise SimulationError on corruption (see
            docs/fault_model.md).
    """

    quantum_us: int = 10 * MSEC
    optimized: bool = True
    track_io: bool = True
    costs: CostModel = field(default_factory=CostModel)
    principal_refresh_us: int = 1 * SEC
    read_retry_budget: int = 2
    signal_retry_budget: int = 1
    stall_tolerance_quanta: int = 2
    enforce_invariants: bool = True

    def __post_init__(self) -> None:
        if self.quantum_us <= 0:
            raise SchedulerConfigError(
                f"quantum_us must be positive, got {self.quantum_us}"
            )
        if self.principal_refresh_us <= 0:
            raise SchedulerConfigError(
                f"principal_refresh_us must be positive, got {self.principal_refresh_us}"
            )
        if self.read_retry_budget < 0:
            raise SchedulerConfigError(
                f"read_retry_budget must be >= 0, got {self.read_retry_budget}"
            )
        if self.signal_retry_budget < 0:
            raise SchedulerConfigError(
                f"signal_retry_budget must be >= 0, got {self.signal_retry_budget}"
            )
        if self.stall_tolerance_quanta < 1:
            raise SchedulerConfigError(
                "stall_tolerance_quanta must be >= 1, got "
                f"{self.stall_tolerance_quanta}"
            )
