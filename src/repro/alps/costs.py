"""Cost model for ALPS's own operations (paper Table 1).

The paper measured, on its 2.2 GHz Pentium 4 / FreeBSD 4.8 testbed:

=============================================  =========
Receive a timer event                          9.02 µs
Measure CPU time of n processes                1.1 + 17.4·n µs
Signal a process                               0.97 µs
=============================================  =========

The simulated ALPS agent charges itself CPU time according to this
model, which is what makes overhead (Figure 5) and the scalability
breakdown (Figures 8/9) emerge from the simulation.  The constants are
configurable so sensitivity studies can explore faster/slower hosts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True, frozen=True)
class CostModel:
    """Per-operation CPU costs (float microseconds)."""

    timer_event_us: float = 9.02
    measure_fixed_us: float = 1.1
    measure_per_proc_us: float = 17.4
    signal_us: float = 0.97
    #: Cost of re-enumerating a user's processes (kvm_getprocs), used by
    #: resource principals (Section 5).  Charged per refresh.
    principal_refresh_us: float = 120.0

    def measure_cost(self, nprocs: int) -> float:
        """Cost of reading the CPU time of ``nprocs`` processes."""
        if nprocs <= 0:
            return 0.0
        return self.measure_fixed_us + self.measure_per_proc_us * nprocs

    def quantum_cost(self, nprocs_measured: int) -> float:
        """Timer event plus measurement cost for one ALPS invocation."""
        return self.timer_event_us + self.measure_cost(nprocs_measured)


class CostAccumulator:
    """Converts fractional µs costs into integer µs CPU bursts.

    Simulated time is integer microseconds but the cost model is
    fractional; the accumulator carries the remainder forward so the
    *average* charged cost is exact over many quanta (important when
    per-quantum costs are tens of µs and overheads under 1 %).
    """

    __slots__ = ("_carry",)

    def __init__(self) -> None:
        self._carry = 0.0

    def charge(self, cost_us: float) -> int:
        """Return the integer burst to issue for a fractional cost."""
        if cost_us < 0:
            raise ValueError(f"cost must be >= 0, got {cost_us}")
        total = self._carry + cost_us
        whole = int(total)
        self._carry = total - whole
        return whole
