"""ALPS: the Application-Level Proportional-Share Scheduler.

This package implements the paper's contribution:

* :mod:`~repro.alps.algorithm` — the core scheduling algorithm of
  Figure 3 (allowances, cycles, the measurement-postponement
  optimization, and blocked-process accounting), as a pure state
  machine independent of any execution substrate.
* :mod:`~repro.alps.subjects` — the resource principals ALPS schedules:
  single processes (Sections 2–4) or whole users (Section 5).
* :mod:`~repro.alps.agent` — the ALPS *process* for the simulated
  kernel: an unprivileged process that wakes every quantum, pays the
  Table 1 operation costs in CPU time, samples progress, and signals.
* :mod:`~repro.alps.costs` — the Table 1 cost model.
* :mod:`~repro.alps.instrumentation` — per-cycle consumption logs used
  by the accuracy metrics.

The same :class:`~repro.alps.algorithm.AlpsCore` also drives the
real-Linux controller in :mod:`repro.hostos`.
"""

from repro.alps.agent import AlpsAgent
from repro.alps.algorithm import AlpsCore, QuantumDecisions
from repro.alps.config import AlpsConfig
from repro.alps.costs import CostAccumulator, CostModel
from repro.alps.instrumentation import CycleLog, CycleRecord
from repro.alps.state import SubjectState
from repro.alps.subjects import ProcessSubject, Subject, UserSubject

__all__ = [
    "AlpsAgent",
    "AlpsConfig",
    "AlpsCore",
    "CostAccumulator",
    "CostModel",
    "CycleLog",
    "CycleRecord",
    "ProcessSubject",
    "QuantumDecisions",
    "Subject",
    "SubjectState",
    "UserSubject",
]
