"""Bounded group membership with a FIFO admission queue.

Arrival storms are the first way a group outgrows its agent: each new
process adds a measurement read and a signal decision per boundary, so
an unbounded group drags the agent past its fair share (Section 4.2).
The admission queue caps the *enforced* set at a fixed capacity;
arrivals beyond it wait in FIFO order and are drained as capacity frees
up (departures, sheds walking back).  Queueing is lossless and
order-preserving — the property tests in
``tests/overload/test_admission_property.py`` pin both.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Optional


class AdmissionQueue:
    """FIFO admission queue in front of a bounded enforced set.

    Entries are opaque to the queue (the sim driver queues ``Subject``
    objects, the live driver queues pids).  The queue itself is
    unbounded — admission control bounds the measurement set, not the
    backlog.
    """

    __slots__ = (
        "capacity",
        "_pending",
        "submitted",
        "admitted_immediately",
        "queued",
        "drained",
        "queued_peak",
    )

    def __init__(self, capacity: Optional[int] = None) -> None:
        self.capacity = capacity
        self._pending: deque[Any] = deque()
        self.submitted = 0
        self.admitted_immediately = 0
        self.queued = 0
        self.drained = 0
        self.queued_peak = 0

    @property
    def depth(self) -> int:
        """Number of entries waiting for admission."""
        return len(self._pending)

    def has_room(self, active: int) -> bool:
        """Whether an enforced set of ``active`` members has spare capacity."""
        return self.capacity is None or active < self.capacity

    def submit(self, entry: Any, active: int, *, paused: bool = False) -> bool:
        """Offer ``entry`` for admission given ``active`` enforced members.

        Returns True when the caller should admit the entry now.  Returns
        False when the entry was queued instead — because the group is at
        capacity, admission is ``paused`` (ladder at SHED), or older
        entries are already waiting (FIFO order is never violated by a
        late arrival slipping past the queue).
        """
        self.submitted += 1
        if not paused and not self._pending and self.has_room(active):
            self.admitted_immediately += 1
            return True
        self._pending.append(entry)
        self.queued += 1
        if len(self._pending) > self.queued_peak:
            self.queued_peak = len(self._pending)
        return False

    def admit_ready(self, active: int, *, paused: bool = False) -> list[Any]:
        """Pop entries that fit into the spare capacity, oldest first."""
        if paused or not self._pending:
            return []
        ready: list[Any] = []
        while self._pending and self.has_room(active + len(ready)):
            ready.append(self._pending.popleft())
        self.drained += len(ready)
        return ready

    def discard(self, entry: Any) -> bool:
        """Drop a queued entry (e.g. its process died while waiting)."""
        try:
            self._pending.remove(entry)
        except ValueError:
            return False
        return True

    def pending(self) -> tuple[Any, ...]:
        """Snapshot of the waiting entries, oldest first."""
        return tuple(self._pending)

    def stats(self) -> dict[str, int]:
        """Counters for obs export and the chaos report."""
        return {
            "submitted": self.submitted,
            "admitted_immediately": self.admitted_immediately,
            "queued": self.queued,
            "drained": self.drained,
            "queued_peak": self.queued_peak,
            "depth": self.depth,
        }
