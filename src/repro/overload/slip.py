"""Starvation detection via timer slip.

The agent schedules its own wakeups one quantum apart; the kernel
delivers them when the agent next wins the CPU.  The gap between the
scheduled and actual delivery — *timer slip* — is the agent's only
self-referential load signal: when the kernel deprioritises the agent
(Section 4.2's breakdown, a nice-bomb, sheer group size), slip is the
first thing that grows.  The monitor keeps a per-wake sample and an
EWMA, both in units of the base quantum, so thresholds transfer across
quantum settings.
"""

from __future__ import annotations


class SlipMonitor:
    """EWMA timer-slip tracker; pure bookkeeping, no clock reads."""

    __slots__ = (
        "alpha",
        "samples",
        "last_quanta",
        "ewma_quanta",
        "max_quanta",
        "total_slip_us",
    )

    def __init__(self, alpha: float = 0.3) -> None:
        self.alpha = alpha
        self.samples = 0
        self.last_quanta = 0.0
        self.ewma_quanta = 0.0
        self.max_quanta = 0.0
        self.total_slip_us = 0

    def observe(self, slip_us: int, quantum_us: int) -> float:
        """Record one wake's slip; returns the updated EWMA in quanta.

        Early wakes (negative slip — e.g. a restart re-anchoring the
        epoch) clamp to zero: only lateness indicates starvation.
        """
        if slip_us < 0:
            slip_us = 0
        quanta = slip_us / quantum_us
        self.samples += 1
        self.last_quanta = quanta
        self.total_slip_us += slip_us
        if quanta > self.max_quanta:
            self.max_quanta = quanta
        if self.samples == 1:
            self.ewma_quanta = quanta
        else:
            a = self.alpha
            self.ewma_quanta = a * quanta + (1.0 - a) * self.ewma_quanta
        return self.ewma_quanta

    def reset_ewma(self) -> None:
        """Discard the smoothed history (cumulative counters survive).

        Called after an enactment that changes the system being measured
        — a shed round, a rung change — so the old samples stop arguing
        for further action the new population hasn't earned.
        """
        self.samples = 0
        self.ewma_quanta = 0.0
        self.last_quanta = 0.0

    def stats(self) -> dict[str, float]:
        """Counters for obs export and the chaos report."""
        return {
            "samples": float(self.samples),
            "last_quanta": self.last_quanta,
            "ewma_quanta": self.ewma_quanta,
            "max_quanta": self.max_quanta,
            "total_slip_us": float(self.total_slip_us),
        }
