"""Tunables of the overload-protection layer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SchedulerConfigError

#: Number of ladder rungs (NORMAL, STRETCH, COARSEN, SHED).
RUNG_COUNT = 4


@dataclass(slots=True, frozen=True)
class OverloadConfig:
    """Tunables of one :class:`~repro.overload.guard.OverloadGuard`.

    Attributes:
        capacity: maximum number of concurrently *enforced* subjects in
            the group.  Arrivals beyond capacity wait in a FIFO
            admission queue instead of inflating the measurement set.
            ``None`` disables admission control (everything admits
            immediately).
        slip_alpha: EWMA smoothing factor for the timer-slip signal
            (weight of the newest sample).
        engage_slip_quanta: smoothed slip, in quanta, at or above which
            a wake counts toward engaging the next rung.
        release_slip_quanta: smoothed slip, in quanta, at or below which
            a wake counts toward releasing the current rung.  Must sit
            strictly below ``engage_slip_quanta`` — the gap is the
            hysteresis band.
        engage_dwell: consecutive hot wakes required before the ladder
            steps up one rung.
        release_dwell: consecutive cool wakes required before the ladder
            steps down one rung.  Larger than ``engage_dwell`` so the
            ladder is quick to protect and slow to trust recovery.
        stretch_factors: per-rung multiplier on the effective quantum
            (the agent sleeps ``stretch × Q`` between boundaries).
            Index 0 (NORMAL) must be 1 — schedule invisibility.
        postpone_boosts: per-rung multiplier applied to the measurement
            postponement intervals of Section 2.3 (``alps/algorithm.py``)
            — coarser batching means fewer reads per boundary.  Index 0
            must be 1.
        shed_fraction: fraction of the enforced set (lowest shares
            first) released to best-effort when the ladder reaches SHED.
        max_degraded_slip_quanta: invariant bound — the largest per-wake
            slip, in quanta, tolerated while the ladder is engaged
            (checked by the chaos invariant ``bounded_timer_slip``).
    """

    capacity: Optional[int] = None
    slip_alpha: float = 0.3
    engage_slip_quanta: float = 1.0
    release_slip_quanta: float = 0.25
    engage_dwell: int = 2
    release_dwell: int = 400
    stretch_factors: tuple[int, ...] = (1, 2, 4, 4)
    postpone_boosts: tuple[int, ...] = (1, 1, 2, 2)
    shed_fraction: float = 0.25
    max_degraded_slip_quanta: float = 32.0

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise SchedulerConfigError(
                f"capacity must be >= 1 or None, got {self.capacity}"
            )
        if not 0.0 < self.slip_alpha <= 1.0:
            raise SchedulerConfigError(
                f"slip_alpha must be in (0, 1], got {self.slip_alpha}"
            )
        if self.release_slip_quanta < 0:
            raise SchedulerConfigError(
                f"release_slip_quanta must be >= 0, got {self.release_slip_quanta}"
            )
        if self.engage_slip_quanta <= self.release_slip_quanta:
            raise SchedulerConfigError(
                "hysteresis band is empty: engage_slip_quanta "
                f"{self.engage_slip_quanta} <= release_slip_quanta "
                f"{self.release_slip_quanta}"
            )
        if self.engage_dwell < 1 or self.release_dwell < 1:
            raise SchedulerConfigError(
                "dwell counts must be >= 1, got "
                f"engage={self.engage_dwell} release={self.release_dwell}"
            )
        for name, seq in (
            ("stretch_factors", self.stretch_factors),
            ("postpone_boosts", self.postpone_boosts),
        ):
            if len(seq) != RUNG_COUNT:
                raise SchedulerConfigError(
                    f"{name} needs one entry per rung ({RUNG_COUNT}), got {seq}"
                )
            if any(v < 1 for v in seq):
                raise SchedulerConfigError(f"{name} entries must be >= 1, got {seq}")
            if seq[0] != 1:
                raise SchedulerConfigError(
                    f"{name}[NORMAL] must be 1 (schedule invisibility), got {seq[0]}"
                )
        if not 0.0 < self.shed_fraction <= 1.0:
            raise SchedulerConfigError(
                f"shed_fraction must be in (0, 1], got {self.shed_fraction}"
            )
        if self.max_degraded_slip_quanta <= 0:
            raise SchedulerConfigError(
                "max_degraded_slip_quanta must be positive, got "
                f"{self.max_degraded_slip_quanta}"
            )
