"""The graceful-degradation ladder.

Four rungs, climbed one at a time under sustained timer slip and walked
back down when slip clears:

====== ========= =================================================
rung   name      effect
====== ========= =================================================
0      NORMAL    full enforcement, schedule-identical to no guard
1      STRETCH   effective quantum stretched (agent wakes less often)
2      COARSEN   + measurement postponement intervals multiplied
3      SHED      + lowest-share tail resumed and released to best-effort
====== ========= =================================================

The top rung is not a single action: every time slip re-accumulates
while at SHED the ladder emits another +1 pulse and the driver sheds a
further quota, so the group converges on whatever size the host can
actually sustain instead of stopping one shed short.

Hysteresis has two parts: a dead band between the engage and release
slip thresholds (wakes there reset both dwell counters), and asymmetric
dwell counts (quick to protect, slow to trust recovery).  Both prevent
rung flapping when load sits near a threshold.
"""

from __future__ import annotations

import enum

from repro.overload.config import OverloadConfig


class Rung(enum.IntEnum):
    """Ladder positions, least to most degraded."""

    NORMAL = 0
    STRETCH = 1
    COARSEN = 2
    SHED = 3


class DegradationLadder:
    """Hysteresis state machine mapping smoothed slip to a rung."""

    __slots__ = (
        "config",
        "rung",
        "_hot",
        "_cool",
        "engagements",
        "steps_up",
        "steps_down",
        "max_rung_seen",
    )

    def __init__(self, config: OverloadConfig) -> None:
        self.config = config
        self.rung = Rung.NORMAL
        self._hot = 0
        self._cool = 0
        #: Times the ladder left NORMAL (distinct overload episodes).
        self.engagements = 0
        self.steps_up = 0
        self.steps_down = 0
        self.max_rung_seen = Rung.NORMAL

    def update(self, ewma_quanta: float) -> int:
        """Feed one wake's smoothed slip; returns the rung delta (-1/0/+1)."""
        cfg = self.config
        if ewma_quanta >= cfg.engage_slip_quanta:
            self._cool = 0
            self._hot += 1
            if self._hot >= cfg.engage_dwell:
                self._hot = 0
                if self.rung < Rung.SHED:
                    if self.rung == Rung.NORMAL:
                        self.engagements += 1
                    self.rung = Rung(self.rung + 1)
                    self.steps_up += 1
                    if self.rung > self.max_rung_seen:
                        self.max_rung_seen = self.rung
                # At SHED the rung cannot rise further, but the +1 pulse
                # still fires: the driver sheds another quota each time
                # slip re-accumulates, converging on a sustainable group.
                return 1
        elif ewma_quanta <= cfg.release_slip_quanta:
            self._hot = 0
            self._cool += 1
            if self._cool >= cfg.release_dwell and self.rung > Rung.NORMAL:
                self._cool = 0
                self.rung = Rung(self.rung - 1)
                self.steps_down += 1
                return -1
        else:
            # Dead band: demand consecutive samples on either side.
            self._hot = 0
            self._cool = 0
        return 0

    @property
    def stretch_factor(self) -> int:
        """Effective-quantum multiplier at the current rung."""
        return self.config.stretch_factors[self.rung]

    @property
    def postpone_boost(self) -> int:
        """Measurement-postponement multiplier at the current rung."""
        return self.config.postpone_boosts[self.rung]

    def stats(self) -> dict[str, int]:
        """Counters for obs export and the chaos report."""
        return {
            "rung": int(self.rung),
            "engagements": self.engagements,
            "steps_up": self.steps_up,
            "steps_down": self.steps_down,
            "max_rung_seen": int(self.max_rung_seen),
        }
