"""Overload protection: admission control, starvation detection, and a
graceful-degradation ladder (docs/overload.md).

The paper's Section 4.2 shows ALPS falling off a cliff once the agent's
own work exceeds its fair share: the kernel deprioritises the agent,
measurements arrive late, and enforcement collapses.  This package is
the robustness layer that notices the collapse beginning (timer slip),
bounds the measurement set (admission control), and degrades enforcement
deliberately — stretch the quantum, coarsen measurement batching, shed
the lowest-share tail to best-effort — instead of wedging, then walks
back to full enforcement when the pressure clears.

The layer is schedule-invisible while the ladder sits at NORMAL: a run
with a guard attached and no overload is byte-identical to a bare run
(tests/overload/test_overload_differential.py).
"""

from repro.overload.admission import AdmissionQueue
from repro.overload.config import OverloadConfig
from repro.overload.guard import OverloadGuard
from repro.overload.ladder import DegradationLadder, Rung
from repro.overload.slip import SlipMonitor

__all__ = [
    "AdmissionQueue",
    "DegradationLadder",
    "OverloadConfig",
    "OverloadGuard",
    "Rung",
    "SlipMonitor",
]
