"""The overload guard: one object a driver threads through its loop.

The guard composes the three protection parts — admission queue, slip
monitor, degradation ladder — and keeps the shed-set bookkeeping both
drivers need.  It is deliberately passive: it never touches the kernel,
the clock, or the subjects.  The driver feeds it wake slip, asks it for
the current stretch/boost/shed decisions, and performs the enactment
itself (sim: :class:`~repro.alps.agent.AlpsAgent`; live:
:class:`~repro.hostos.controller.HostAlps`).  That keeps the guard pure
and identically testable for both drivers.
"""

from __future__ import annotations

from typing import Mapping

from repro.overload.admission import AdmissionQueue
from repro.overload.config import OverloadConfig
from repro.overload.ladder import DegradationLadder, Rung
from repro.overload.slip import SlipMonitor


class OverloadGuard:
    """Admission + slip + ladder, with shed bookkeeping."""

    __slots__ = (
        "config",
        "admission",
        "slip",
        "ladder",
        "_shed",
        "sheds",
        "readmits",
        "max_degraded_slip_quanta",
        "degraded_wakes",
    )

    def __init__(self, config: OverloadConfig | None = None) -> None:
        self.config = config if config is not None else OverloadConfig()
        self.admission = AdmissionQueue(self.config.capacity)
        self.slip = SlipMonitor(self.config.slip_alpha)
        self.ladder = DegradationLadder(self.config)
        #: Sids currently released to best-effort, in shed order.
        self._shed: list[int] = []
        self.sheds = 0
        self.readmits = 0
        #: Largest per-wake slip (in quanta) seen while the ladder was
        #: engaged — the ``bounded_timer_slip`` invariant's input.
        self.max_degraded_slip_quanta = 0.0
        self.degraded_wakes = 0

    # ------------------------------------------------------------------
    # Wake-time signal path
    # ------------------------------------------------------------------

    def observe_wake(self, slip_us: int, quantum_us: int) -> int:
        """Feed one wake's timer slip; returns the ladder delta (-1/0/+1).

        ``slip_us`` is actual minus scheduled delivery time; ``quantum_us``
        is the base (unstretched) quantum so slip units stay comparable
        across rungs.
        """
        ewma = self.slip.observe(slip_us, quantum_us)
        if self.ladder.rung > Rung.NORMAL:
            self.degraded_wakes += 1
            if self.slip.last_quanta > self.max_degraded_slip_quanta:
                self.max_degraded_slip_quanta = self.slip.last_quanta
        delta = self.ladder.update(ewma)
        if delta > 0 and self.ladder.rung >= Rung.SHED:
            # The driver sheds a quota during this same wake, changing
            # the population the EWMA was describing; start the evidence
            # fresh so each further shed round needs a new episode of
            # slip rather than riding the decaying tail of the last one.
            self.slip.reset_ewma()
        return delta

    # ------------------------------------------------------------------
    # Current ladder effects
    # ------------------------------------------------------------------

    @property
    def rung(self) -> Rung:
        return self.ladder.rung

    @property
    def degraded(self) -> bool:
        return self.ladder.rung > Rung.NORMAL

    @property
    def stretch_factor(self) -> int:
        return self.ladder.stretch_factor

    @property
    def postpone_boost(self) -> int:
        return self.ladder.postpone_boost

    @property
    def admission_paused(self) -> bool:
        """Admissions hold while shedding — draining the queue into a
        group that is actively releasing members would thrash."""
        return self.ladder.rung >= Rung.SHED

    # ------------------------------------------------------------------
    # Shed bookkeeping
    # ------------------------------------------------------------------

    def shed_quota(self, active: int) -> int:
        """How many members to shed on entering SHED (at least one,
        never the whole group)."""
        if active <= 1:
            return 0
        quota = int(active * self.config.shed_fraction)
        if quota < 1:
            quota = 1
        if quota >= active:
            quota = active - 1
        return quota

    def select_shed(self, shares: Mapping[int, int], count: int) -> list[int]:
        """Pick ``count`` sids to shed: lowest share first, then lowest
        sid — shedding the tail loses the least entitlement."""
        if count <= 0:
            return []
        ranked = sorted(shares, key=lambda sid: (shares[sid], sid))
        return ranked[:count]

    def note_shed(self, sid: int) -> None:
        self._shed.append(sid)
        self.sheds += 1

    def note_readmitted(self, sid: int) -> None:
        self._shed.remove(sid)
        self.readmits += 1

    def note_departed(self, sid: int) -> None:
        """A shed member died while best-effort; drop it from the set."""
        if sid in self._shed:
            self._shed.remove(sid)

    @property
    def shed_sids(self) -> tuple[int, ...]:
        """Currently-shed sids, oldest shed first."""
        return tuple(self._shed)

    @property
    def shed_outstanding(self) -> int:
        return len(self._shed)

    # ------------------------------------------------------------------
    # Invariant inputs / reporting
    # ------------------------------------------------------------------

    @property
    def slip_bound_ok(self) -> bool:
        """Whether degraded-mode slip stayed within the configured bound."""
        return self.max_degraded_slip_quanta <= self.config.max_degraded_slip_quanta

    @property
    def fully_recovered(self) -> bool:
        """NORMAL rung with no members still shed — full enforcement."""
        return self.ladder.rung == Rung.NORMAL and not self._shed

    def stats(self) -> dict[str, float]:
        """Merged counters for obs export, ``repro top`` and the chaos
        report."""
        out: dict[str, float] = {}
        for prefix, source in (
            ("admission.", self.admission.stats()),
            ("slip.", self.slip.stats()),
            ("ladder.", self.ladder.stats()),
        ):
            for key, value in source.items():
                out[prefix + key] = float(value)
        out["sheds"] = float(self.sheds)
        out["readmits"] = float(self.readmits)
        out["shed_outstanding"] = float(self.shed_outstanding)
        out["degraded_wakes"] = float(self.degraded_wakes)
        out["max_degraded_slip_quanta"] = self.max_degraded_slip_quanta
        return out
