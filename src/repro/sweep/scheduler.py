"""The unified sweep scheduler: cache-aware, pooled, ordered.

One code path replaces the ad-hoc per-experiment loops: a
:class:`SweepSpec` names the cells (JSON-canonicalizable parameter
mappings) and a picklable module-level worker; :func:`run_sweep`
executes it with

* **cache-aware dispatch** — each cell's content-addressed key is
  checked first, and hits short-circuit before anything is pickled to
  a worker process;
* **process-pool execution with ordered results** — misses fan out
  over a :class:`~concurrent.futures.ProcessPoolExecutor`; results are
  delivered (and streamed via ``on_result``) in input order regardless
  of completion order;
* **per-cell timeout and retry** — transient failures (the
  :class:`~repro.errors.TransientReadError` family from the fault
  taxonomy) and timeouts are retried up to ``retries`` times; anything
  else raises a :class:`~repro.errors.SweepCellError` naming the exact
  failing cell configuration;
* **graceful interruption** — on ``KeyboardInterrupt`` the pool is
  shut down without waiting, results computed so far are already in
  the cache, stats are flushed, and the interrupt propagates;
* **serial degradation** — one worker, one cell, an unpicklable
  worker, or a broken pool all fall back to in-process execution with
  identical semantics.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional, Sequence

from repro.errors import (
    SweepCellError,
    SweepCellTimeoutError,
    TransientReadError,
)
from repro.sweep.cache import CacheStats, SweepCache, cache_key
from repro.sweep.fingerprint import DEFAULT_MODULES, code_fingerprint

#: Worker exceptions worth retrying (the transient half of the fault
#: taxonomy); everything else fails the cell immediately.
RETRYABLE_EXCEPTIONS: tuple[type[BaseException], ...] = (TransientReadError,)


def default_sweep_workers() -> int:
    """Worker count: ``$REPRO_SWEEP_WORKERS`` or CPUs minus one.

    (Deliberately not imported from :mod:`repro.experiments.parallel`,
    whose package init pulls in the experiment modules that import this
    package.)
    """
    env = os.environ.get("REPRO_SWEEP_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"ignoring non-integer REPRO_SWEEP_WORKERS={env!r}",
                RuntimeWarning,
                stacklevel=2,
            )
    return max(1, (os.cpu_count() or 1) - 1)


@dataclass(slots=True, frozen=True)
class SweepCell:
    """One unit of sweep work: an experiment id plus its parameters.

    ``params`` must be JSON-canonicalizable (see
    :func:`repro.sweep.cache.canonicalize`) and picklable; it is both
    the worker's argument and the cell's cache identity.
    """

    experiment: str
    params: Mapping[str, Any]


@dataclass(slots=True)
class SweepSpec:
    """A declarative sweep: cells plus the worker that computes one.

    ``worker`` must be a module-level callable taking one cell's
    ``params`` mapping and returning a JSON-safe payload (so results
    can cross process boundaries and live in the cache byte-stably).
    ``cacheable=False`` opts the whole sweep out of the cache (live
    host measurements, wall-clock benchmarks).
    """

    worker: Callable[[Mapping[str, Any]], Any]
    cells: Sequence[SweepCell]
    fingerprint_modules: Sequence[str] = DEFAULT_MODULES
    cacheable: bool = True


@dataclass(slots=True)
class CellResult:
    """One cell's outcome: the payload plus how it was obtained."""

    cell: SweepCell
    value: Any
    cached: bool
    attempts: int
    key: Optional[str]


@dataclass(slots=True)
class SweepOutcome:
    """Ordered results of one sweep plus its cache/dispatch census."""

    results: list[CellResult] = field(default_factory=list)
    stats: CacheStats = field(default_factory=CacheStats)
    workers: int = 1

    @property
    def values(self) -> list[Any]:
        """Payloads in cell order."""
        return [r.value for r in self.results]

    def footer(self) -> str:
        """One-line summary for CLI command footers."""
        total = len(self.results)
        cached = self.stats.hits
        line = (
            f"[sweep: {total} cells, {cached} cache hits, "
            f"{self.stats.misses} misses"
        )
        if self.stats.invalidations:
            line += f", {self.stats.invalidations} invalidated"
        return line + f", {self.workers} worker(s)]"


def _picklable(obj: Any) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def _run_serial(
    spec: SweepSpec, cell: SweepCell, retries: int
) -> tuple[Any, int]:
    """Run one cell inline with the retry policy (no timeout: a serial
    worker cannot be preempted)."""
    attempts = 0
    while True:
        attempts += 1
        try:
            return spec.worker(cell.params), attempts
        except RETRYABLE_EXCEPTIONS as exc:
            if attempts > retries:
                raise SweepCellError(
                    cell.experiment, cell.params, repr(exc), attempts=attempts
                ) from exc
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:
            raise SweepCellError(
                cell.experiment, cell.params, repr(exc), attempts=attempts
            ) from exc


def run_sweep(
    spec: SweepSpec,
    *,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    timeout_s: Optional[float] = None,
    retries: int = 1,
    on_result: Optional[Callable[[CellResult], None]] = None,
) -> SweepOutcome:
    """Execute ``spec`` and return ordered results (see module docstring).

    ``cache=None`` disables caching.  ``timeout_s`` bounds, per cell,
    how long the coordinator waits once that cell reaches the head of
    the in-order collection (pool mode only); a timed-out attempt is
    resubmitted up to ``retries`` times, then raises
    :class:`~repro.errors.SweepCellTimeoutError`.  ``on_result`` is
    called in strict cell order as results become deliverable.
    """
    nworkers = default_sweep_workers() if workers is None else max(1, workers)
    outcome = SweepOutcome(workers=nworkers)
    use_cache = cache is not None and spec.cacheable
    fingerprint = (
        code_fingerprint(tuple(spec.fingerprint_modules)) if use_cache else ""
    )

    n = len(spec.cells)
    slots: list[Optional[CellResult]] = [None] * n
    emitted = 0

    def emit_ready() -> None:
        nonlocal emitted
        while emitted < n and slots[emitted] is not None:
            if on_result is not None:
                on_result(slots[emitted])
            emitted += 1

    before = CacheStats(**cache.stats.as_dict()) if use_cache else CacheStats()

    # -- cache probe: hits never reach a worker ----------------------
    pending: list[tuple[int, SweepCell, Optional[str]]] = []
    for idx, cell in enumerate(spec.cells):
        key: Optional[str] = None
        if use_cache:
            key = cache_key(cell.experiment, cell.params, fingerprint)
            hit, payload = cache.get(key)
            if hit:
                slots[idx] = CellResult(
                    cell=cell, value=payload, cached=True, attempts=0, key=key
                )
                continue
        pending.append((idx, cell, key))

    def store(idx: int, cell: SweepCell, key: Optional[str], value: Any,
              attempts: int) -> None:
        if use_cache and key is not None:
            cache.put(
                key,
                value,
                experiment=cell.experiment,
                params=cell.params,
                fingerprint=fingerprint,
            )
        slots[idx] = CellResult(
            cell=cell, value=value, cached=False, attempts=attempts, key=key
        )

    pool_ok = (
        nworkers > 1
        and len(pending) > 1
        and _picklable(spec.worker)
        and all(_picklable(cell.params) for _i, cell, _k in pending)
    )
    if nworkers > 1 and len(pending) > 1 and not pool_ok:
        warnings.warn(
            "sweep worker or cell params are not picklable; "
            "running the sweep serially",
            RuntimeWarning,
            stacklevel=2,
        )

    try:
        if not pool_ok:
            for idx, cell, key in pending:
                emit_ready()
                value, attempts = _run_serial(spec, cell, retries)
                store(idx, cell, key, value, attempts)
        else:
            _run_pooled(
                spec, pending, nworkers, timeout_s, retries, store, emit_ready
            )
    finally:
        if use_cache:
            cache.flush_stats()
            outcome.stats = CacheStats(**cache.stats.as_dict())
            for k in ("hits", "misses", "stores", "invalidations"):
                setattr(
                    outcome.stats, k,
                    getattr(outcome.stats, k) - getattr(before, k),
                )
        else:
            outcome.stats.misses = sum(
                1 for r in slots if r is not None and not r.cached
            )

    emit_ready()
    outcome.results = [r for r in slots if r is not None]
    return outcome


def _run_pooled(
    spec: SweepSpec,
    pending: Sequence[tuple[int, SweepCell, Optional[str]]],
    nworkers: int,
    timeout_s: Optional[float],
    retries: int,
    store: Callable[[int, SweepCell, Optional[str], Any, int], None],
    emit_ready: Callable[[], None],
) -> None:
    """Fan ``pending`` out over a process pool, collecting in order.

    Falls back to serial execution for the cells still outstanding if
    the pool breaks (a worker died hard); drains gracefully on
    KeyboardInterrupt by cancelling everything not yet started.
    """
    executor = ProcessPoolExecutor(max_workers=min(nworkers, len(pending)))
    try:
        futures = {
            idx: executor.submit(spec.worker, cell.params)
            for idx, cell, _key in pending
        }
        attempts = {idx: 1 for idx, _c, _k in pending}
        serial_rest: Optional[int] = None  # index into pending on pool break
        for pos, (idx, cell, key) in enumerate(pending):
            if serial_rest is not None:
                break
            while True:
                try:
                    value = futures[idx].result(timeout=timeout_s)
                    store(idx, cell, key, value, attempts[idx])
                    emit_ready()
                    break
                except FutureTimeout:
                    if attempts[idx] > retries:
                        raise SweepCellTimeoutError(
                            cell.experiment,
                            cell.params,
                            f"timed out after {timeout_s} s",
                            attempts=attempts[idx],
                        ) from None
                    futures[idx].cancel()
                    attempts[idx] += 1
                    futures[idx] = executor.submit(spec.worker, cell.params)
                except BrokenProcessPool:
                    warnings.warn(
                        "sweep process pool broke; finishing the remaining "
                        "cells serially",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                    serial_rest = pos
                    break
                except RETRYABLE_EXCEPTIONS as exc:
                    if attempts[idx] > retries:
                        raise SweepCellError(
                            cell.experiment,
                            cell.params,
                            repr(exc),
                            attempts=attempts[idx],
                        ) from exc
                    attempts[idx] += 1
                    futures[idx] = executor.submit(spec.worker, cell.params)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    raise SweepCellError(
                        cell.experiment,
                        cell.params,
                        repr(exc),
                        attempts=attempts[idx],
                    ) from exc
        if serial_rest is not None:
            for idx, cell, key in pending[serial_rest:]:
                value, n_attempts = _run_serial(spec, cell, retries)
                store(idx, cell, key, value, n_attempts)
                emit_ready()
    except (KeyboardInterrupt, SystemExit):
        # Graceful drain: everything already computed is stored (and,
        # when caching, persisted); drop what hasn't started.
        executor.shutdown(wait=False, cancel_futures=True)
        raise
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
