"""Memoized, parallel execution of experiment sweeps.

The paper's results are a matrix of independent simulation cells
(model × N × quantum × seed); every cell is deterministic in its
configuration, so recomputing one whose inputs have not changed is
wasted work.  This package applies the memoized task-graph pattern of
batch experiment managers (experimaestro, accasim — see PAPERS.md) to
that matrix:

* :mod:`repro.sweep.cache` — a **content-addressed result cache**.  A
  cell's key is the SHA-256 of its canonicalized configuration
  (experiment id + parameters) plus a fingerprint of the source code
  it runs; results are JSON blobs under ``~/.cache/repro-sweep``
  (override with ``REPRO_SWEEP_CACHE``).  Any code or config change
  moves the key, so stale results are structurally unreachable.
* :mod:`repro.sweep.fingerprint` — the code fingerprint: a hash over
  the source files of the modules a cell imports.
* :mod:`repro.sweep.scheduler` — a **unified sweep scheduler**:
  declarative :class:`SweepSpec` (cells + a picklable worker), process
  pool execution with ordered streaming results, per-cell timeout and
  retry, graceful ``KeyboardInterrupt`` draining, and cache-aware
  dispatch (hits short-circuit before anything is pickled to a
  worker).

Every ``repro run``/``repro report`` experiment path dispatches
through this package, which is what makes a warm ``repro report``
incremental.  Cache hit/miss totals are exported through the
:mod:`repro.obs` metrics registry and shown in each CLI command's
footer.
"""

from repro.sweep.cache import (
    CacheStats,
    SweepCache,
    cache_key,
    canonicalize,
    canonical_json,
    default_cache_root,
    load_persistent_stats,
)
from repro.sweep.fingerprint import (
    clear_fingerprint_cache,
    code_fingerprint,
)
from repro.sweep.scheduler import (
    CellResult,
    SweepCell,
    SweepOutcome,
    SweepSpec,
    default_sweep_workers,
    run_sweep,
)

__all__ = [
    "CacheStats",
    "CellResult",
    "SweepCache",
    "SweepCell",
    "SweepOutcome",
    "SweepSpec",
    "cache_key",
    "canonical_json",
    "canonicalize",
    "clear_fingerprint_cache",
    "code_fingerprint",
    "default_cache_root",
    "default_sweep_workers",
    "load_persistent_stats",
    "run_sweep",
]
