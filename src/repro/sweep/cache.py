"""Content-addressed result cache for sweep cells.

A cell's cache key is the SHA-256 of its canonicalized configuration —
experiment id plus every parameter that shapes the result (model, N,
quantum, cycles, seed, fault plan, kernel/ALPS config) — combined with
the :mod:`repro.sweep.fingerprint` of the code it runs.  Equal
configurations therefore hash identically across processes and dict
orderings, and *any* change to a parameter or to library source moves
the key, so a stale result can never be served.

Results are stored as JSON blobs under ``~/.cache/repro-sweep``
(override with the ``REPRO_SWEEP_CACHE`` environment variable), sharded
by key prefix.  A per-configuration index maps the fingerprint-free
"logical" key to the current full key; storing a result whose logical
key already points at a different blob counts as an *invalidation* and
deletes the superseded blob, so the cache does not accumulate one copy
per historical code revision.

Hit/miss/store/invalidation counters land in a
:class:`~repro.obs.registry.MetricsRegistry` (the module-global
:data:`SWEEP_METRICS` by default); ``repro obs export`` folds both the
in-process counters and the cache directory's persistent totals into
its output via :func:`attach_sweep_metrics`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.obs.registry import MetricsRegistry

#: Bump when the blob layout changes; part of every key.
CACHE_SCHEMA_VERSION = 1

#: Default in-process registry receiving cache counters.
SWEEP_METRICS = MetricsRegistry()

_STATS_FILE = "stats.json"
_STATS_KEYS = ("hits", "misses", "stores", "invalidations")


def default_cache_root() -> Path:
    """Cache directory: ``$REPRO_SWEEP_CACHE`` or ``~/.cache/repro-sweep``."""
    env = os.environ.get("REPRO_SWEEP_CACHE")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro-sweep"


# ---------------------------------------------------------------------------
# Canonicalization
# ---------------------------------------------------------------------------
def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-safe form with a stable representation.

    Handles the types sweep configurations are made of: dataclasses
    (tagged with their qualified class name, so two classes with equal
    fields do not collide), enums, numpy scalars, tuples/lists/sets,
    and nested mappings.  Mapping keys are stringified; ordering is
    irrelevant because :func:`canonical_json` sorts keys.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        return obj
    if isinstance(obj, enum.Enum):
        return {
            "__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "name": obj.name,
        }
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: canonicalize(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, Mapping):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonicalize(v) for v in obj)
    if isinstance(obj, bytes):
        return {"__bytes__": obj.hex()}
    # numpy scalars (and anything else exposing .item()) — convert to
    # the exact Python equivalent rather than stringifying.
    item = getattr(obj, "item", None)
    if callable(item):
        return canonicalize(item())
    raise TypeError(
        f"cannot canonicalize {type(obj).__qualname__!r} for a sweep cache key"
    )


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, exact floats."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


def logical_key(experiment: str, params: Mapping[str, Any]) -> str:
    """Fingerprint-free key: identifies a configuration across code
    revisions (used to count invalidations and drop superseded blobs)."""
    return _digest(
        canonical_json(
            {"schema": CACHE_SCHEMA_VERSION, "experiment": experiment,
             "params": params}
        )
    )


def cache_key(
    experiment: str, params: Mapping[str, Any], fingerprint: str
) -> str:
    """Full content-addressed key: configuration + code fingerprint."""
    return _digest(
        canonical_json(
            {"schema": CACHE_SCHEMA_VERSION, "experiment": experiment,
             "params": params, "code": fingerprint}
        )
    )


# ---------------------------------------------------------------------------
# Stats
# ---------------------------------------------------------------------------
@dataclass(slots=True)
class CacheStats:
    """Counters of one cache instance (or one sweep's share of them)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict[str, int]:
        return {k: getattr(self, k) for k in _STATS_KEYS}

    def add(self, other: "CacheStats") -> None:
        for k in _STATS_KEYS:
            setattr(self, k, getattr(self, k) + getattr(other, k))


def load_persistent_stats(root: Optional[Path | str] = None) -> CacheStats:
    """Cumulative lifetime counters persisted in the cache directory."""
    path = Path(root) if root is not None else default_cache_root()
    try:
        raw = json.loads((path / _STATS_FILE).read_text())
    except (OSError, ValueError):
        return CacheStats()
    return CacheStats(**{k: int(raw.get(k, 0)) for k in _STATS_KEYS})


def attach_sweep_metrics(
    registry: MetricsRegistry, *, root: Optional[Path | str] = None
) -> None:
    """Export sweep-cache counters into ``registry``.

    In-process counters (from :data:`SWEEP_METRICS`) become
    ``repro_sweep_cache_*_total`` counters; the cache directory's
    persistent totals become ``repro_sweep_cache_*_lifetime`` gauges,
    so ``repro obs export`` shows cache behavior even when the sweep
    ran in an earlier process.
    """
    for name in _STATS_KEYS:
        counter = SWEEP_METRICS.get(f"repro_sweep_cache_{name}_total")
        value = counter.value if counter is not None else 0
        registry.counter(f"repro_sweep_cache_{name}_total").inc(value)
    lifetime = load_persistent_stats(root)
    for name in _STATS_KEYS:
        registry.gauge(f"repro_sweep_cache_{name}_lifetime").set(
            getattr(lifetime, name)
        )


# ---------------------------------------------------------------------------
# The cache
# ---------------------------------------------------------------------------
class SweepCache:
    """Content-addressed JSON blob store for sweep cell results.

    All I/O happens in the coordinating process (workers never touch
    the cache), so a run needs no locking; cross-run writes are atomic
    (temp file + ``os.replace``).  A corrupt or unreadable blob is
    treated as a miss and removed.
    """

    def __init__(
        self,
        root: Optional[Path | str] = None,
        *,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.registry = SWEEP_METRICS if registry is None else registry
        self.stats = CacheStats()
        #: Deltas not yet merged into the on-disk stats file.
        self._unflushed = CacheStats()

    # -- paths -------------------------------------------------------
    def _blob_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _index_path(self, logical: str) -> Path:
        return self.root / "index" / logical[:2] / f"{logical}.json"

    # -- counting ----------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        setattr(self.stats, name, getattr(self.stats, name) + n)
        setattr(self._unflushed, name, getattr(self._unflushed, name) + n)
        self.registry.counter(f"repro_sweep_cache_{name}_total").inc(n)

    # -- blob I/O ----------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, text: str) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up ``key``; returns ``(hit, payload)``."""
        path = self._blob_path(key)
        try:
            blob = json.loads(path.read_text())
            payload = blob["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            if path.exists():  # unreadable blob: drop it, recompute
                try:
                    path.unlink()
                except OSError:
                    pass
            self._count("misses")
            return False, None
        self._count("hits")
        return True, payload

    def put(
        self,
        key: str,
        payload: Any,
        *,
        experiment: str,
        params: Mapping[str, Any],
        fingerprint: str,
    ) -> None:
        """Store ``payload`` under ``key`` and maintain the logical index."""
        blob = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": key,
            "experiment": experiment,
            "params": canonicalize(params),
            "fingerprint": fingerprint,
            "created": time.time(),
            "payload": payload,
        }
        self._write_atomic(self._blob_path(key), json.dumps(blob, sort_keys=True))
        self._count("stores")

        logical = logical_key(experiment, params)
        index_path = self._index_path(logical)
        try:
            previous = json.loads(index_path.read_text())["key"]
        except (OSError, ValueError, KeyError):
            previous = None
        if previous is not None and previous != key:
            # Same configuration, different code fingerprint: the old
            # result is invalidated, not merely shadowed.
            self._count("invalidations")
            try:
                self._blob_path(previous).unlink()
            except OSError:
                pass
        if previous != key:
            self._write_atomic(index_path, json.dumps({"key": key}))

    # -- stats persistence ------------------------------------------
    def flush_stats(self) -> None:
        """Merge counters accumulated since the last flush into
        ``<root>/stats.json`` (cumulative across runs)."""
        if not any(getattr(self._unflushed, k) for k in _STATS_KEYS):
            return
        total = load_persistent_stats(self.root)
        total.add(self._unflushed)
        self._write_atomic(
            self.root / _STATS_FILE, json.dumps(total.as_dict(), sort_keys=True)
        )
        self._unflushed = CacheStats()


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheStats",
    "SWEEP_METRICS",
    "SweepCache",
    "attach_sweep_metrics",
    "cache_key",
    "canonical_json",
    "canonicalize",
    "default_cache_root",
    "load_persistent_stats",
    "logical_key",
]
