"""Code fingerprints: hash the source a sweep cell actually runs.

A content-addressed result cache is only sound if a *code* change
invalidates entries the same way a *config* change does.  The
fingerprint of a cell is the SHA-256 over the source bytes of the
modules its worker imports — by default the whole ``repro`` package,
which is coarse (any library edit invalidates every cell) but safe and
cheap: the tree is ~100 small files, hashed once per process.

Packages are walked recursively; compiled/namespace modules without
source files contribute their name only (their behavior is pinned by
the interpreter, not by repo edits).  Results are memoized per module
set; :func:`clear_fingerprint_cache` resets the memo (tests that edit
module sources on disk need it).
"""

from __future__ import annotations

import hashlib
import importlib
from pathlib import Path
from typing import Sequence

#: Memo of computed fingerprints, keyed by the sorted module-name tuple.
_memo: dict[tuple[str, ...], str] = {}

#: The default module set: everything a simulation cell can import.
DEFAULT_MODULES: tuple[str, ...] = ("repro",)


def clear_fingerprint_cache() -> None:
    """Drop memoized fingerprints (needed after editing sources on disk)."""
    _memo.clear()


def _source_files(module_name: str) -> list[Path]:
    """Source files backing ``module_name`` (all of them for a package)."""
    module = importlib.import_module(module_name)
    origin = getattr(module, "__file__", None)
    if origin is None:
        return []
    path = Path(origin)
    if path.name == "__init__.py":
        return sorted(p for p in path.parent.rglob("*.py"))
    return [path]


def code_fingerprint(modules: Sequence[str] = DEFAULT_MODULES) -> str:
    """SHA-256 fingerprint of the source of ``modules`` (memoized).

    The digest covers, for each module, every backing ``.py`` file's
    repo-relative name and bytes, so renames, edits, additions, and
    deletions all move the fingerprint.
    """
    key = tuple(sorted(set(modules)))
    cached = _memo.get(key)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    for name in key:
        h.update(name.encode())
        h.update(b"\x00")
        files = _source_files(name)
        if not files:
            continue
        root = files[0].parent
        for path in files:
            try:
                rel = path.relative_to(root)
            except ValueError:  # pragma: no cover - single-file module
                rel = Path(path.name)
            h.update(str(rel).encode())
            h.update(b"\x00")
            h.update(path.read_bytes())
            h.update(b"\x00")
    digest = h.hexdigest()
    _memo[key] = digest
    return digest
