"""Analytic breakdown-threshold model (paper Section 4.2).

ALPS breaks down when the CPU it needs per quantum exceeds the fair
share the kernel will grant it: overhead ``U_Q(N)`` (in %) meets
``100/(N+1)``.  With a linear fit ``U_Q(N) = a·N + b`` the threshold
solves ``a·N² + (a+b)·N + (b - 100) = 0``.
"""

from __future__ import annotations

import math


def predicted_threshold(slope: float, intercept: float) -> float:
    """Solve ``slope·N + intercept = 100/(N+1)`` for the positive root.

    Arguments are in percent (as in the paper's fits, e.g.
    ``U10(N) = .0639·N + .0604`` → threshold ≈ 39).
    """
    a = slope
    b = intercept
    if a <= 0:
        raise ValueError(f"slope must be positive, got {a}")
    # a·N² + (a+b)·N + (b-100) = 0
    disc = (a + b) ** 2 - 4 * a * (b - 100.0)
    if disc < 0:
        raise ValueError("no real threshold for these coefficients")
    root = (-(a + b) + math.sqrt(disc)) / (2 * a)
    return root
