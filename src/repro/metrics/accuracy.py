"""Accuracy metrics (paper Section 3.1).

The paper summarises accuracy as: per cycle, compute the RMS of the
per-process relative errors (actual vs. ideal CPU time consumed); then
average that RMS over all cycles of the experiment.
"""

from __future__ import annotations

import numpy as np

from repro.alps.instrumentation import CycleLog


def per_subject_fractions(log: CycleLog, *, skip: int = 0) -> dict[int, float]:
    """Fraction of total CPU each subject received over the logged cycles."""
    totals: dict[int, int] = {}
    for rec in log.skip(skip):
        for sid, consumed in rec.consumed.items():
            totals[sid] = totals.get(sid, 0) + consumed
    grand = sum(totals.values())
    if grand == 0:
        return {sid: 0.0 for sid in totals}
    return {sid: consumed / grand for sid, consumed in totals.items()}


def cycle_rms_relative_errors(
    log: CycleLog,
    *,
    skip: int = 0,
    ideal: str = "proportional",
) -> np.ndarray:
    """Per-cycle RMS relative error (%) across subjects.

    ``ideal`` selects the reference allocation:

    * ``"proportional"`` (default) — subject *i*'s ideal is
      ``share_i / S`` of the CPU time the group actually consumed in
      the cycle.  This matches the paper's framing of ALPS as a
      proportional-share scheduler of *whatever CPU the kernel grants*.
    * ``"entitlement"`` — the ideal is the subject's nominal
      entitlement ``share_i · Q``; overshoot of the cycle then counts
      as error.
    """
    if ideal not in ("proportional", "entitlement"):
        raise ValueError(f"unknown ideal mode {ideal!r}")
    out: list[float] = []
    for rec in log.skip(skip):
        shares = rec.shares
        total_share = sum(shares.values())
        if total_share == 0:
            continue
        errors: list[float] = []
        total_consumed = rec.total_consumed
        for sid, share in shares.items():
            actual = rec.consumed.get(sid, 0)
            if ideal == "proportional":
                target = total_consumed * share / total_share
            else:
                target = share * rec.quantum_us
            if target <= 0:
                continue
            errors.append((actual - target) / target)
        if errors:
            arr = np.asarray(errors)
            out.append(float(np.sqrt(np.mean(arr * arr))) * 100.0)
    return np.asarray(out)


def mean_rms_relative_error(
    log: CycleLog, *, skip: int = 0, ideal: str = "proportional"
) -> float:
    """Mean over cycles of the per-cycle RMS relative error (%)."""
    per_cycle = cycle_rms_relative_errors(log, skip=skip, ideal=ideal)
    if per_cycle.size == 0:
        return float("nan")
    return float(per_cycle.mean())
