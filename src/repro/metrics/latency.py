"""Response-latency summaries for the web-server experiments.

The paper reports only throughput for Section 5; latency percentiles
are the natural companion metric (a shared host that reapportions CPU
also reshapes per-site response times), so the harness records them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(slots=True, frozen=True)
class LatencySummary:
    """Percentile summary of response latencies (µs)."""

    count: int
    mean_us: float
    p50_us: float
    p90_us: float
    p99_us: float

    def scaled_ms(self) -> dict[str, float]:
        """The summary in milliseconds, for display."""
        return {
            "mean_ms": self.mean_us / 1000,
            "p50_ms": self.p50_us / 1000,
            "p90_ms": self.p90_us / 1000,
            "p99_ms": self.p99_us / 1000,
        }


def summarize_latencies(
    responses: Sequence[tuple[int, int]],
    *,
    window: tuple[int, int] | None = None,
) -> LatencySummary:
    """Summarise ``(completed_at, latency_us)`` pairs.

    ``window`` restricts to completions inside ``[lo, hi)`` so warm-up
    can be excluded.
    """
    if window is not None:
        lo, hi = window
        lat = np.array([l for t, l in responses if lo <= t < hi], dtype=float)
    else:
        lat = np.array([l for _t, l in responses], dtype=float)
    if lat.size == 0:
        return LatencySummary(0, float("nan"), float("nan"), float("nan"), float("nan"))
    return LatencySummary(
        count=int(lat.size),
        mean_us=float(lat.mean()),
        p50_us=float(np.percentile(lat, 50)),
        p90_us=float(np.percentile(lat, 90)),
        p99_us=float(np.percentile(lat, 99)),
    )
