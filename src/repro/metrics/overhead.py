"""Overhead accounting and the Section 4.2 linear overhead fits."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def overhead_percent(alps_cpu_us: int, wall_us: int) -> float:
    """ALPS CPU time over wall time, in percent (the paper's metric)."""
    if wall_us <= 0:
        raise ValueError(f"wall time must be positive, got {wall_us}")
    return 100.0 * alps_cpu_us / wall_us


@dataclass(slots=True, frozen=True)
class OverheadFit:
    """Linear fit ``U(N) = slope·N + intercept`` of overhead vs. N (%)."""

    slope: float
    intercept: float
    r_squared: float

    def __call__(self, n: float) -> float:
        """Predicted overhead (%) for ``n`` processes."""
        return self.slope * n + self.intercept


def fit_overhead_line(
    ns: Sequence[float], overheads_percent: Sequence[float]
) -> OverheadFit:
    """Least-squares fit of overhead (%) against process count.

    Used on the initial (pre-breakdown) region of the scalability sweep
    to recover the paper's ``U_Q(N)`` lines.
    """
    x = np.asarray(ns, dtype=float)
    y = np.asarray(overheads_percent, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need at least two (N, overhead) points")
    slope, intercept = np.polyfit(x, y, 1)
    pred = slope * x + intercept
    ss_res = float(np.sum((y - pred) ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return OverheadFit(slope=float(slope), intercept=float(intercept), r_squared=r2)
