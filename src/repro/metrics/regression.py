"""Slope fits of cumulative CPU consumption (Section 4.1 / Table 3).

The paper calculates, per phase, the slope of each process's cumulative
CPU consumption against real time via linear regression, and derives
the fraction of its group's CPU each process received.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np


def slope(times_us: Sequence[int], values_us: Sequence[int]) -> float:
    """Least-squares slope of ``values`` against ``times``."""
    t = np.asarray(times_us, dtype=float)
    v = np.asarray(values_us, dtype=float)
    if t.size != v.size or t.size < 2:
        raise ValueError("need at least two points")
    m, _b = np.polyfit(t, v, 1)
    return float(m)


def phase_fractions(
    series: Mapping[int, tuple[Sequence[int], Sequence[int]]],
    window: tuple[int, int],
) -> dict[int, float]:
    """Per-subject fraction of group CPU within a time window.

    ``series`` maps subject id to ``(times, cumulative_cpu)`` samples.
    For each subject, points inside ``window`` are fit with a line; the
    fractions are the normalised slopes.  Subjects with fewer than two
    points in the window are excluded (they were not running).
    """
    lo, hi = window
    slopes: dict[int, float] = {}
    for sid, (times, values) in series.items():
        t = np.asarray(times, dtype=float)
        v = np.asarray(values, dtype=float)
        mask = (t >= lo) & (t <= hi)
        if int(mask.sum()) < 2:
            continue
        m, _b = np.polyfit(t[mask], v[mask], 1)
        slopes[sid] = max(0.0, float(m))
    total = sum(slopes.values())
    if total <= 0:
        return {sid: 0.0 for sid in slopes}
    return {sid: m / total for sid, m in slopes.items()}
