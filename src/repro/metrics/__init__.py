"""Accuracy, overhead, and scalability metrics from the paper.

* :mod:`~repro.metrics.accuracy` — per-cycle RMS relative error and its
  mean (Sections 3.1, 4.2).
* :mod:`~repro.metrics.overhead` — ALPS CPU / wall-time overhead and
  the linear overhead fits of Section 4.2.
* :mod:`~repro.metrics.regression` — cumulative-consumption slope fits
  (Section 4.1 / Table 3).
* :mod:`~repro.metrics.breakdown` — the analytic breakdown-threshold
  model ``U_Q(N*) = 100/(N*+1)`` of Section 4.2.
"""

from repro.metrics.accuracy import (
    cycle_rms_relative_errors,
    mean_rms_relative_error,
    per_subject_fractions,
)
from repro.metrics.breakdown import predicted_threshold
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.metrics.overhead import OverheadFit, fit_overhead_line
from repro.metrics.regression import phase_fractions, slope

__all__ = [
    "LatencySummary",
    "OverheadFit",
    "summarize_latencies",
    "cycle_rms_relative_errors",
    "fit_overhead_line",
    "mean_rms_relative_error",
    "per_subject_fractions",
    "phase_fractions",
    "predicted_threshold",
    "slope",
]
