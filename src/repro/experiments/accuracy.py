"""Figure 4: accuracy of ALPS across workloads and quantum lengths.

Protocol (Section 3.1): for each Table 2 workload and quantum length,
run until 200 cycles are logged, compute the mean RMS relative error
over the cycles, and average over 3 runs (seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution, workload_shares

#: Sweep-cache experiment id of one Figure 4 cell.
ACCURACY_EXPERIMENT = "fig4.accuracy"

#: Quantum lengths (ms) on Figure 4's x-axis.
FIGURE4_QUANTA_MS = (10, 15, 20, 25, 30, 35, 40)
#: Workload sizes of Table 2.
FIGURE4_SIZES = (5, 10, 20)


@dataclass(slots=True, frozen=True)
class AccuracyPoint:
    """One point of Figure 4."""

    model: ShareDistribution
    n: int
    quantum_ms: float
    mean_rms_error_pct: float
    per_seed_errors: tuple[float, ...]
    cycles: int

    @property
    def label(self) -> str:
        """Legend label as in the paper, e.g. ``Skewed20``."""
        return f"{self.model.value.capitalize()}{self.n}"


def run_accuracy_point(
    model: ShareDistribution,
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
    warmup_cycles: int = 5,
) -> AccuracyPoint:
    """Run one (workload, quantum) cell and summarise its error."""
    shares = workload_shares(model, n)
    errors: list[float] = []
    for seed in seeds:
        cw = build_controlled_workload(
            shares, AlpsConfig(quantum_us=ms(quantum_ms)), seed=seed
        )
        run_for_cycles(cw, cycles + warmup_cycles)
        errors.append(
            mean_rms_relative_error(cw.agent.cycle_log, skip=warmup_cycles)
        )
    return AccuracyPoint(
        model=model,
        n=n,
        quantum_ms=quantum_ms,
        mean_rms_error_pct=float(np.mean(errors)),
        per_seed_errors=tuple(errors),
        cycles=cycles,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def accuracy_cell(
    model: ShareDistribution,
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
    warmup_cycles: int = 5,
) -> SweepCell:
    """Declarative form of one Figure 4 cell (the cache identity)."""
    return SweepCell(
        ACCURACY_EXPERIMENT,
        {
            "model": model.value,
            "n": n,
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "seeds": list(seeds),
            "warmup_cycles": warmup_cycles,
        },
    )


def run_accuracy_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker: one cell in, a JSON-safe payload out."""
    point = run_accuracy_point(
        ShareDistribution(params["model"]),
        params["n"],
        params["quantum_ms"],
        cycles=params["cycles"],
        seeds=tuple(params["seeds"]),
        warmup_cycles=params["warmup_cycles"],
    )
    return accuracy_point_payload(point)


def accuracy_point_payload(point: AccuracyPoint) -> dict:
    """JSON-safe encoding of an :class:`AccuracyPoint` (cache blob)."""
    return {
        "model": point.model.value,
        "n": point.n,
        "quantum_ms": point.quantum_ms,
        "mean_rms_error_pct": point.mean_rms_error_pct,
        "per_seed_errors": list(point.per_seed_errors),
        "cycles": point.cycles,
    }


def accuracy_point_from_payload(payload: Mapping[str, Any]) -> AccuracyPoint:
    """Inverse of :func:`accuracy_point_payload` (exact round-trip)."""
    return AccuracyPoint(
        model=ShareDistribution(payload["model"]),
        n=payload["n"],
        quantum_ms=payload["quantum_ms"],
        mean_rms_error_pct=payload["mean_rms_error_pct"],
        per_seed_errors=tuple(payload["per_seed_errors"]),
        cycles=payload["cycles"],
    )


def accuracy_sweep_spec(
    *,
    models: Sequence[ShareDistribution] = DISTRIBUTIONS,
    sizes: Sequence[int] = FIGURE4_SIZES,
    quanta_ms: Sequence[float] = FIGURE4_QUANTA_MS,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
) -> SweepSpec:
    """The full Figure 4 matrix as a :class:`SweepSpec`."""
    return SweepSpec(
        worker=run_accuracy_cell,
        cells=[
            accuracy_cell(model, n, q, cycles=cycles, seeds=seeds)
            for model in models
            for n in sizes
            for q in quanta_ms
        ],
    )


def accuracy_sweep(
    *,
    models: Sequence[ShareDistribution] = DISTRIBUTIONS,
    sizes: Sequence[int] = FIGURE4_SIZES,
    quanta_ms: Sequence[float] = FIGURE4_QUANTA_MS,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[AccuracyPoint]:
    """The full Figure 4 sweep (9 workloads × quantum lengths).

    Dispatches through :func:`repro.sweep.run_sweep`: pass ``workers``
    to fan out over a process pool and ``cache`` to reuse (and store)
    content-addressed cell results.
    """
    spec = accuracy_sweep_spec(
        models=models, sizes=sizes, quanta_ms=quanta_ms,
        cycles=cycles, seeds=seeds,
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [accuracy_point_from_payload(v) for v in outcome.values]
