"""Figure 4: accuracy of ALPS across workloads and quantum lengths.

Protocol (Section 3.1): for each Table 2 workload and quantum length,
run until 200 cycles are logged, compute the mean RMS relative error
over the cycles, and average over 3 runs (seeds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution, workload_shares

#: Quantum lengths (ms) on Figure 4's x-axis.
FIGURE4_QUANTA_MS = (10, 15, 20, 25, 30, 35, 40)
#: Workload sizes of Table 2.
FIGURE4_SIZES = (5, 10, 20)


@dataclass(slots=True, frozen=True)
class AccuracyPoint:
    """One point of Figure 4."""

    model: ShareDistribution
    n: int
    quantum_ms: float
    mean_rms_error_pct: float
    per_seed_errors: tuple[float, ...]
    cycles: int

    @property
    def label(self) -> str:
        """Legend label as in the paper, e.g. ``Skewed20``."""
        return f"{self.model.value.capitalize()}{self.n}"


def run_accuracy_point(
    model: ShareDistribution,
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
    warmup_cycles: int = 5,
) -> AccuracyPoint:
    """Run one (workload, quantum) cell and summarise its error."""
    shares = workload_shares(model, n)
    errors: list[float] = []
    for seed in seeds:
        cw = build_controlled_workload(
            shares, AlpsConfig(quantum_us=ms(quantum_ms)), seed=seed
        )
        run_for_cycles(cw, cycles + warmup_cycles)
        errors.append(
            mean_rms_relative_error(cw.agent.cycle_log, skip=warmup_cycles)
        )
    return AccuracyPoint(
        model=model,
        n=n,
        quantum_ms=quantum_ms,
        mean_rms_error_pct=float(np.mean(errors)),
        per_seed_errors=tuple(errors),
        cycles=cycles,
    )


def accuracy_sweep(
    *,
    models: Sequence[ShareDistribution] = DISTRIBUTIONS,
    sizes: Sequence[int] = FIGURE4_SIZES,
    quanta_ms: Sequence[float] = FIGURE4_QUANTA_MS,
    cycles: int = 200,
    seeds: Sequence[int] = (0, 1, 2),
) -> list[AccuracyPoint]:
    """The full Figure 4 sweep (9 workloads × quantum lengths)."""
    points: list[AccuracyPoint] = []
    for model in models:
        for n in sizes:
            for q in quanta_ms:
                points.append(
                    run_accuracy_point(
                        model, n, q, cycles=cycles, seeds=seeds
                    )
                )
    return points
