"""Robustness: allocation accuracy under deterministic fault injection.

The paper's §4.2 breakdown shows *when* a user-level scheduler loses
control; this experiment measures *how gracefully*.  Each point runs
the standard controlled workload under a seeded
:class:`~repro.faults.plan.FaultPlan` (signal loss and delay, transient
accounting-read failures, agent stalls, and — at higher rates — an
agent crash-with-restart) and reports the allocation accuracy
(:func:`repro.metrics.accuracy.mean_rms_relative_error`) against the
fault-free baseline.  Graceful degradation becomes a measured curve:
error should rise smoothly with the fault rate, never cliff, and no
run may end with a live controlled process wedged in SIGSTOP.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.faults.plan import FaultPlan, default_fault_plan
from repro.metrics.accuracy import mean_rms_relative_error
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload

#: Sweep-cache experiment id of one robustness (fault-rate) cell.
ROBUSTNESS_EXPERIMENT = "robustness.faults"

#: Fault rates on the default sweep's x-axis.
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.1, 0.2)
#: Workload shares of the default sweep (S = 10, cycle = 10 Q).
DEFAULT_SHARES = (1, 2, 3, 4)


@dataclass(slots=True, frozen=True)
class RobustnessPoint:
    """One fault rate's outcome, aggregated over seeds."""

    fault_rate: float
    mean_rms_error_pct: float
    #: Error increase over the sweep's fault-free baseline (filled in by
    #: :func:`robustness_sweep`; NaN for a standalone point).
    degradation_pct: float
    cycles: int
    per_seed_errors: tuple[float, ...]
    # -- injected-fault census (summed over seeds) ------------------
    signals_dropped: int
    signals_delayed: int
    reads_failed: int
    stalls_injected: int
    agent_crashes: int
    # -- recovery census (summed over seeds) ------------------------
    agent_restarts: int
    rebaselines: int
    heals: int
    signal_retries: int
    read_retries: int
    #: Live controlled processes still stopped after shutdown — the
    #: no-wedged-subject guarantee; must be zero.
    wedged_at_end: int


def run_robustness_point(
    fault_rate: float,
    *,
    shares: Sequence[int] = DEFAULT_SHARES,
    quantum_ms: float = 10.0,
    cycles: int = 120,
    seeds: Sequence[int] = (0, 1),
    warmup_cycles: int = 5,
    agent_crash: bool = True,
    plan_factory=default_fault_plan,
) -> RobustnessPoint:
    """Run one fault rate and summarise accuracy plus fault/recovery
    censuses.  ``plan_factory(rate, seed=..., horizon_us=...)`` maps the
    scalar rate to a concrete plan (default: the standard mix)."""
    total_cycles = cycles + warmup_cycles
    # Horizon generously covers the run so mid-horizon agent crashes
    # land inside it even when faults stretch the cycles.
    horizon_us = int(
        2 * total_cycles * sum(shares) * ms(quantum_ms)
    )
    errors: list[float] = []
    counters = {
        "signals_dropped": 0,
        "signals_delayed": 0,
        "reads_failed": 0,
        "stalls_injected": 0,
        "agent_crashes": 0,
        "agent_restarts": 0,
        "rebaselines": 0,
        "heals": 0,
        "signal_retries": 0,
        "read_retries": 0,
        "wedged_at_end": 0,
    }
    for seed in seeds:
        plan: FaultPlan = plan_factory(
            fault_rate, seed=seed, horizon_us=horizon_us, agent_crash=agent_crash
        )
        cw = build_controlled_workload(
            list(shares),
            AlpsConfig(quantum_us=ms(quantum_ms)),
            seed=seed,
            fault_plan=plan,
        )
        # Heavy fault plans can stall progress past the sim bound; a
        # partial log is still a robustness result, but say so.
        run_for_cycles(cw, total_cycles, on_incomplete="warn")
        # A real controller resumes its subjects on the way out; do the
        # same, then audit kernel truth for anything left wedged.
        cw.agent.shutdown(cw.kernel.kapi)
        counters["wedged_at_end"] += count_wedged(cw)
        errors.append(
            mean_rms_relative_error(cw.agent.cycle_log, skip=warmup_cycles)
        )
        inj = cw.injector
        if inj is not None:
            counters["signals_dropped"] += inj.signals_dropped
            counters["signals_delayed"] += inj.signals_delayed
            counters["reads_failed"] += inj.reads_failed
            counters["stalls_injected"] += inj.stalls_injected
            counters["agent_crashes"] += inj.agent_crashes_injected
        counters["agent_restarts"] += cw.agent.restarts
        counters["rebaselines"] += cw.agent.rebaselines
        counters["heals"] += cw.agent.heals
        counters["signal_retries"] += cw.agent.signal_retries
        counters["read_retries"] += cw.agent.read_retries
    return RobustnessPoint(
        fault_rate=fault_rate,
        mean_rms_error_pct=float(np.mean(errors)),
        degradation_pct=float("nan"),
        cycles=cycles,
        per_seed_errors=tuple(errors),
        **counters,
    )


def count_wedged(cw) -> int:
    """Live controlled processes currently job-control stopped."""
    wedged = 0
    for proc in cw.workers:
        try:
            if cw.kernel.is_stopped(proc.pid):
                wedged += 1
        except Exception:
            continue  # dead — cannot be wedged
    return wedged


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def robustness_cell(
    fault_rate: float,
    *,
    shares: Sequence[int] = DEFAULT_SHARES,
    quantum_ms: float = 10.0,
    cycles: int = 120,
    seeds: Sequence[int] = (0, 1),
    warmup_cycles: int = 5,
    agent_crash: bool = True,
) -> SweepCell:
    """Declarative form of one fault-rate cell.

    The cell always uses :func:`~repro.faults.plan.default_fault_plan`
    — a custom ``plan_factory`` is a callable, which has no stable
    content address; use :func:`run_robustness_point` directly (and no
    cache) for custom plans.  The derived plans are part of the key via
    these parameters (rate, seeds, horizon inputs, ``agent_crash``).
    """
    return SweepCell(
        ROBUSTNESS_EXPERIMENT,
        {
            "fault_rate": fault_rate,
            "shares": list(shares),
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "seeds": list(seeds),
            "warmup_cycles": warmup_cycles,
            "agent_crash": agent_crash,
        },
    )


def run_robustness_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one robustness cell."""
    point = run_robustness_point(
        params["fault_rate"],
        shares=tuple(params["shares"]),
        quantum_ms=params["quantum_ms"],
        cycles=params["cycles"],
        seeds=tuple(params["seeds"]),
        warmup_cycles=params["warmup_cycles"],
        agent_crash=params["agent_crash"],
    )
    return robustness_point_payload(point)


def robustness_point_payload(point: RobustnessPoint) -> dict:
    """JSON-safe encoding of a :class:`RobustnessPoint`."""
    payload = asdict(point)
    payload["per_seed_errors"] = list(point.per_seed_errors)
    return payload


def robustness_point_from_payload(
    payload: Mapping[str, Any],
) -> RobustnessPoint:
    """Inverse of :func:`robustness_point_payload` (exact round-trip)."""
    data = dict(payload)
    data["per_seed_errors"] = tuple(data["per_seed_errors"])
    return RobustnessPoint(**data)


def robustness_sweep(
    rates: Sequence[float] = DEFAULT_RATES,
    *,
    shares: Sequence[int] = DEFAULT_SHARES,
    quantum_ms: float = 10.0,
    cycles: int = 120,
    seeds: Sequence[int] = (0, 1),
    warmup_cycles: int = 5,
    agent_crash: bool = True,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[RobustnessPoint]:
    """The accuracy-degradation-versus-fault-rate curve.

    The first returned point is always the fault-free baseline (rate 0
    is prepended if absent); every point's ``degradation_pct`` is its
    error minus the baseline's.  Cells are independent and dispatch
    through :func:`repro.sweep.run_sweep`; the baseline subtraction is
    applied to the (possibly cached) per-rate results afterwards.
    """
    swept = list(rates)
    if 0.0 not in swept:
        swept.insert(0, 0.0)
    swept.sort()
    spec = SweepSpec(
        worker=run_robustness_cell,
        cells=[
            robustness_cell(
                rate,
                shares=shares,
                quantum_ms=quantum_ms,
                cycles=cycles,
                seeds=seeds,
                warmup_cycles=warmup_cycles,
                agent_crash=agent_crash,
            )
            for rate in swept
        ],
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    raw = [robustness_point_from_payload(v) for v in outcome.values]
    baseline = raw[0].mean_rms_error_pct
    return [
        replace(p, degradation_pct=p.mean_rms_error_pct - baseline)
        for p in raw
    ]
