"""Section 5: isolating three shared-hosting users with ALPS.

Three prefork sites (users u1, u2, u3) on one single-CPU web server,
each driven by 325 closed-loop clients.  Without ALPS the kernel
spreads the CPU roughly evenly (paper: {29, 30, 40} req/s).  With one
ALPS scheduling the three *users* as principals with shares {1, 2, 3}
(Q = 100 ms, membership refresh 1 s), throughput is reapportioned
(paper: {18, 35, 53} req/s).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep

from repro.alps.agent import AlpsAgent, spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import UserSubject
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import SEC, ms, sec
from repro.webserver.apache import PreforkSite
from repro.webserver.clients import ClosedLoopClients
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import RequestFactory

#: Site user ids.
SITE_UIDS = (1001, 1002, 1003)


@dataclass(slots=True, frozen=True)
class WebServerResult:
    """Throughputs (req/s) and latency medians with and without ALPS."""

    baseline_rps: tuple[float, float, float]
    alps_rps: tuple[float, float, float]
    shares: tuple[int, int, int]
    alps_overhead_pct: float
    db_utilization: float
    #: Median response latency per site (ms), kernel-only / with ALPS.
    baseline_p50_ms: tuple[float, float, float] = (0.0, 0.0, 0.0)
    alps_p50_ms: tuple[float, float, float] = (0.0, 0.0, 0.0)

    @property
    def baseline_fractions(self) -> tuple[float, ...]:
        total = sum(self.baseline_rps)
        return tuple(r / total for r in self.baseline_rps) if total else (0.0,) * 3

    @property
    def alps_fractions(self) -> tuple[float, ...]:
        total = sum(self.alps_rps)
        return tuple(r / total for r in self.alps_rps) if total else (0.0,) * 3


def _build(
    *,
    seed: int,
    n_clients: int,
    max_workers: int,
    regulated: bool = False,
) -> tuple[Engine, Kernel, DatabaseServer, list[PreforkSite], list[ClosedLoopClients]]:
    engine = Engine(seed=seed)
    kernel = Kernel(engine)
    db = DatabaseServer(engine, kernel, capacity=2)
    sites: list[PreforkSite] = []
    clients: list[ClosedLoopClients] = []
    for i, uid in enumerate(SITE_UIDS):
        if regulated:
            from repro.webserver.regulation import RegulationPolicy, regulated_site

            site, _master, _mproc = regulated_site(
                kernel,
                db,
                name=f"site{i + 1}",
                uid=uid,
                policy=RegulationPolicy(max_workers=max_workers),
            )
        else:
            site = PreforkSite(
                kernel, db, name=f"site{i + 1}", uid=uid, max_workers=max_workers
            )
        factory = RequestFactory(rng=engine.rng.stream(f"requests:site{i + 1}"))
        drv = ClosedLoopClients(engine, site, factory, n_clients=n_clients)
        drv.start()
        sites.append(site)
        clients.append(drv)
    return engine, kernel, db, sites, clients


def run_webserver_experiment(
    *,
    shares: Sequence[int] = (1, 2, 3),
    quantum_ms: float = 100.0,
    n_clients: int = 325,
    max_workers: int = 50,
    warmup_s: float = 20.0,
    measure_s: float = 60.0,
    seed: int = 0,
    regulated: bool = False,
) -> WebServerResult:
    """Run the baseline and the ALPS-controlled configuration.

    ``regulated=True`` replaces fixed worker pools with Apache-style
    MinSpare/MaxSpare regulation (dynamic membership exercises the
    principals' once-per-second refresh, as in the paper's setup).
    """
    baseline = _run_one(
        shares=None,
        quantum_ms=quantum_ms,
        n_clients=n_clients,
        max_workers=max_workers,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        regulated=regulated,
    )
    controlled = _run_one(
        shares=tuple(shares),
        quantum_ms=quantum_ms,
        n_clients=n_clients,
        max_workers=max_workers,
        warmup_s=warmup_s,
        measure_s=measure_s,
        seed=seed,
        regulated=regulated,
    )
    return WebServerResult(
        baseline_rps=baseline[0],
        alps_rps=controlled[0],
        shares=tuple(shares),  # type: ignore[arg-type]
        alps_overhead_pct=controlled[1],
        db_utilization=controlled[2],
        baseline_p50_ms=baseline[3],
        alps_p50_ms=controlled[3],
    )


def _run_one(
    *,
    shares: Optional[tuple[int, ...]],
    quantum_ms: float,
    n_clients: int,
    max_workers: int,
    warmup_s: float,
    measure_s: float,
    seed: int,
    regulated: bool = False,
) -> tuple[
    tuple[float, float, float], float, float, tuple[float, float, float]
]:
    engine, kernel, db, sites, clients = _build(
        seed=seed,
        n_clients=n_clients,
        max_workers=max_workers,
        regulated=regulated,
    )
    alps_proc = None
    if shares is not None:
        subjects = [
            UserSubject(sid=i, share=share, uid=uid)
            for i, (share, uid) in enumerate(zip(shares, SITE_UIDS))
        ]
        cfg = AlpsConfig(quantum_us=ms(quantum_ms), principal_refresh_us=1 * SEC)
        alps_proc, _agent = spawn_alps(kernel, subjects, cfg, name="alps-web")
    lo = sec(warmup_s)
    hi = sec(warmup_s + measure_s)
    engine.run_until(hi)
    rps = tuple(drv.throughput(lo, hi) for drv in clients)
    overhead = (
        100.0 * kernel.getrusage(alps_proc.pid) / kernel.now if alps_proc else 0.0
    )
    util = db.utilization(kernel.now)
    from repro.metrics.latency import summarize_latencies

    p50s = tuple(
        summarize_latencies(drv.responses, window=(lo, hi)).p50_us / 1000
        for drv in clients
    )
    return rps, overhead, util, p50s  # type: ignore[return-value]


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: the Section 5 run as a one-cell sweep
# ---------------------------------------------------------------------------
#: Sweep-cache experiment id of the Section 5 run.
WEBSERVER_EXPERIMENT = "sec5.webserver"


def webserver_cell(
    *,
    shares: Sequence[int] = (1, 2, 3),
    quantum_ms: float = 100.0,
    n_clients: int = 325,
    max_workers: int = 50,
    warmup_s: float = 20.0,
    measure_s: float = 60.0,
    seed: int = 0,
    regulated: bool = False,
) -> SweepCell:
    """Declarative form of the Section 5 run (the cache identity)."""
    return SweepCell(
        WEBSERVER_EXPERIMENT,
        {
            "shares": list(shares),
            "quantum_ms": quantum_ms,
            "n_clients": n_clients,
            "max_workers": max_workers,
            "warmup_s": warmup_s,
            "measure_s": measure_s,
            "seed": seed,
            "regulated": regulated,
        },
    )


def run_webserver_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for the Section 5 experiment."""
    result = run_webserver_experiment(
        shares=tuple(params["shares"]),
        quantum_ms=params["quantum_ms"],
        n_clients=params["n_clients"],
        max_workers=params["max_workers"],
        warmup_s=params["warmup_s"],
        measure_s=params["measure_s"],
        seed=params["seed"],
        regulated=params["regulated"],
    )
    return webserver_result_payload(result)


def webserver_result_payload(result: WebServerResult) -> dict:
    """JSON-safe encoding of a :class:`WebServerResult`."""
    return {
        "baseline_rps": list(result.baseline_rps),
        "alps_rps": list(result.alps_rps),
        "shares": list(result.shares),
        "alps_overhead_pct": result.alps_overhead_pct,
        "db_utilization": result.db_utilization,
        "baseline_p50_ms": list(result.baseline_p50_ms),
        "alps_p50_ms": list(result.alps_p50_ms),
    }


def webserver_result_from_payload(
    payload: Mapping[str, Any],
) -> WebServerResult:
    """Inverse of :func:`webserver_result_payload` (exact round-trip)."""
    return WebServerResult(
        baseline_rps=tuple(payload["baseline_rps"]),
        alps_rps=tuple(payload["alps_rps"]),
        shares=tuple(payload["shares"]),
        alps_overhead_pct=payload["alps_overhead_pct"],
        db_utilization=payload["db_utilization"],
        baseline_p50_ms=tuple(payload["baseline_p50_ms"]),
        alps_p50_ms=tuple(payload["alps_p50_ms"]),
    )


def run_webserver_experiment_cached(
    *,
    shares: Sequence[int] = (1, 2, 3),
    quantum_ms: float = 100.0,
    n_clients: int = 325,
    max_workers: int = 50,
    warmup_s: float = 20.0,
    measure_s: float = 60.0,
    seed: int = 0,
    regulated: bool = False,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> WebServerResult:
    """:func:`run_webserver_experiment` dispatched through the sweep
    scheduler (cache-aware ``repro run sec5``)."""
    spec = SweepSpec(
        worker=run_webserver_cell,
        cells=[
            webserver_cell(
                shares=shares,
                quantum_ms=quantum_ms,
                n_clients=n_clients,
                max_workers=max_workers,
                warmup_s=warmup_s,
                measure_s=measure_s,
                seed=seed,
                regulated=regulated,
            )
        ],
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return webserver_result_from_payload(outcome.values[0])
