"""Gunther "ratios, not guarantees" share-tree experiment.

Gunther's Solaris SRM capacity-planning papers ("Unfair Advantage",
PAPERS.md) make a point every share-tree operator eventually rediscovers:
shares bound the *ratio* of service between siblings, not any absolute
*guarantee* of throughput.  A tenant holding twice its sibling's shares
always attains ≈2× each sibling's CPU — but its absolute throughput
collapses as more siblings arrive, because the same ratio is being taken
out of an ever-thinner slice.

This experiment reproduces that result on the share tree
(docs/share_tree.md).  Tenant ``a`` (weight 2, two equal workers) faces
``k`` unit-weight sibling tenants (one worker each) for
``k ∈ {1, 2, 4, 8}``:

* the attained ratio of tenant ``a`` to a mean sibling stays pinned at
  the share ratio 2.0 (the *bounded* quantity), while
* tenant ``a``'s absolute throughput falls from 2/3 of the machine to
  1/5 — a >3× swing with **no change to its shares** (the thing shares
  never guaranteed).

``cells=1`` runs the tree under a single ALPS agent; ``cells>1`` runs it
on the sharded control plane (:class:`~repro.sharetree.ShardedAlpsPlane`)
where each cell enforces its own subtrees — intra-cell ratios stay
bounded while cross-cell proportions belong to the kernel, which is the
sharding trade the docs chapter discusses.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import SEC, ms, sec
from repro.workloads.scenarios import build_controlled_workload

#: Sweep-cache experiment id of one Gunther share-tree cell.
SHARETREE_EXPERIMENT = "sharetree.gunther"

#: Tenant ``a``'s weight relative to each unit-weight sibling tenant.
TENANT_WEIGHT = 2
#: Quantum used throughout (matches the Table 2 calibration).
SHARETREE_QUANTUM_MS = 10.0
#: Sibling-count load points of the full sweep.
SIBLING_COUNTS = (1, 2, 4, 8)
#: Warm-up cycles excluded from attainment accounting (single-cell arm).
SKIP_CYCLES = 3


def gunther_tree(k: int):
    """The experiment's share tree: tenant ``a`` vs ``k`` unit siblings.

    Tenant ``a`` (weight :data:`TENANT_WEIGHT`) runs two equal workers
    (sids 0 and 1); sibling tenants ``s1..sk`` (weight 1) run one worker
    each (sids 2..k+1).  Every leaf resolves to the same effective share,
    so the schedule itself is equal-share — the hierarchy is what makes
    the per-*tenant* ratio 2:1.
    """
    from repro.sharetree import ShareTree

    if k < 1:
        raise ValueError(f"need at least one sibling tenant, got {k}")
    tree = ShareTree()
    tree.group("a", TENANT_WEIGHT)
    tree.leaf("a/a0", sid=0, weight=1)
    tree.leaf("a/a1", sid=1, weight=1)
    for j in range(1, k + 1):
        tree.group(f"s{j}", 1)
        tree.leaf(f"s{j}/w", sid=1 + j, weight=1)
    return tree


@dataclass(slots=True, frozen=True)
class SharetreePoint:
    """One (k, cells) cell of the Gunther ratios-vs-guarantees sweep."""

    k: int
    cells: int
    quantum_ms: float
    seed: int
    #: The ratio shares promise between tenant ``a`` and one sibling.
    share_ratio: float
    #: Tenant ``a``'s attained CPU over a mean sibling's (the bounded
    #: quantity — stays ≈ ``share_ratio`` at every load point).
    attained_ratio: float
    ratio_error_pct: float
    #: Tenant ``a``'s fraction of all attained CPU (the *unbounded*
    #: quantity — collapses as siblings arrive).
    tenant_fraction: float
    sibling_mean_fraction: float
    #: Absolute throughput proxy: tenant ``a``'s attained µs per wall
    #: second.  Shares never guaranteed this number.
    tenant_us_per_s: float
    cycles_completed: int
    wall_us: int
    migrations: int


def _point_from_attained(
    attained: Mapping[int, int],
    *,
    k: int,
    cells: int,
    quantum_ms: float,
    seed: int,
    cycles_completed: int,
    wall_us: int,
    migrations: int,
) -> SharetreePoint:
    """Fold per-sid attainment into the experiment's tenant metrics."""
    tenant_us = attained.get(0, 0) + attained.get(1, 0)
    sibling_us = [attained.get(1 + j, 0) for j in range(1, k + 1)]
    total = tenant_us + sum(sibling_us)
    tenant_fraction = tenant_us / total if total else 0.0
    sibling_mean = (sum(sibling_us) / k) / total if total else 0.0
    attained_ratio = (
        tenant_fraction / sibling_mean if sibling_mean > 0 else float("inf")
    )
    share_ratio = float(TENANT_WEIGHT)
    return SharetreePoint(
        k=k,
        cells=cells,
        quantum_ms=quantum_ms,
        seed=seed,
        share_ratio=share_ratio,
        attained_ratio=attained_ratio,
        ratio_error_pct=100.0 * abs(attained_ratio - share_ratio) / share_ratio,
        tenant_fraction=tenant_fraction,
        sibling_mean_fraction=sibling_mean,
        tenant_us_per_s=tenant_us / (wall_us / SEC) if wall_us else 0.0,
        cycles_completed=cycles_completed,
        wall_us=wall_us,
        migrations=migrations,
    )


def run_sharetree_point(
    k: int,
    cells: int = 1,
    quantum_ms: float = SHARETREE_QUANTUM_MS,
    *,
    cycles: int = 40,
    seed: int = 0,
    horizon_s: float = 10.0,
) -> SharetreePoint:
    """One Gunther cell: tenant ``a`` vs ``k`` siblings, on one agent
    (``cells=1``) or the sharded plane (``cells>1``).

    The single-cell arm runs to a cycle count and sums the cycle log's
    consumption (skipping :data:`SKIP_CYCLES` warm-up cycles); the
    sharded arm runs to a wall horizon and reads each cell's cumulative
    attainment, because cycle boundaries are per-cell there.
    """
    tree = gunther_tree(k)
    leaf_weights = [1] * (k + 2)
    if cells <= 1:
        cw = build_controlled_workload(
            leaf_weights,
            AlpsConfig(quantum_us=ms(quantum_ms)),
            seed=seed,
            sharetree=tree,
        )
        run_for_cycles(
            cw, cycles, max_sim_us=int(horizon_s * 4 * SEC),
            on_incomplete="ignore",
        )
        attained: dict[int, int] = {}
        for rec in cw.agent.cycle_log[SKIP_CYCLES:]:
            for sid, used in rec.consumed.items():
                attained[sid] = attained.get(sid, 0) + used
        return _point_from_attained(
            attained,
            k=k,
            cells=1,
            quantum_ms=quantum_ms,
            seed=seed,
            cycles_completed=len(cw.agent.cycle_log),
            wall_us=cw.kernel.now,
            migrations=0,
        )
    from repro.sharetree import ShardedAlpsPlane

    plane = ShardedAlpsPlane(
        tree,
        AlpsConfig(quantum_us=ms(quantum_ms)),
        cells=cells,
        seed=seed,
    )
    plane.run_until(sec(horizon_s))
    completed = min(
        (len(agent.cycle_log) for agent in plane.agents.values()), default=0
    )
    return _point_from_attained(
        plane.attained_us(),
        k=k,
        cells=cells,
        quantum_ms=quantum_ms,
        seed=seed,
        cycles_completed=completed,
        wall_us=plane.kernel.now,
        migrations=plane.migrations,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def sharetree_cell(
    k: int,
    cells: int = 1,
    quantum_ms: float = SHARETREE_QUANTUM_MS,
    *,
    cycles: int = 40,
    seed: int = 0,
    horizon_s: float = 10.0,
) -> SweepCell:
    """Declarative form of one Gunther share-tree cell."""
    return SweepCell(
        SHARETREE_EXPERIMENT,
        {
            "k": k,
            "cells": cells,
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "seed": seed,
            "horizon_s": horizon_s,
        },
    )


def run_sharetree_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one Gunther cell."""
    point = run_sharetree_point(
        params["k"],
        params["cells"],
        params["quantum_ms"],
        cycles=params["cycles"],
        seed=params["seed"],
        horizon_s=params["horizon_s"],
    )
    return asdict(point)


def sharetree_point_from_payload(payload: Mapping[str, Any]) -> SharetreePoint:
    """Rebuild a :class:`SharetreePoint` from its cache payload."""
    return SharetreePoint(**payload)


def sharetree_sweep_spec(
    *,
    sibling_counts: Sequence[int] = SIBLING_COUNTS,
    cell_counts: Sequence[int] = (1,),
    quantum_ms: float = SHARETREE_QUANTUM_MS,
    cycles: int = 40,
    seed: int = 0,
    horizon_s: float = 10.0,
) -> SweepSpec:
    """Every (k, cells) load point, as one sweep."""
    return SweepSpec(
        worker=run_sharetree_cell,
        cells=[
            sharetree_cell(
                k,
                cells,
                quantum_ms,
                cycles=cycles,
                seed=seed,
                horizon_s=horizon_s,
            )
            for cells in cell_counts
            for k in sibling_counts
        ],
    )


def sharetree_sweep(
    *,
    sibling_counts: Sequence[int] = SIBLING_COUNTS,
    cell_counts: Sequence[int] = (1,),
    quantum_ms: float = SHARETREE_QUANTUM_MS,
    cycles: int = 40,
    seed: int = 0,
    horizon_s: float = 10.0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[SharetreePoint]:
    """Run the Gunther matrix through the sweep scheduler."""
    spec = sharetree_sweep_spec(
        sibling_counts=sibling_counts,
        cell_counts=cell_counts,
        quantum_ms=quantum_ms,
        cycles=cycles,
        seed=seed,
        horizon_s=horizon_s,
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [sharetree_point_from_payload(v) for v in outcome.values]


def throughput_variation(points: Sequence[SharetreePoint]) -> float:
    """Max/min absolute tenant throughput across single-cell load points.

    The "not guarantees" half of the claim: this is expected to be ≥2
    (the acceptance gate) while every point's ``attained_ratio`` stays
    within a few percent of :data:`TENANT_WEIGHT`.
    """
    tput = [
        p.tenant_us_per_s for p in points if p.cells == 1 and p.tenant_us_per_s
    ]
    if len(tput) < 2:
        return 1.0
    return max(tput) / min(tput)
