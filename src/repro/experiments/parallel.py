"""Process-parallel execution of experiment sweeps.

Simulation runs are single-threaded and independent across sweep cells,
so they scale across cores with process pools.  ``parallel_map`` is a
thin, picklable-friendly wrapper used by the CLI's ``--full`` sweeps;
it degrades gracefully to serial execution when only one worker is
available, when ``fn`` or the items cannot cross a process boundary,
or when the pool itself breaks mid-sweep — always preserving the
serial semantics.  Worker exceptions are re-raised as
:class:`~repro.errors.SweepCellError` carrying the failing item, so a
mid-sweep crash names the cell that died.

The cache-aware, retrying generalisation of this helper lives in
:mod:`repro.sweep.scheduler`; ``parallel_map`` remains the primitive
for plain fan-out with no caching or retry policy.
"""

from __future__ import annotations

import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Sequence, TypeVar

from repro.errors import SweepCellError

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Number of workers: CPUs minus one, at least one."""
    return max(1, (os.cpu_count() or 1) - 1)


def _serial_map(fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
    out: list[R] = []
    for item in items:
        try:
            out.append(fn(item))
        except (KeyboardInterrupt, SystemExit):
            raise
        except SweepCellError:
            raise
        except Exception as exc:
            raise SweepCellError(
                getattr(fn, "__name__", repr(fn)), item, repr(exc)
            ) from exc
    return out


def _picklable(obj: object) -> bool:
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``fn`` and the items should be picklable (module-level functions
    and plain data); if they are not, the map falls back to serial
    execution with a ``RuntimeWarning`` instead of dying inside the
    pool's feeder thread.  With ``workers <= 1`` the map runs serially
    in this process — same semantics, no pool overhead.  A worker
    exception is re-raised as :class:`~repro.errors.SweepCellError`
    naming the failing item; a broken pool (a worker killed hard)
    falls back to recomputing serially with a warning.
    """
    nworkers = default_workers() if workers is None else workers
    if nworkers <= 1 or len(items) <= 1:
        return _serial_map(fn, items)
    if not _picklable(fn) or not all(_picklable(item) for item in items):
        warnings.warn(
            "parallel_map: fn or items are not picklable; "
            "falling back to serial execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items)
    try:
        with ProcessPoolExecutor(max_workers=min(nworkers, len(items))) as pool:
            futures = [pool.submit(fn, item) for item in items]
            out: list[R] = []
            for item, fut in zip(items, futures):
                try:
                    out.append(fut.result())
                except BrokenProcessPool:
                    raise
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    raise SweepCellError(
                        getattr(fn, "__name__", repr(fn)), item, repr(exc)
                    ) from exc
            return out
    except BrokenProcessPool:
        warnings.warn(
            "parallel_map: process pool broke mid-sweep; "
            "recomputing serially",
            RuntimeWarning,
            stacklevel=2,
        )
        return _serial_map(fn, items)
