"""Process-parallel execution of experiment sweeps.

Simulation runs are single-threaded and independent across sweep cells,
so they scale across cores with process pools.  ``parallel_map`` is a
thin, picklable-friendly wrapper used by the CLI's ``--full`` sweeps;
it degrades gracefully to serial execution when only one worker is
available (or when the platform lacks working multiprocessing).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_workers() -> int:
    """Number of workers: CPUs minus one, at least one."""
    return max(1, (os.cpu_count() or 1) - 1)


def parallel_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    workers: int | None = None,
) -> list[R]:
    """Map ``fn`` over ``items``, preserving order.

    ``fn`` and the items must be picklable (module-level functions and
    plain data).  With ``workers <= 1`` the map runs serially in this
    process — same semantics, no pool overhead.
    """
    nworkers = default_workers() if workers is None else workers
    if nworkers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(nworkers, len(items))) as pool:
        return list(pool.map(fn, items))
