"""Table 1: costs of ALPS's primary operations.

The paper measured, on FreeBSD 4.8 / 2.2 GHz P4: timer event 9.02 µs,
measuring CPU time of n processes 1.1 + 17.4·n µs, signalling 0.97 µs.
This module measures the same three primitives live on the current
Linux host (the numbers differ — modern hardware, /proc instead of
kvm — but the *structure*, measurement cost dominating and growing
linearly in n, is the reproduced claim).
"""

from __future__ import annotations

import dataclasses
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from repro.hostos.procfs import read_proc_stat
from repro.sweep.scheduler import SweepCell, SweepSpec
from repro.hostos.spawn import spawn_spinner


@dataclass(slots=True, frozen=True)
class Table1Result:
    """Measured per-operation costs (µs) plus the paper's constants."""

    timer_event_us: float
    measure_fixed_us: float
    measure_per_proc_us: float
    signal_us: float

    PAPER_TIMER_US = 9.02
    PAPER_MEASURE_FIXED_US = 1.1
    PAPER_MEASURE_PER_PROC_US = 17.4
    PAPER_SIGNAL_US = 0.97


@contextmanager
def _spinners(n: int) -> Iterator[list[int]]:
    procs = [spawn_spinner() for _ in range(n)]
    try:
        yield [p.pid for p in procs]
    finally:
        for p in procs:
            p.kill()
        for p in procs:
            p.wait()


def time_timer_event(iterations: int = 2000) -> float:
    """Cost (µs) of receiving a timer-style event.

    Measured as self-signal delivery + ``sigtimedwait`` return — the
    same wake-from-kernel path a quantum timer exercises.
    """
    signo = signal.SIGUSR1
    old = signal.signal(signo, signal.SIG_IGN)
    signal.pthread_sigmask(signal.SIG_BLOCK, {signo})
    try:
        pid = os.getpid()
        t0 = time.perf_counter()
        for _ in range(iterations):
            os.kill(pid, signo)
            signal.sigtimedwait({signo}, 1.0)
        elapsed = time.perf_counter() - t0
    finally:
        signal.pthread_sigmask(signal.SIG_UNBLOCK, {signo})
        signal.signal(signo, old)
    return 1e6 * elapsed / iterations


def time_measure_ladder(
    sizes: Sequence[int] = (1, 2, 4, 8, 16), iterations: int = 200
) -> tuple[float, float]:
    """Fit ``a + b·n`` to the cost of reading n processes' CPU time.

    Returns ``(fixed_us, per_proc_us)`` — the live analogue of the
    paper's 1.1 + 17.4·n.
    """
    ns: list[int] = []
    costs: list[float] = []
    with _spinners(max(sizes)) as pids:
        time.sleep(0.05)  # let /proc entries settle
        for n in sizes:
            subset = pids[:n]
            t0 = time.perf_counter()
            for _ in range(iterations):
                for pid in subset:
                    read_proc_stat(pid)
            per_iter_us = 1e6 * (time.perf_counter() - t0) / iterations
            ns.append(n)
            costs.append(per_iter_us)
    slope, intercept = np.polyfit(ns, costs, 1)
    return float(max(intercept, 0.0)), float(slope)


def time_signal(iterations: int = 5000) -> float:
    """Cost (µs) of sending one signal to another process."""
    with _spinners(1) as pids:
        pid = pids[0]
        t0 = time.perf_counter()
        for _ in range(iterations):
            os.kill(pid, signal.SIGCONT)  # no-op for a running process
        elapsed = time.perf_counter() - t0
    return 1e6 * elapsed / iterations


def run_table1(*, quick: bool = False) -> Table1Result:
    """Measure all three primitives on this host."""
    scale = 4 if quick else 1
    timer = time_timer_event(iterations=2000 // scale)
    fixed, per_proc = time_measure_ladder(iterations=200 // scale)
    sig = time_signal(iterations=5000 // scale)
    return Table1Result(
        timer_event_us=timer,
        measure_fixed_us=fixed,
        measure_per_proc_us=per_proc,
        signal_us=sig,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration.  Table 1 measures *this host's* live
# timings, so the sweep is declared non-cacheable: it always reruns,
# but shares the scheduler's dispatch, retry, and footer machinery.
# ---------------------------------------------------------------------------
#: Sweep experiment id of the Table 1 measurement (never cached).
TABLE1_EXPERIMENT = "table1.ops"


def table1_cell(*, quick: bool = False) -> SweepCell:
    """Declarative form of the Table 1 measurement."""
    return SweepCell(TABLE1_EXPERIMENT, {"quick": quick})


def run_table1_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for the Table 1 measurement."""
    return dataclasses.asdict(run_table1(quick=params["quick"]))


def table1_result_from_payload(payload: Mapping[str, Any]) -> Table1Result:
    """Inverse of :func:`run_table1_cell`'s payload encoding."""
    return Table1Result(**payload)


def table1_sweep_spec(*, quick: bool = False) -> SweepSpec:
    """The (single-cell, non-cacheable) Table 1 sweep."""
    return SweepSpec(
        worker=run_table1_cell,
        cells=[table1_cell(quick=quick)],
        cacheable=False,
    )
