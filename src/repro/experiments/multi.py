"""Figure 7 + Table 3: multiple concurrent ALPS schedulers.

Three independent groups, each with its own ALPS (Q = 10 ms):

* group A — shares {7, 8, 9}, starts at t = 0
* group B — shares {4, 5, 6}, starts at t ≈ 3 s
* group C — shares {1, 2, 3}, starts at t ≈ 6 s

Each ALPS must apportion whatever CPU the kernel gives its group in the
group's own share proportions, regardless of the other groups.  The
paper fits each process's cumulative CPU consumption per phase and
reports per-group fractional CPU and relative error (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

import numpy as np

from repro.alps.config import AlpsConfig
from repro.metrics.regression import phase_fractions
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms, sec
from repro.workloads.scenarios import MultiAlpsScenario, build_multi_alps_scenario

#: Sweep-cache experiment id of the Figure 7 / Table 3 run.
MULTI_EXPERIMENT = "fig7.multi"

#: (label, shares, start time) of the paper's three groups.
GROUP_SPECS = (
    ("A", (7, 8, 9), 0),
    ("B", (4, 5, 6), 3 * 1_000_000),
    ("C", (1, 2, 3), 6 * 1_000_000),
)


@dataclass(slots=True, frozen=True)
class ProcessSeries:
    """Cumulative CPU samples (at its ALPS's cycle ends) of one process."""

    label: str  # e.g. "A" (group)
    share: int
    times_us: np.ndarray
    cumulative_us: np.ndarray


@dataclass(slots=True)
class MultiAlpsResult:
    """Everything needed to draw Figure 7 and fill Table 3."""

    series: dict[str, ProcessSeries] = field(default_factory=dict)
    phase_windows: dict[int, tuple[int, int]] = field(default_factory=dict)

    def table3(self) -> list[dict]:
        """Rows of Table 3: per-process target vs measured %CPU per phase.

        Each row has the process's share, its group, its target in-group
        percentage, and per-phase measured percentage + relative error
        (None where the process was not yet running).
        """
        rows: list[dict] = []
        # Per-phase in-group fractions from regression slopes.
        fractions_by_phase: dict[int, dict[str, dict[int, float]]] = {}
        for phase, window in self.phase_windows.items():
            by_group: dict[str, dict[int, float]] = {}
            for group in sorted({s.label for s in self.series.values()}):
                group_series = {
                    share: (s.times_us, s.cumulative_us)
                    for key, s in self.series.items()
                    if s.label == group
                    for share in [s.share]
                }
                by_group[group] = phase_fractions(group_series, window)
            fractions_by_phase[phase] = by_group

        for key in sorted(self.series, key=lambda k: self.series[k].share):
            s = self.series[key]
            group_total = sum(
                t.share for t in self.series.values() if t.label == s.label
            )
            target = 100.0 * s.share / group_total
            row = {"share": s.share, "group": s.label, "target_pct": target}
            for phase in sorted(self.phase_windows):
                frac = fractions_by_phase[phase][s.label].get(s.share)
                if frac is None or frac == 0.0:
                    row[f"phase{phase}_pct"] = None
                    row[f"phase{phase}_relerr"] = None
                else:
                    measured = 100.0 * frac
                    row[f"phase{phase}_pct"] = measured
                    row[f"phase{phase}_relerr"] = (
                        100.0 * abs(measured - target) / target
                    )
            rows.append(row)
        return rows


def run_multi_alps_experiment(
    *,
    quantum_ms: float = 10.0,
    phase_ends_s: tuple[float, float, float] = (3.0, 6.0, 15.0),
    seed: int = 0,
) -> MultiAlpsResult:
    """Run the Section 4.1 experiment and sample cumulative consumption."""
    scenario: MultiAlpsScenario = build_multi_alps_scenario(
        GROUP_SPECS, AlpsConfig(quantum_us=ms(quantum_ms)), seed=seed
    )
    kernel = scenario.kernel
    engine = scenario.engine

    samples: dict[str, tuple[list[int], list[int]]] = {}
    for group in scenario.groups:
        for i, worker in enumerate(group.workers):
            samples[f"{group.label}{i}"] = ([], [])

    # Sample each process's cumulative CPU every 100 ms of real time —
    # finer than the paper's cycle-end sampling but equivalent for the
    # regression slopes.
    def sampler(event) -> None:
        for group in scenario.groups:
            if kernel.now < group.start_time:
                continue
            for i, worker in enumerate(group.workers):
                times, values = samples[f"{group.label}{i}"]
                times.append(kernel.now)
                values.append(kernel.getrusage(worker.pid))
        engine.after(100 * 1000, sampler, tag="fig7-sampler")

    engine.after(100 * 1000, sampler, tag="fig7-sampler")
    engine.run_until(sec(phase_ends_s[2]))

    result = MultiAlpsResult()
    for group in scenario.groups:
        for i, worker in enumerate(group.workers):
            key = f"{group.label}{i}"
            times, values = samples[key]
            result.series[key] = ProcessSeries(
                label=group.label,
                share=group.shares[i],
                times_us=np.asarray(times),
                cumulative_us=np.asarray(values),
            )
    # Phase windows, with small margins so fork transients at phase
    # boundaries do not leak into the fits.
    margin = int(0.3 * 1_000_000)
    bounds = [0] + [int(p * 1_000_000) for p in phase_ends_s]
    for phase in (1, 2, 3):
        result.phase_windows[phase] = (
            bounds[phase - 1] + margin,
            bounds[phase] - margin,
        )
    return result


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: the Figure 7 run as a one-cell sweep
# ---------------------------------------------------------------------------
def multi_cell(
    *,
    quantum_ms: float = 10.0,
    phase_ends_s: tuple[float, float, float] = (3.0, 6.0, 15.0),
    seed: int = 0,
) -> SweepCell:
    """Declarative form of the Figure 7 / Table 3 run."""
    return SweepCell(
        MULTI_EXPERIMENT,
        {
            "quantum_ms": quantum_ms,
            "phase_ends_s": list(phase_ends_s),
            "seed": seed,
        },
    )


def run_multi_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for the Figure 7 experiment."""
    result = run_multi_alps_experiment(
        quantum_ms=params["quantum_ms"],
        phase_ends_s=tuple(params["phase_ends_s"]),
        seed=params["seed"],
    )
    return multi_result_payload(result)


def multi_result_payload(result: MultiAlpsResult) -> dict:
    """JSON-safe encoding of a :class:`MultiAlpsResult`."""
    return {
        "series": {
            key: {
                "label": s.label,
                "share": s.share,
                "times_us": [int(v) for v in s.times_us],
                "cumulative_us": [int(v) for v in s.cumulative_us],
            }
            for key, s in result.series.items()
        },
        "phase_windows": {
            str(phase): [int(lo), int(hi)]
            for phase, (lo, hi) in result.phase_windows.items()
        },
    }


def multi_result_from_payload(payload: Mapping[str, Any]) -> MultiAlpsResult:
    """Inverse of :func:`multi_result_payload` (exact round-trip)."""
    result = MultiAlpsResult()
    for key, s in payload["series"].items():
        result.series[key] = ProcessSeries(
            label=s["label"],
            share=s["share"],
            times_us=np.asarray(s["times_us"], dtype=int),
            cumulative_us=np.asarray(s["cumulative_us"], dtype=int),
        )
    for phase, (lo, hi) in payload["phase_windows"].items():
        result.phase_windows[int(phase)] = (lo, hi)
    return result


def run_multi_alps_experiment_cached(
    *,
    quantum_ms: float = 10.0,
    phase_ends_s: tuple[float, float, float] = (3.0, 6.0, 15.0),
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> MultiAlpsResult:
    """:func:`run_multi_alps_experiment` dispatched through the sweep
    scheduler (cache-aware ``repro run fig7``)."""
    spec = SweepSpec(
        worker=run_multi_cell,
        cells=[
            multi_cell(
                quantum_ms=quantum_ms, phase_ends_s=phase_ends_s, seed=seed
            )
        ],
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return multi_result_from_payload(outcome.values[0])
