"""Sensitivity of the breakdown threshold to ALPS's operation costs.

Section 4.2's model says ALPS breaks down where its overhead meets its
fair share: ``U_Q(N*) = 100/(N*+1)``.  Overhead is linear in the
Table 1 operation costs, so scaling the cost model by k should move the
threshold to roughly where ``k·U_Q(N) = 100/(N+1)``.  This experiment
scales the cost model and checks that the *measured* knee follows the
*predicted* one — validating that the analytic model, not just the
numbers, was reproduced.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

from repro.alps.config import AlpsConfig
from repro.alps.costs import CostModel
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.metrics.breakdown import predicted_threshold
from repro.metrics.overhead import fit_overhead_line
from repro.units import SEC, ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import equal_shares


def scaled_costs(factor: float) -> CostModel:
    """The Table 1 cost model with every operation scaled by ``factor``."""
    base = CostModel()
    return dataclasses.replace(
        base,
        timer_event_us=base.timer_event_us * factor,
        measure_fixed_us=base.measure_fixed_us * factor,
        measure_per_proc_us=base.measure_per_proc_us * factor,
        signal_us=base.signal_us * factor,
    )


@dataclass(slots=True, frozen=True)
class SensitivityPoint:
    """Threshold data for one cost-scale factor."""

    cost_factor: float
    fit_slope: float
    fit_intercept: float
    predicted_n: float
    observed_n: int | None
    points: tuple[tuple[int, float, float], ...]  # (N, overhead%, error%)


def run_sensitivity_point(
    factor: float,
    *,
    quantum_ms: float = 10.0,
    sizes: Sequence[int] = (5, 10, 15, 20, 30, 40, 60),
    cycles: int = 20,
    seed: int = 0,
    error_knee_pct: float = 15.0,
    max_wall_s: float = 120.0,
) -> SensitivityPoint:
    """Sweep N at one cost scale; fit the linear region; locate knees."""
    costs = scaled_costs(factor)
    rows: list[tuple[int, float, float]] = []
    for n in sizes:
        cw = build_controlled_workload(
            equal_shares(n, 5),
            AlpsConfig(quantum_us=ms(quantum_ms), costs=costs),
            seed=seed,
        )
        # The sweep intentionally crosses the breakdown knee, where runs
        # truncate at the wall bound; the knee detection below consumes
        # the partial logs.
        run_for_cycles(
            cw, cycles, max_sim_us=int(max_wall_s * SEC), on_incomplete="ignore"
        )
        overhead = 100.0 * cw.kernel.getrusage(cw.alps_proc.pid) / cw.kernel.now
        err = mean_rms_relative_error(cw.agent.cycle_log, skip=3)
        rows.append((n, overhead, err))
    linear = [
        (n, ov) for n, ov, _e in rows if ov < 0.6 * 100.0 / (n + 1)
    ] or [(rows[0][0], rows[0][1]), (rows[1][0], rows[1][1])]
    fit = fit_overhead_line([n for n, _ in linear], [ov for _, ov in linear])
    predicted = predicted_threshold(fit.slope, max(fit.intercept, 0.0))
    observed = next((n for n, _ov, e in rows if e > error_knee_pct), None)
    return SensitivityPoint(
        cost_factor=factor,
        fit_slope=fit.slope,
        fit_intercept=fit.intercept,
        predicted_n=predicted,
        observed_n=observed,
        points=tuple(rows),
    )


def cost_sensitivity_sweep(
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0), **kwargs
) -> list[SensitivityPoint]:
    """Thresholds across cost scales (slower host ⇒ earlier breakdown)."""
    return [run_sensitivity_point(f, **kwargs) for f in factors]
