"""Sensitivity of the breakdown threshold to ALPS's operation costs.

Section 4.2's model says ALPS breaks down where its overhead meets its
fair share: ``U_Q(N*) = 100/(N*+1)``.  Overhead is linear in the
Table 1 operation costs, so scaling the cost model by k should move the
threshold to roughly where ``k·U_Q(N) = 100/(N+1)``.  This experiment
scales the cost model and checks that the *measured* knee follows the
*predicted* one — validating that the analytic model, not just the
numbers, was reproduced.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.alps.costs import CostModel
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.metrics.breakdown import predicted_threshold
from repro.metrics.overhead import fit_overhead_line
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import SEC, ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import equal_shares

#: Sweep-cache experiment id of one cost-sensitivity cell.
SENSITIVITY_EXPERIMENT = "sec4.sensitivity"


def scaled_costs(factor: float) -> CostModel:
    """The Table 1 cost model with every operation scaled by ``factor``."""
    base = CostModel()
    return dataclasses.replace(
        base,
        timer_event_us=base.timer_event_us * factor,
        measure_fixed_us=base.measure_fixed_us * factor,
        measure_per_proc_us=base.measure_per_proc_us * factor,
        signal_us=base.signal_us * factor,
    )


@dataclass(slots=True, frozen=True)
class SensitivityPoint:
    """Threshold data for one cost-scale factor."""

    cost_factor: float
    fit_slope: float
    fit_intercept: float
    predicted_n: float
    observed_n: int | None
    points: tuple[tuple[int, float, float], ...]  # (N, overhead%, error%)


def run_sensitivity_point(
    factor: float,
    *,
    quantum_ms: float = 10.0,
    sizes: Sequence[int] = (5, 10, 15, 20, 30, 40, 60),
    cycles: int = 20,
    seed: int = 0,
    error_knee_pct: float = 15.0,
    max_wall_s: float = 120.0,
) -> SensitivityPoint:
    """Sweep N at one cost scale; fit the linear region; locate knees."""
    costs = scaled_costs(factor)
    rows: list[tuple[int, float, float]] = []
    for n in sizes:
        cw = build_controlled_workload(
            equal_shares(n, 5),
            AlpsConfig(quantum_us=ms(quantum_ms), costs=costs),
            seed=seed,
        )
        # The sweep intentionally crosses the breakdown knee, where runs
        # truncate at the wall bound; the knee detection below consumes
        # the partial logs.
        run_for_cycles(
            cw, cycles, max_sim_us=int(max_wall_s * SEC), on_incomplete="ignore"
        )
        overhead = 100.0 * cw.kernel.getrusage(cw.alps_proc.pid) / cw.kernel.now
        err = mean_rms_relative_error(cw.agent.cycle_log, skip=3)
        rows.append((n, overhead, err))
    linear = [
        (n, ov) for n, ov, _e in rows if ov < 0.6 * 100.0 / (n + 1)
    ] or [(rows[0][0], rows[0][1]), (rows[1][0], rows[1][1])]
    fit = fit_overhead_line([n for n, _ in linear], [ov for _, ov in linear])
    predicted = predicted_threshold(fit.slope, max(fit.intercept, 0.0))
    observed = next((n for n, _ov, e in rows if e > error_knee_pct), None)
    return SensitivityPoint(
        cost_factor=factor,
        fit_slope=fit.slope,
        fit_intercept=fit.intercept,
        predicted_n=predicted,
        observed_n=observed,
        points=tuple(rows),
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def sensitivity_cell(
    factor: float,
    *,
    quantum_ms: float = 10.0,
    sizes: Sequence[int] = (5, 10, 15, 20, 30, 40, 60),
    cycles: int = 20,
    seed: int = 0,
    error_knee_pct: float = 15.0,
    max_wall_s: float = 120.0,
) -> SweepCell:
    """Declarative form of one cost-scale cell."""
    return SweepCell(
        SENSITIVITY_EXPERIMENT,
        {
            "factor": factor,
            "quantum_ms": quantum_ms,
            "sizes": list(sizes),
            "cycles": cycles,
            "seed": seed,
            "error_knee_pct": error_knee_pct,
            "max_wall_s": max_wall_s,
        },
    )


def run_sensitivity_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one sensitivity cell."""
    point = run_sensitivity_point(
        params["factor"],
        quantum_ms=params["quantum_ms"],
        sizes=tuple(params["sizes"]),
        cycles=params["cycles"],
        seed=params["seed"],
        error_knee_pct=params["error_knee_pct"],
        max_wall_s=params["max_wall_s"],
    )
    return sensitivity_point_payload(point)


def sensitivity_point_payload(point: SensitivityPoint) -> dict:
    """JSON-safe encoding of a :class:`SensitivityPoint`."""
    return {
        "cost_factor": point.cost_factor,
        "fit_slope": point.fit_slope,
        "fit_intercept": point.fit_intercept,
        "predicted_n": point.predicted_n,
        "observed_n": point.observed_n,
        "points": [list(row) for row in point.points],
    }


def sensitivity_point_from_payload(
    payload: Mapping[str, Any],
) -> SensitivityPoint:
    """Inverse of :func:`sensitivity_point_payload` (exact round-trip)."""
    return SensitivityPoint(
        cost_factor=payload["cost_factor"],
        fit_slope=payload["fit_slope"],
        fit_intercept=payload["fit_intercept"],
        predicted_n=payload["predicted_n"],
        observed_n=payload["observed_n"],
        points=tuple(tuple(row) for row in payload["points"]),
    )


def cost_sensitivity_sweep(
    factors: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
    **kwargs,
) -> list[SensitivityPoint]:
    """Thresholds across cost scales (slower host ⇒ earlier breakdown).

    One sweep cell per cost factor, dispatched through
    :func:`repro.sweep.run_sweep` (pooled and cache-aware).
    """
    spec = SweepSpec(
        worker=run_sensitivity_cell,
        cells=[sensitivity_cell(f, **kwargs) for f in factors],
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [sensitivity_point_from_payload(v) for v in outcome.values]
