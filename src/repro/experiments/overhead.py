"""Figure 5: overhead of ALPS across workloads and quantum lengths.

Overhead is the CPU time consumed by the ALPS process divided by the
wall-clock duration of the experiment (Section 3.2).  The same sweep
with ``optimized=False`` provides the Section 2.3 ablation (the paper
reports the optimization cuts overhead by 1.8–5.9×).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution, workload_shares

#: Quantum lengths (ms) plotted in Figure 5.
FIGURE5_QUANTA_MS = (10, 20, 40)

#: Sweep-cache experiment id of one Figure 5 / ablation cell.
OVERHEAD_EXPERIMENT = "fig5.overhead"


@dataclass(slots=True, frozen=True)
class OverheadPoint:
    """One point of Figure 5 (or its unoptimized ablation twin)."""

    model: ShareDistribution
    n: int
    quantum_ms: float
    overhead_pct: float
    optimized: bool
    alps_cpu_us: int
    wall_us: int
    invocations: int
    reads: int


def run_overhead_point(
    model: ShareDistribution,
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 60,
    seed: int = 0,
    optimized: bool = True,
    warmup_cycles: int = 3,
) -> OverheadPoint:
    """Measure ALPS overhead for one workload/quantum combination."""
    shares = workload_shares(model, n)
    cw = build_controlled_workload(
        shares,
        AlpsConfig(quantum_us=ms(quantum_ms), optimized=optimized),
        seed=seed,
    )
    run_for_cycles(cw, cycles + warmup_cycles)
    wall = cw.kernel.now
    alps_cpu = cw.kernel.getrusage(cw.alps_proc.pid)
    return OverheadPoint(
        model=model,
        n=n,
        quantum_ms=quantum_ms,
        overhead_pct=100.0 * alps_cpu / wall,
        optimized=optimized,
        alps_cpu_us=alps_cpu,
        wall_us=wall,
        invocations=cw.agent.invocations,
        reads=cw.agent.reads,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def overhead_cell(
    model: ShareDistribution,
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 60,
    seed: int = 0,
    optimized: bool = True,
    warmup_cycles: int = 3,
) -> SweepCell:
    """Declarative form of one Figure 5 / ablation cell."""
    return SweepCell(
        OVERHEAD_EXPERIMENT,
        {
            "model": model.value,
            "n": n,
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "seed": seed,
            "optimized": optimized,
            "warmup_cycles": warmup_cycles,
        },
    )


def run_overhead_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one overhead cell."""
    point = run_overhead_point(
        ShareDistribution(params["model"]),
        params["n"],
        params["quantum_ms"],
        cycles=params["cycles"],
        seed=params["seed"],
        optimized=params["optimized"],
        warmup_cycles=params["warmup_cycles"],
    )
    return overhead_point_payload(point)


def overhead_point_payload(point: OverheadPoint) -> dict:
    """JSON-safe encoding of an :class:`OverheadPoint`."""
    payload = asdict(point)
    payload["model"] = point.model.value
    return payload


def overhead_point_from_payload(payload: Mapping[str, Any]) -> OverheadPoint:
    """Inverse of :func:`overhead_point_payload` (exact round-trip)."""
    data = dict(payload)
    data["model"] = ShareDistribution(data["model"])
    return OverheadPoint(**data)


def overhead_sweep_spec(
    *,
    models: Sequence[ShareDistribution] = DISTRIBUTIONS,
    sizes: Sequence[int] = (5, 10, 15, 20),
    quanta_ms: Sequence[float] = FIGURE5_QUANTA_MS,
    cycles: int = 60,
    seed: int = 0,
    optimized: bool = True,
) -> SweepSpec:
    """The Figure 5 matrix as a :class:`SweepSpec`."""
    return SweepSpec(
        worker=run_overhead_cell,
        cells=[
            overhead_cell(
                model, n, q, cycles=cycles, seed=seed, optimized=optimized
            )
            for model in models
            for q in quanta_ms
            for n in sizes
        ],
    )


def overhead_sweep(
    *,
    models: Sequence[ShareDistribution] = DISTRIBUTIONS,
    sizes: Sequence[int] = (5, 10, 15, 20),
    quanta_ms: Sequence[float] = FIGURE5_QUANTA_MS,
    cycles: int = 60,
    seed: int = 0,
    optimized: bool = True,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[OverheadPoint]:
    """The Figure 5 sweep: overhead vs N for each model and quantum.

    Dispatches through :func:`repro.sweep.run_sweep` (pooled and
    cache-aware when ``workers``/``cache`` are given).
    """
    spec = overhead_sweep_spec(
        models=models, sizes=sizes, quanta_ms=quanta_ms,
        cycles=cycles, seed=seed, optimized=optimized,
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [overhead_point_from_payload(v) for v in outcome.values]
