"""Figures 8/9 and the Section 4.2 breakdown thresholds.

Equal-share workloads (5 shares per process); the process count grows
until ALPS loses control.  For each quantum length the initial linear
region of overhead-vs-N is fitted (``U_Q(N)``) and the breakdown
threshold predicted from ``U_Q(N*) = 100/(N*+1)`` is compared with the
observed knee in the error curve.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.metrics.breakdown import predicted_threshold
from repro.metrics.overhead import OverheadFit, fit_overhead_line
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import SEC, ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import equal_shares

#: Sweep-cache experiment id of one Figures 8/9 cell.
SCALABILITY_EXPERIMENT = "fig8.scalability"

#: Quantum lengths of Figures 8/9.
SCALABILITY_QUANTA_MS = (10, 20, 40)
#: Default process counts swept (the paper goes to 120).
SCALABILITY_SIZES = (5, 10, 20, 30, 40, 50, 60, 80, 100, 120)
#: Shares per process in the sweep.
SHARES_PER_PROCESS = 5


@dataclass(slots=True, frozen=True)
class ScalabilityPoint:
    """One (N, quantum) cell of Figures 8/9."""

    n: int
    quantum_ms: float
    overhead_pct: float
    mean_rms_error_pct: float
    cycles_completed: int
    wall_us: int


@dataclass(slots=True, frozen=True)
class BreakdownAnalysis:
    """Per-quantum linear fit and thresholds (Section 4.2)."""

    quantum_ms: float
    fit: OverheadFit
    predicted_n: float
    observed_n: Optional[int]


def run_scalability_point(
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 40,
    seed: int = 0,
    max_wall_s: float = 600.0,
) -> ScalabilityPoint:
    """One scalability cell: run for a bounded number of cycles/wall time."""
    cw = build_controlled_workload(
        equal_shares(n, SHARES_PER_PROCESS),
        AlpsConfig(quantum_us=ms(quantum_ms)),
        seed=seed,
    )
    # Past the breakdown threshold cycles stretch enormously and the
    # wall bound cuts the run short on purpose; short logs are the
    # signal this experiment exists to measure.
    run_for_cycles(
        cw, cycles, max_sim_us=int(max_wall_s * SEC), on_incomplete="ignore"
    )
    wall = cw.kernel.now
    overhead = 100.0 * cw.kernel.getrusage(cw.alps_proc.pid) / wall
    err = mean_rms_relative_error(cw.agent.cycle_log, skip=3)
    return ScalabilityPoint(
        n=n,
        quantum_ms=quantum_ms,
        overhead_pct=overhead,
        mean_rms_error_pct=err,
        cycles_completed=len(cw.agent.cycle_log),
        wall_us=wall,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def scalability_cell(
    n: int,
    quantum_ms: float,
    *,
    cycles: int = 40,
    seed: int = 0,
    max_wall_s: float = 600.0,
) -> SweepCell:
    """Declarative form of one Figures 8/9 cell."""
    return SweepCell(
        SCALABILITY_EXPERIMENT,
        {
            "n": n,
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "seed": seed,
            "max_wall_s": max_wall_s,
        },
    )


def run_scalability_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one scalability cell."""
    point = run_scalability_point(
        params["n"],
        params["quantum_ms"],
        cycles=params["cycles"],
        seed=params["seed"],
        max_wall_s=params["max_wall_s"],
    )
    return asdict(point)


def scalability_point_from_payload(
    payload: Mapping[str, Any],
) -> ScalabilityPoint:
    """Rebuild a :class:`ScalabilityPoint` from its cache payload."""
    return ScalabilityPoint(**payload)


def scalability_sweep_spec(
    *,
    sizes: Sequence[int] = SCALABILITY_SIZES,
    quanta_ms: Sequence[float] = SCALABILITY_QUANTA_MS,
    cycles: int = 40,
    seed: int = 0,
    max_wall_s: float = 600.0,
) -> SweepSpec:
    """The Figures 8/9 matrix as a :class:`SweepSpec`."""
    return SweepSpec(
        worker=run_scalability_cell,
        cells=[
            scalability_cell(
                n, q, cycles=cycles, seed=seed, max_wall_s=max_wall_s
            )
            for q in quanta_ms
            for n in sizes
        ],
    )


def scalability_sweep(
    *,
    sizes: Sequence[int] = SCALABILITY_SIZES,
    quanta_ms: Sequence[float] = SCALABILITY_QUANTA_MS,
    cycles: int = 40,
    seed: int = 0,
    max_wall_s: float = 600.0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[ScalabilityPoint]:
    """The full Figures 8/9 sweep (pooled and cache-aware via
    :func:`repro.sweep.run_sweep`)."""
    spec = scalability_sweep_spec(
        sizes=sizes, quanta_ms=quanta_ms, cycles=cycles, seed=seed,
        max_wall_s=max_wall_s,
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [scalability_point_from_payload(v) for v in outcome.values]


def analyze_breakdown(
    points: Sequence[ScalabilityPoint],
    *,
    fit_region_max_overhead_ratio: float = 0.6,
    error_knee_pct: float = 15.0,
) -> list[BreakdownAnalysis]:
    """Fit ``U_Q(N)`` on the pre-breakdown region and locate thresholds.

    The fit uses points whose overhead is below
    ``fit_region_max_overhead_ratio × 100/(N+1)`` (comfortably inside
    the linear region); the observed threshold is the smallest N whose
    mean RMS error exceeds ``error_knee_pct``.
    """
    analyses: list[BreakdownAnalysis] = []
    for q in sorted({p.quantum_ms for p in points}):
        qpoints = sorted(
            (p for p in points if p.quantum_ms == q), key=lambda p: p.n
        )
        linear = [
            p
            for p in qpoints
            if p.overhead_pct < fit_region_max_overhead_ratio * 100.0 / (p.n + 1)
        ]
        if len(linear) < 2:
            linear = qpoints[:2]
        fit = fit_overhead_line(
            [p.n for p in linear], [p.overhead_pct for p in linear]
        )
        predicted = predicted_threshold(fit.slope, max(fit.intercept, 0.0))
        observed: Optional[int] = None
        for p in qpoints:
            if p.mean_rms_error_pct > error_knee_pct:
                observed = p.n
                break
        analyses.append(
            BreakdownAnalysis(
                quantum_ms=q, fit=fit, predicted_n=predicted, observed_n=observed
            )
        )
    return analyses
