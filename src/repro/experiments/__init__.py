"""Experiment runners: one module per paper table/figure.

==========  ==========================================================
Module       Paper artifact
==========  ==========================================================
table1_ops   Table 1 — ALPS primary operation costs
accuracy     Figure 4 — accuracy vs quantum length (Table 2 workloads)
overhead     Figure 5 — overhead vs workload size/distribution
io           Figure 6 — I/O redistribution timeline
multi        Figure 7 + Table 3 — multiple concurrent ALPSs
scalability  Figures 8/9 + Section 4.2 breakdown thresholds
webserver    Section 5 — shared web server isolation
==========  ==========================================================

Every runner is deterministic given its seed(s) and returns plain
dataclasses that the benchmark harness formats.
"""

from repro.experiments.accuracy import AccuracyPoint, run_accuracy_point, accuracy_sweep
from repro.experiments.io import IoExperimentResult, run_io_experiment
from repro.experiments.multi import MultiAlpsResult, run_multi_alps_experiment
from repro.experiments.overhead import OverheadPoint, overhead_sweep, run_overhead_point
from repro.experiments.scalability import ScalabilityPoint, scalability_sweep

__all__ = [
    "AccuracyPoint",
    "IoExperimentResult",
    "MultiAlpsResult",
    "OverheadPoint",
    "ScalabilityPoint",
    "accuracy_sweep",
    "overhead_sweep",
    "run_accuracy_point",
    "run_io_experiment",
    "run_multi_alps_experiment",
    "run_overhead_point",
    "scalability_sweep",
]
