"""Figure 6: proportional redistribution while a process does I/O.

Three processes A, B, C with shares 1, 2, 3 under a 10 ms quantum.
After reaching steady state, B alternates 80 ms of computation with
240 ms of (simulated I/O) sleep.  While B is blocked, ALPS must divide
the CPU 1:3 between A and C; while B is active, 1:2:3 must hold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Optional

import numpy as np

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms, sec
from repro.workloads.io_pattern import compute_sleep_behavior
from repro.workloads.scenarios import ControlledWorkload, build_controlled_workload
from repro.workloads.spinner import spinner_behavior

#: Sweep-cache experiment id of the Figure 6 run.
IO_EXPERIMENT = "fig6.io"


@dataclass(slots=True, frozen=True)
class IoExperimentResult:
    """Per-cycle share percentages for the three processes."""

    cycle_indices: np.ndarray
    share_pct: np.ndarray  # (cycles × 3) — columns A, B, C
    blocked_b: np.ndarray  # bool per cycle: B charged blocked quanta
    io_start_cycle: int

    def mean_shares(self, mask: np.ndarray) -> np.ndarray:
        """Mean share (%) of A, B, C over the masked cycles."""
        if not mask.any():
            return np.full(3, np.nan)
        return self.share_pct[mask].mean(axis=0)

    @property
    def active_mask(self) -> np.ndarray:
        """Cycles after I/O starts in which B was not blocked."""
        idx = self.cycle_indices >= self.io_start_cycle
        return idx & ~self.blocked_b

    @property
    def blocked_mask(self) -> np.ndarray:
        """Cycles after I/O starts in which B was charged as blocked."""
        idx = self.cycle_indices >= self.io_start_cycle
        return idx & self.blocked_b

    @property
    def steady_mask(self) -> np.ndarray:
        """Pre-I/O steady-state cycles (warm-up excluded)."""
        return (self.cycle_indices >= 10) & (
            self.cycle_indices < self.io_start_cycle - 2
        )


def run_io_experiment(
    *,
    quantum_ms: float = 10.0,
    warmup_cpu_s: float = 10.0,
    total_cycles: int = 1200,
    compute_ms: float = 80.0,
    sleep_ms: float = 240.0,
    seed: int = 0,
) -> IoExperimentResult:
    """Run the Section 3.3 I/O experiment and extract per-cycle shares.

    ``warmup_cpu_s`` is process B's initial pure-compute phase; because
    B runs at 1/3 of the CPU, I/O starts at roughly ``3 × warmup`` of
    real time (near cycle 500-600 in the paper's figure).
    """
    behaviors = [
        spinner_behavior(),
        compute_sleep_behavior(
            ms(compute_ms), ms(sleep_ms), warmup_cpu_us=sec(warmup_cpu_s)
        ),
        spinner_behavior(),
    ]
    cw: ControlledWorkload = build_controlled_workload(
        [1, 2, 3],
        AlpsConfig(quantum_us=ms(quantum_ms)),
        seed=seed,
        behaviors=behaviors,
    )
    run_for_cycles(cw, total_cycles)

    log = cw.agent.cycle_log
    n = len(log)
    share_pct = np.zeros((n, 3))
    blocked_b = np.zeros(n, dtype=bool)
    indices = np.zeros(n, dtype=int)
    for row, rec in enumerate(log):
        total = rec.total_consumed
        indices[row] = rec.index
        if total > 0:
            for col in range(3):
                share_pct[row, col] = 100.0 * rec.consumed.get(col, 0) / total
        blocked_b[row] = rec.blocked_quanta.get(1, 0) > 0

    # Locate the onset of I/O: the first cycle in which B is charged
    # blocked quanta (B's warm-up is pure compute).
    blocked_rows = np.flatnonzero(blocked_b)
    io_start = int(indices[blocked_rows[0]]) if blocked_rows.size else n
    return IoExperimentResult(
        cycle_indices=indices,
        share_pct=share_pct,
        blocked_b=blocked_b,
        io_start_cycle=io_start,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: the Figure 6 run as a one-cell sweep
# ---------------------------------------------------------------------------
def io_cell(
    *,
    quantum_ms: float = 10.0,
    warmup_cpu_s: float = 10.0,
    total_cycles: int = 1200,
    compute_ms: float = 80.0,
    sleep_ms: float = 240.0,
    seed: int = 0,
) -> SweepCell:
    """Declarative form of the Figure 6 run (the cache identity)."""
    return SweepCell(
        IO_EXPERIMENT,
        {
            "quantum_ms": quantum_ms,
            "warmup_cpu_s": warmup_cpu_s,
            "total_cycles": total_cycles,
            "compute_ms": compute_ms,
            "sleep_ms": sleep_ms,
            "seed": seed,
        },
    )


def run_io_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for the Figure 6 experiment."""
    result = run_io_experiment(
        quantum_ms=params["quantum_ms"],
        warmup_cpu_s=params["warmup_cpu_s"],
        total_cycles=params["total_cycles"],
        compute_ms=params["compute_ms"],
        sleep_ms=params["sleep_ms"],
        seed=params["seed"],
    )
    return io_result_payload(result)


def io_result_payload(result: IoExperimentResult) -> dict:
    """JSON-safe encoding of an :class:`IoExperimentResult`."""
    return {
        "cycle_indices": [int(v) for v in result.cycle_indices],
        "share_pct": [[float(v) for v in row] for row in result.share_pct],
        "blocked_b": [bool(v) for v in result.blocked_b],
        "io_start_cycle": result.io_start_cycle,
    }


def io_result_from_payload(payload: Mapping[str, Any]) -> IoExperimentResult:
    """Inverse of :func:`io_result_payload` (exact round-trip: the
    arrays are int/float64/bool, which JSON preserves losslessly)."""
    share = np.asarray(payload["share_pct"], dtype=float)
    return IoExperimentResult(
        cycle_indices=np.asarray(payload["cycle_indices"], dtype=int),
        share_pct=share.reshape(len(payload["cycle_indices"]), 3),
        blocked_b=np.asarray(payload["blocked_b"], dtype=bool),
        io_start_cycle=payload["io_start_cycle"],
    )


def run_io_experiment_cached(
    *,
    quantum_ms: float = 10.0,
    warmup_cpu_s: float = 10.0,
    total_cycles: int = 1200,
    compute_ms: float = 80.0,
    sleep_ms: float = 240.0,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> IoExperimentResult:
    """:func:`run_io_experiment` dispatched through the sweep scheduler
    (so repeated ``repro run fig6`` invocations hit the result cache)."""
    spec = SweepSpec(
        worker=run_io_cell,
        cells=[
            io_cell(
                quantum_ms=quantum_ms,
                warmup_cpu_s=warmup_cpu_s,
                total_cycles=total_cycles,
                compute_ms=compute_ms,
                sleep_ms=sleep_ms,
                seed=seed,
            )
        ],
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return io_result_from_payload(outcome.values[0])
