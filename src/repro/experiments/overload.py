"""Past-the-knee overload experiment (docs/overload.md).

Section 4.2 locates the breakdown knee: the smallest equal-share group
size whose accuracy error exceeds 15 % (n = 40 at Q = 10 ms under this
simulator's calibration).  This experiment parks a workload at **twice**
that knee and compares two runs that differ only in whether the
graceful-degradation ladder is armed:

* *control* (ladder disabled) — reproduces the seed's cliff: the agent
  starves in multi-second outages and the error climbs past 60 %.
* *protected* (ladder enabled) — the timer-slip monitor detects the
  first outage, the ladder stretches/coarsens/sheds, and the error
  plateaus at the degraded-enforcement level instead of the cliff.

``bench_overload_degradation.py`` gates the protected error under
``REPRO_OVERLOAD_MAX_ERROR`` and requires the control to stay *above*
``REPRO_OVERLOAD_MIN_CLIFF`` — both halves of the claim are checked.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.experiments.common import run_for_cycles
from repro.metrics.accuracy import mean_rms_relative_error
from repro.overload import OverloadConfig, OverloadGuard
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import SEC, ms
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.shares import equal_shares

#: Sweep-cache experiment id of one overload cell.
OVERLOAD_EXPERIMENT = "overload.past_knee"

#: Observed Section 4.2 knee at Q = 10 ms (first N with error > 15 %).
KNEE_N = 40
#: The experiment's operating point: twice the knee.
PAST_KNEE_N = 2 * KNEE_N
#: Quantum used for the knee calibration and this experiment.
OVERLOAD_QUANTUM_MS = 10.0
#: Shares per process (matches the scalability sweep).
SHARES_PER_PROCESS = 5


@dataclass(slots=True, frozen=True)
class OverloadPoint:
    """One (N, ladder on/off) cell of the past-the-knee experiment."""

    n: int
    quantum_ms: float
    ladder: bool
    mean_rms_error_pct: float
    cycles_completed: int
    wall_us: int
    overhead_pct: float
    # -- guard telemetry (zeros when the ladder is disabled) --------
    engagements: int
    max_rung_seen: int
    sheds: int
    readmits: int
    shed_outstanding: int
    max_degraded_slip_quanta: float
    slip_max_quanta: float


def run_overload_point(
    n: int = PAST_KNEE_N,
    quantum_ms: float = OVERLOAD_QUANTUM_MS,
    *,
    ladder: bool = True,
    cycles: int = 60,
    seed: int = 0,
    max_wall_s: float = 40.0,
    overload_config: Optional[OverloadConfig] = None,
) -> OverloadPoint:
    """One overload cell: equal shares at ``n``, ladder on or off.

    The wall bound matters more than the cycle bound: past the knee the
    control's cycles stretch enormously, and both arms must observe the
    same horizon for their errors to be comparable.
    """
    guard: Optional[OverloadGuard] = None
    if ladder:
        guard = OverloadGuard(overload_config)
    cw = build_controlled_workload(
        equal_shares(n, SHARES_PER_PROCESS),
        AlpsConfig(quantum_us=ms(quantum_ms)),
        seed=seed,
        overload=guard,
    )
    run_for_cycles(
        cw, cycles, max_sim_us=int(max_wall_s * SEC), on_incomplete="ignore"
    )
    wall = cw.kernel.now
    overhead = 100.0 * cw.kernel.getrusage(cw.alps_proc.pid) / wall
    err = mean_rms_relative_error(cw.agent.cycle_log, skip=3)
    if guard is not None:
        telemetry = dict(
            engagements=guard.ladder.engagements,
            max_rung_seen=int(guard.ladder.max_rung_seen),
            sheds=guard.sheds,
            readmits=guard.readmits,
            shed_outstanding=guard.shed_outstanding,
            max_degraded_slip_quanta=guard.max_degraded_slip_quanta,
            slip_max_quanta=guard.slip.max_quanta,
        )
    else:
        telemetry = dict(
            engagements=0,
            max_rung_seen=0,
            sheds=0,
            readmits=0,
            shed_outstanding=0,
            max_degraded_slip_quanta=0.0,
            slip_max_quanta=0.0,
        )
    return OverloadPoint(
        n=n,
        quantum_ms=quantum_ms,
        ladder=ladder,
        mean_rms_error_pct=err,
        cycles_completed=len(cw.agent.cycle_log),
        wall_us=wall,
        overhead_pct=overhead,
        **telemetry,
    )


@dataclass(slots=True, frozen=True)
class OverloadComparison:
    """The protected-vs-control pair the acceptance gate reads."""

    protected: OverloadPoint
    control: OverloadPoint

    @property
    def error_ratio(self) -> float:
        """Protected error as a fraction of the control's cliff."""
        if self.control.mean_rms_error_pct <= 0:
            return float("inf")
        return self.protected.mean_rms_error_pct / self.control.mean_rms_error_pct


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def overload_cell(
    n: int = PAST_KNEE_N,
    quantum_ms: float = OVERLOAD_QUANTUM_MS,
    *,
    ladder: bool = True,
    cycles: int = 60,
    seed: int = 0,
    max_wall_s: float = 40.0,
) -> SweepCell:
    """Declarative form of one overload cell (default guard config —
    custom :class:`OverloadConfig` runs are not cacheable cells)."""
    return SweepCell(
        OVERLOAD_EXPERIMENT,
        {
            "n": n,
            "quantum_ms": quantum_ms,
            "ladder": ladder,
            "cycles": cycles,
            "seed": seed,
            "max_wall_s": max_wall_s,
        },
    )


def run_overload_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one overload cell."""
    point = run_overload_point(
        params["n"],
        params["quantum_ms"],
        ladder=params["ladder"],
        cycles=params["cycles"],
        seed=params["seed"],
        max_wall_s=params["max_wall_s"],
    )
    return asdict(point)


def overload_point_from_payload(payload: Mapping[str, Any]) -> OverloadPoint:
    """Rebuild an :class:`OverloadPoint` from its cache payload."""
    return OverloadPoint(**payload)


def overload_sweep_spec(
    *,
    sizes: Sequence[int] = (PAST_KNEE_N,),
    quantum_ms: float = OVERLOAD_QUANTUM_MS,
    cycles: int = 60,
    seed: int = 0,
    max_wall_s: float = 40.0,
) -> SweepSpec:
    """Ladder-on and ladder-off cells for every size, as one sweep."""
    return SweepSpec(
        worker=run_overload_cell,
        cells=[
            overload_cell(
                n,
                quantum_ms,
                ladder=ladder,
                cycles=cycles,
                seed=seed,
                max_wall_s=max_wall_s,
            )
            for n in sizes
            for ladder in (True, False)
        ],
    )


def overload_sweep(
    *,
    sizes: Sequence[int] = (PAST_KNEE_N,),
    quantum_ms: float = OVERLOAD_QUANTUM_MS,
    cycles: int = 60,
    seed: int = 0,
    max_wall_s: float = 40.0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> list[OverloadPoint]:
    """Run the overload matrix through the sweep scheduler."""
    spec = overload_sweep_spec(
        sizes=sizes,
        quantum_ms=quantum_ms,
        cycles=cycles,
        seed=seed,
        max_wall_s=max_wall_s,
    )
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return [overload_point_from_payload(v) for v in outcome.values]


def run_overload_comparison(
    n: int = PAST_KNEE_N,
    quantum_ms: float = OVERLOAD_QUANTUM_MS,
    *,
    cycles: int = 60,
    seed: int = 0,
    max_wall_s: float = 40.0,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> OverloadComparison:
    """The acceptance pair: protected and control at one size."""
    points = overload_sweep(
        sizes=(n,),
        quantum_ms=quantum_ms,
        cycles=cycles,
        seed=seed,
        max_wall_s=max_wall_s,
        workers=workers,
        cache=cache,
    )
    protected = next(p for p in points if p.ladder)
    control = next(p for p in points if not p.ladder)
    return OverloadComparison(protected=protected, control=control)
