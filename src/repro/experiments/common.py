"""Shared helpers for experiment runners."""

from __future__ import annotations

import warnings
from typing import Literal

from repro.errors import SimulationTruncatedError
from repro.units import SEC
from repro.workloads.scenarios import ControlledWorkload


def run_for_cycles(
    workload: ControlledWorkload,
    cycles: int,
    *,
    max_sim_us: int = 4 * 3600 * SEC,
    chunk_us: int = 5 * SEC,
    on_incomplete: Literal["raise", "warn", "ignore"] = "raise",
) -> int:
    """Advance the simulation until the ALPS has completed ``cycles``.

    ``max_sim_us`` bounds runaway runs (e.g. past the scalability
    breakdown, where cycles stretch enormously).  Hitting that bound
    with cycles still missing is a *truncated* run; it used to pass
    silently and poison downstream statistics with however many cycles
    happened to exist.  ``on_incomplete`` decides what happens instead:

    * ``"raise"`` (default) — raise :class:`SimulationTruncatedError`;
    * ``"warn"`` — emit a ``RuntimeWarning`` and return normally,
      for experiments where partial data is still a result (e.g.
      robustness runs under heavy fault plans);
    * ``"ignore"`` — return silently, for experiments that probe the
      breakdown region on purpose and handle short logs themselves.

    Returns the number of completed cycles at exit.
    """
    if on_incomplete not in ("raise", "warn", "ignore"):
        raise ValueError(f"invalid on_incomplete: {on_incomplete!r}")
    engine = workload.engine
    log = workload.agent.cycle_log
    obs = workload.observer
    observing = obs is not None and obs.enabled
    while len(log) < cycles and engine.now < max_sim_us:
        engine.run_until(engine.now + chunk_us)
        if observing:
            obs.events.emit(
                engine.now,
                "experiment.progress",
                cycles_done=len(log),
                cycles_goal=cycles,
            )
    completed = len(log)
    if completed < cycles and on_incomplete != "ignore":
        goal = f"{cycles} cycles"
        reached = f"{completed} cycles in {engine.now} simulated us"
        if on_incomplete == "raise":
            raise SimulationTruncatedError(goal, reached)
        warnings.warn(
            f"run_for_cycles truncated: wanted {goal}, reached {reached}",
            RuntimeWarning,
            stacklevel=2,
        )
    return completed
