"""Shared helpers for experiment runners."""

from __future__ import annotations

from repro.units import SEC
from repro.workloads.scenarios import ControlledWorkload


def run_for_cycles(
    workload: ControlledWorkload,
    cycles: int,
    *,
    max_sim_us: int = 4 * 3600 * SEC,
    chunk_us: int = 5 * SEC,
) -> None:
    """Advance the simulation until the ALPS has completed ``cycles``.

    ``max_sim_us`` bounds runaway runs (e.g. past the scalability
    breakdown, where cycles stretch enormously).
    """
    engine = workload.engine
    log = workload.agent.cycle_log
    while len(log) < cycles and engine.now < max_sim_us:
        engine.run_until(engine.now + chunk_us)
