"""Prefork-MPM web site model.

Each site is one Apache instance running as its own user with a pool
of worker processes (the paper caps each instance at 50).  Workers
block on the accept queue when idle, and alternate PHP CPU bursts with
blocking database round-trips while serving a request — exactly the
process behaviour ALPS observes and controls in Section 5.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.kernel.actions import Compute, SleepOn
from repro.kernel.behaviors import GeneratorBehavior
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import PageRequest

CompletionCallback = Callable[[PageRequest], None]


@dataclass(slots=True)
class SiteStats:
    """Throughput accounting for one site."""

    completed: int = 0
    completion_times: list[int] = field(default_factory=list)
    total_cpu_served_us: int = 0

    def completions_in(self, lo_us: int, hi_us: int) -> int:
        """Requests completed within the window [lo, hi)."""
        return sum(1 for t in self.completion_times if lo_us <= t < hi_us)


class PreforkSite:
    """One Apache-prefork instance: accept queue plus worker pool."""

    def __init__(
        self,
        kernel: Kernel,
        database: DatabaseServer,
        *,
        name: str,
        uid: int,
        max_workers: int = 50,
    ) -> None:
        self.kernel = kernel
        self.database = database
        self.name = name
        self.uid = uid
        self.accept_channel = f"accept:{name}"
        self.queue: deque[PageRequest] = deque()
        self.stats = SiteStats()
        self.workers: list[Process] = []
        self._on_complete: Optional[CompletionCallback] = None
        for i in range(max_workers):
            proc = kernel.spawn(
                f"{name}-w{i}", self._worker_behavior(), uid=uid
            )
            self.workers.append(proc)

    def set_completion_callback(self, callback: CompletionCallback) -> None:
        """Register the client driver's completion hook."""
        self._on_complete = callback

    def enqueue(self, request: PageRequest) -> None:
        """A connection arrives: queue it and rouse one idle worker."""
        self.queue.append(request)
        self.kernel.wakeup_one(self.accept_channel)

    # ------------------------------------------------------------------
    def _worker_behavior(self) -> GeneratorBehavior:
        site = self

        def run(proc, kapi):
            db_channel = f"db:{site.name}:{proc.pid}"
            while True:
                if not site.queue:
                    yield SleepOn(site.accept_channel)
                    continue
                req = site.queue.popleft()
                yield Compute(req.parse_cpu_us)
                for db_service_us, php_cpu_us in req.rounds:
                    site.database.submit(db_service_us, db_channel)
                    yield SleepOn(db_channel)
                    yield Compute(php_cpu_us)
                yield Compute(req.render_cpu_us)
                req.completed_at = kapi.now
                site.stats.completed += 1
                site.stats.completion_times.append(kapi.now)
                site.stats.total_cpu_served_us += req.total_cpu_us
                if site._on_complete is not None:
                    site._on_complete(req)

        return GeneratorBehavior(run)
