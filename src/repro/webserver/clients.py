"""Closed-loop client population driving one site.

The paper drives each site from a workstation running 325 simultaneous
clients.  Clients are closed-loop: submit a request, wait for the
response, think, repeat.  They run on *other machines*, so they are
pure event-driven entities consuming no web-server CPU.
"""

from __future__ import annotations

import numpy as np

from repro.sim.engine import Engine
from repro.webserver.apache import PreforkSite
from repro.webserver.requests import PageRequest, RequestFactory


class ClosedLoopClients:
    """A population of closed-loop clients for one site."""

    def __init__(
        self,
        engine: Engine,
        site: PreforkSite,
        factory: RequestFactory,
        *,
        n_clients: int = 325,
        mean_think_us: int = 2_000_000,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.engine = engine
        self.site = site
        self.factory = factory
        self.n_clients = n_clients
        self.mean_think_us = mean_think_us
        self.rng = rng if rng is not None else engine.rng.stream(f"clients:{site.name}")
        self.responses: list[tuple[int, int]] = []  # (completed_at, latency)
        site.set_completion_callback(self._on_complete)

    def start(self) -> None:
        """Begin all client loops, staggered over one think time."""
        for cid in range(self.n_clients):
            offset = int(self.rng.uniform(0, self.mean_think_us))
            self.engine.after(
                offset, self._submit, payload=cid, tag=f"client:{self.site.name}"
            )

    def _submit(self, event) -> None:
        cid: int = event.payload
        req = self.factory.make(self.site.name, cid, self.engine.now)
        self.site.enqueue(req)

    def _on_complete(self, req: PageRequest) -> None:
        assert req.completed_at is not None
        self.responses.append(
            (req.completed_at, req.completed_at - req.submitted_at)
        )
        think = max(1, int(self.rng.exponential(self.mean_think_us)))
        self.engine.after(
            think, self._submit, payload=req.client_id, tag=f"client:{self.site.name}"
        )

    def throughput(self, lo_us: int, hi_us: int) -> float:
        """Requests per second completed in the window."""
        window_s = (hi_us - lo_us) / 1_000_000
        if window_s <= 0:
            return 0.0
        return self.site.stats.completions_in(lo_us, hi_us) / window_s
