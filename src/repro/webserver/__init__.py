"""Shared web server substrate (paper Section 5).

Models the paper's testbed: three Apache-prefork sites on one
single-CPU web server machine (each site a different user, up to 50
worker processes), a separate database server machine, and closed-loop
client populations driving a RUBBoS-like dynamic-content workload
(each page request runs PHP CPU bursts interleaved with blocking
database round-trips).

The CPU of the (simulated) web server machine is the bottleneck
resource, as in the paper's characterisation of the bulletin-board
benchmark, so apportioning it with ALPS reapportions throughput.
"""

from repro.webserver.apache import PreforkSite
from repro.webserver.clients import ClosedLoopClients
from repro.webserver.database import DatabaseServer
from repro.webserver.requests import PageRequest, RequestFactory

__all__ = [
    "ClosedLoopClients",
    "DatabaseServer",
    "PageRequest",
    "PreforkSite",
    "RequestFactory",
]
