"""Prefork worker-pool auto-regulation (Apache's MinSpare/MaxSpare).

The paper notes "Apache automatically regulates the number of active
processes up to this maximum".  This module adds that behaviour to
:class:`~repro.webserver.apache.PreforkSite`: a master process wakes
once per second, counts idle workers, forks more when spare capacity is
low, and retires workers when too many idle.  Dynamically spawned
workers belong to the site's uid, so an ALPS scheduling the site as a
:class:`~repro.alps.subjects.UserSubject` adopts them at its next
membership refresh — including stopping newcomers of a suspended user.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernel.actions import Compute, Sleep
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState, Process
from repro.kernel.signals import SIGKILL
from repro.units import SEC
from repro.webserver.apache import PreforkSite


@dataclass(slots=True, frozen=True)
class RegulationPolicy:
    """Apache-prefork-like pool regulation parameters."""

    min_spare: int = 2
    max_spare: int = 6
    start_workers: int = 4
    max_workers: int = 50
    #: How many workers may be forked per regulation round (Apache's
    #: exponential ramp is approximated by a flat burst).
    fork_burst: int = 4
    interval_us: int = 1 * SEC
    #: CPU cost of one regulation pass (master's own work).
    pass_cpu_us: int = 50


class PreforkMaster:
    """Master-process behavior regulating one site's worker pool."""

    def __init__(self, site: PreforkSite, policy: RegulationPolicy) -> None:
        self.site = site
        self.policy = policy
        self.forked = 0
        self.reaped = 0
        self._started = False

    # -- Behavior protocol -------------------------------------------------
    def next_action(self, proc: "Process", kapi):
        if not self._started:
            self._started = True
            return Sleep(self.policy.interval_us, channel="prefork-master")
        self._regulate()
        return Sleep(self.policy.interval_us, channel="prefork-master")

    # -- regulation --------------------------------------------------------
    def _idle_workers(self) -> list:
        return [
            w
            for w in self.site.workers
            if w.alive and w.wait_channel == self.site.accept_channel
        ]

    def _regulate(self) -> None:
        site = self.site
        policy = self.policy
        live = [w for w in site.workers if w.alive]
        idle = self._idle_workers()
        if len(idle) < policy.min_spare and len(live) < policy.max_workers:
            room = policy.max_workers - len(live)
            want = min(policy.fork_burst, room)
            for _ in range(want):
                worker = site.kernel.spawn(
                    f"{site.name}-w{len(site.workers)}",
                    site._worker_behavior(),
                    uid=site.uid,
                )
                site.workers.append(worker)
                self.forked += 1
        elif len(idle) > policy.max_spare and len(live) > policy.start_workers:
            excess = min(
                len(idle) - policy.max_spare, len(live) - policy.start_workers
            )
            for worker in idle[:excess]:
                site.kernel.kill(worker.pid, SIGKILL)
                self.reaped += 1


def regulated_site(
    kernel: Kernel,
    database,
    *,
    name: str,
    uid: int,
    policy: RegulationPolicy | None = None,
) -> tuple[PreforkSite, PreforkMaster, Process]:
    """Create a site that starts small and self-regulates its pool."""
    policy = policy if policy is not None else RegulationPolicy()
    site = PreforkSite(
        kernel, database, name=name, uid=uid, max_workers=policy.start_workers
    )
    master = PreforkMaster(site, policy)
    master_proc = kernel.spawn(f"{name}-master", master, uid=uid)
    return site, master, master_proc
