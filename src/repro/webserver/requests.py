"""RUBBoS-like page request model.

The bulletin-board benchmark's hot path retrieves a story and its
comments: a PHP script issues a few database queries and renders an
HTML page.  We model a request as alternating web-server CPU bursts
(PHP execution) and blocking database round-trips:

    parse → [db query → php chunk]×k → render

CPU amounts land on the *web server* machine; query service times land
on the database machine (plus queueing there).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.units import ms


@dataclass(slots=True)
class PageRequest:
    """One dynamic-content page request."""

    site: str
    client_id: int
    submitted_at: int
    parse_cpu_us: int
    #: (db_service_us, php_cpu_us) per query round.
    rounds: list[tuple[int, int]]
    render_cpu_us: int
    completed_at: Optional[int] = None

    @property
    def total_cpu_us(self) -> int:
        """Total web-server CPU this request needs."""
        return (
            self.parse_cpu_us
            + sum(php for _db, php in self.rounds)
            + self.render_cpu_us
        )


@dataclass(slots=True)
class RequestFactory:
    """Draws page requests from the workload distributions.

    Defaults are tuned so that ~10 ms of web CPU per request makes the
    single web-server CPU the bottleneck at roughly 100 requests/s —
    matching the paper's saturation throughputs (29+30+40 ≈ 99 req/s).
    """

    rng: np.random.Generator
    mean_parse_cpu_us: int = ms(1)
    mean_php_cpu_us: int = ms(3)
    mean_render_cpu_us: int = ms(3)
    mean_db_service_us: int = ms(8)
    db_rounds: int = 2

    def make(self, site: str, client_id: int, now: int) -> PageRequest:
        """Draw one request (exponential CPU bursts, exponential queries)."""
        rounds = [
            (
                self._exp(self.mean_db_service_us),
                self._exp(self.mean_php_cpu_us),
            )
            for _ in range(self.db_rounds)
        ]
        return PageRequest(
            site=site,
            client_id=client_id,
            submitted_at=now,
            parse_cpu_us=self._exp(self.mean_parse_cpu_us),
            rounds=rounds,
            render_cpu_us=self._exp(self.mean_render_cpu_us),
        )

    def _exp(self, mean_us: int) -> int:
        return max(1, int(self.rng.exponential(mean_us)))
