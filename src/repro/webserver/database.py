"""The database server machine.

The paper's MySQL host is a separate dual-CPU machine, so query
processing consumes no web-server CPU — it only adds latency (service
plus queueing).  Modelled as a k-server queue driven by engine events:
a web worker submits a query naming its wakeup channel, blocks, and is
woken when the query completes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine


@dataclass(slots=True)
class _PendingQuery:
    service_us: int
    wake_channel: str


class DatabaseServer:
    """k-server FIFO queueing model of the remote database machine."""

    def __init__(self, engine: Engine, kernel: Kernel, *, capacity: int = 2) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.engine = engine
        self.kernel = kernel
        self.capacity = capacity
        self._queue: deque[_PendingQuery] = deque()
        self._busy = 0
        #: Total queries served (statistics).
        self.completed = 0
        #: Aggregate busy time (µs) across servers (for utilisation).
        self.busy_us = 0

    def submit(self, service_us: int, wake_channel: str) -> None:
        """Submit a query; the sleeper on ``wake_channel`` is woken when
        it completes.  Callers must block *after* submitting (the
        completion fires strictly in the future)."""
        if service_us < 1:
            service_us = 1
        query = _PendingQuery(service_us=service_us, wake_channel=wake_channel)
        if self._busy < self.capacity:
            self._start(query)
        else:
            self._queue.append(query)

    def utilization(self, wall_us: int) -> float:
        """Mean fraction of DB capacity in use over ``wall_us``."""
        if wall_us <= 0:
            return 0.0
        return self.busy_us / (wall_us * self.capacity)

    def _start(self, query: _PendingQuery) -> None:
        self._busy += 1
        self.busy_us += query.service_us
        self.engine.after(
            query.service_us, self._on_done, payload=query, tag="db-done"
        )

    def _on_done(self, event) -> None:
        query: _PendingQuery = event.payload
        self._busy -= 1
        self.completed += 1
        self.kernel.wakeup(query.wake_channel)
        if self._queue and self._busy < self.capacity:
            self._start(self._queue.popleft())
