"""Write-ahead journaling of agent scheduling state.

An ALPS driver's whole worth is the state it accumulates mid-cycle:
per-subject allowances (fairness debt), the cycle position ``tc``, the
eligibility partition, the measurement-postponement indices, and the
progress-read baselines.  PR 1's crash recovery re-baselines all of it,
which silently forfeits the debt.  This module makes that state durable:
each quantum the driver appends one *snapshot record* to a journal, and
a restarted driver replays the journal to resume the same cycle.

Record format (text, line-oriented)::

    ALPSJ1 <seq> <crc32-hex8> <canonical-json-payload>\\n

* ``seq`` is strictly increasing, so a stale record can never shadow a
  newer one;
* the CRC covers ``"<seq> <payload>"``, so a torn or bit-flipped tail
  fails closed;
* the payload is compact sorted-keys JSON, so equal state journals to
  equal bytes (the differential tests rely on this).

Recovery (:func:`recover_journal`) scans forward and *salvages*: a
damaged line — a torn tail, a corrupt CRC, interleaved garbage — is
skipped, and scanning resynchronises on the next record magic.  Each
append is an independent fsync'd operation, so a record whose CRC and
sequence number check out is trustworthy regardless of earlier damage;
stopping at the first bad line (the classic single-writer WAL rule)
would let one torn mid-run append shadow every later snapshot.  A torn
record also eats its newline, merging with the next append onto one
line, so resynchronisation looks *inside* damaged lines for a record
suffix.  Because every record is a *complete* snapshot, the newest
surviving record is the recovery point — there is no redo log to
replay, which is what makes skipping damage safe rather than lossy.

Two journal stores implement the same append surface:

* :class:`MemoryJournal` — deterministic in-memory bytes for the
  simulator, with an injectable fault hook so
  :class:`~repro.faults.injector.FaultInjector` can drop or tear writes;
* :class:`FileJournal` — a real ``O_APPEND`` + ``fsync`` file for
  :class:`~repro.hostos.controller.HostAlps`, compacted atomically
  (write-temp + ``os.replace``) once it accumulates enough superseded
  snapshots.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping, MutableMapping, Optional

from repro.errors import JournalCorruptError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alps.algorithm import AlpsCore

#: Magic prefix naming the record format version.
MAGIC = b"ALPSJ1"

#: Version stamp inside every snapshot payload.  Bump on incompatible
#: payload layout changes; recovery rejects other versions as corrupt.
SNAPSHOT_VERSION = 1

#: A fault hook receives the encoded record and returns what actually
#: reaches the store: the bytes (possibly truncated — a torn write) or
#: ``None`` (the write was lost entirely).  It may not reorder records.
FaultHook = Callable[[bytes], Optional[bytes]]


def encode_record(seq: int, payload: Mapping[str, Any]) -> bytes:
    """One journal line for ``payload`` at sequence number ``seq``."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(f"{seq} {body}".encode())
    return f"{MAGIC.decode()} {seq} {crc:08x} {body}\n".encode()


def _decode_line(line: bytes) -> Optional[tuple[int, dict]]:
    """Parse one journal line; None if it is damaged in any way."""
    parts = line.split(b" ", 3)
    if len(parts) != 4 or parts[0] != MAGIC:
        return None
    try:
        seq = int(parts[1])
        crc = int(parts[2], 16)
        body = parts[3].decode()
    except (ValueError, UnicodeDecodeError):
        return None
    if zlib.crc32(f"{seq} {body}".encode()) != crc:
        return None
    try:
        payload = json.loads(body)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    return seq, payload


@dataclass(slots=True, frozen=True)
class RecoveredJournal:
    """Outcome of scanning a journal's bytes.

    Attributes:
        snapshot: the newest valid record's payload (None if no record
            survived — an empty or fully torn journal).
        last_seq: sequence number of that record (-1 if none).
        records: valid records found.
        valid_bytes: bytes occupied by salvaged records.
        discarded_bytes: damaged or stale bytes skipped while scanning.
    """

    snapshot: Optional[dict]
    last_seq: int
    records: int
    valid_bytes: int
    discarded_bytes: int


def _salvage_line(
    line: bytes, last_seq: int
) -> Optional[tuple[int, dict, int]]:
    """Decode ``line``, resynchronising past damage if necessary.

    A torn record loses its trailing newline, so the *next* good append
    lands on the same line after the torn bytes.  When the line as a
    whole fails to decode, retry from each record magic inside it — a
    valid CRC'd record suffix is trustworthy whatever precedes it.
    Returns ``(seq, payload, start_offset_in_line)`` or ``None``.
    """
    decoded = _decode_line(line)
    start = 0
    while decoded is None:
        idx = line.find(MAGIC, start + 1)
        if idx < 0:
            return None
        decoded = _decode_line(line[idx:])
        start = idx
    if decoded[0] <= last_seq:
        return None  # stale or replayed record can never shadow newer state
    return decoded[0], decoded[1], start


def recover_journal(data: bytes, *, strict: bool = False) -> RecoveredJournal:
    """Scan ``data`` and return the recovery point.

    Tolerant by default: damaged lines (torn writes, bad CRCs, stale
    sequence numbers) are skipped and scanning resynchronises on the
    next valid record, so one mid-journal torn append costs only the
    records it physically damaged.  ``strict=True`` instead raises
    :class:`~repro.errors.JournalCorruptError` whenever any byte had to
    be discarded — for tooling that must notice damage, not heal it.
    """
    offset = 0
    records = 0
    last_seq = -1
    snapshot: Optional[dict] = None
    valid = 0
    size = len(data)
    while offset < size:
        newline = data.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: no terminator, cannot be complete
        decoded = _salvage_line(data[offset:newline], last_seq)
        if decoded is not None:
            last_seq, snapshot, start = decoded
            records += 1
            valid += (newline - (offset + start)) + 1
        offset = newline + 1
    discarded = size - valid
    if strict and discarded:
        raise JournalCorruptError(
            f"{discarded} byte(s) unreadable around "
            f"{records} valid record(s)",
            discarded_bytes=discarded,
        )
    return RecoveredJournal(
        snapshot=snapshot,
        last_seq=last_seq,
        records=records,
        valid_bytes=valid,
        discarded_bytes=discarded,
    )


class MemoryJournal:
    """Deterministic in-memory journal for the simulated agent.

    Models persistent storage that survives the agent's crash (the
    object outlives :meth:`AlpsAgent.restart`).  ``fault_hook`` lets the
    fault injector lose or tear individual appends; everything else is
    exact, so a journal without faults is byte-reproducible for equal
    schedules.
    """

    __slots__ = (
        "_buf",
        "_seq",
        "fault_hook",
        "compact_threshold",
        "appends",
        "compactions",
    )

    def __init__(
        self,
        *,
        fault_hook: Optional[FaultHook] = None,
        compact_threshold: int = 4096,
    ) -> None:
        if compact_threshold < 2:
            raise ValueError("compact_threshold must be >= 2")
        self._buf = bytearray()
        self._seq = 0
        self.fault_hook = fault_hook
        self.compact_threshold = compact_threshold
        #: Appends attempted (including ones a fault hook swallowed).
        self.appends = 0
        #: Times the journal rewrote itself down to the latest record.
        self.compactions = 0

    def append(self, payload: Mapping[str, Any]) -> None:
        """Append one snapshot record (write-ahead: call before enacting)."""
        encoded = encode_record(self._seq, payload)
        self._seq += 1
        self.appends += 1
        if self.fault_hook is not None:
            faulted = self.fault_hook(encoded)
            if faulted is None:
                return  # write lost before reaching the store
            encoded = faulted
        self._buf += encoded
        if self.appends % self.compact_threshold == 0:
            self.compact()

    def compact(self) -> None:
        """Drop superseded records, keeping only the recovery point."""
        rec = recover_journal(bytes(self._buf))
        if rec.snapshot is None:
            return
        self._buf = bytearray(encode_record(rec.last_seq, rec.snapshot))
        self.compactions += 1

    def recover(self, *, strict: bool = False) -> RecoveredJournal:
        """Recovery point of the current contents."""
        rec = recover_journal(bytes(self._buf), strict=strict)
        # Appends after a recovery must keep sequence numbers advancing
        # past anything the store has ever seen.
        if rec.last_seq >= self._seq:  # pragma: no cover - defensive
            self._seq = rec.last_seq + 1
        return rec

    @property
    def data(self) -> bytes:
        """The raw journal bytes (tests and tooling)."""
        return bytes(self._buf)

    def __len__(self) -> int:
        return len(self._buf)


class FileJournal:
    """fsync'd append-only journal file for the live Linux controller.

    Appends are single ``write(2)`` calls on an ``O_APPEND`` descriptor
    followed by ``fsync`` — the strongest atomicity an unprivileged
    process gets; recovery handles the remaining torn-tail window.
    Compaction rewrites a temp file and ``os.replace``\\ s it over the
    journal, which is atomic on POSIX filesystems.
    """

    def __init__(
        self,
        path: str,
        *,
        fsync: bool = True,
        compact_threshold: int = 4096,
    ) -> None:
        if compact_threshold < 2:
            raise ValueError("compact_threshold must be >= 2")
        self.path = os.fspath(path)
        self.fsync = fsync
        self.compact_threshold = compact_threshold
        self.appends = 0
        self.compactions = 0
        existing = self._read_bytes()
        self._seq = recover_journal(existing).last_seq + 1
        self._fd = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o600
        )

    def _read_bytes(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, payload: Mapping[str, Any]) -> None:
        encoded = encode_record(self._seq, payload)
        self._seq += 1
        self.appends += 1
        os.write(self._fd, encoded)
        if self.fsync:
            os.fsync(self._fd)
        if self.appends % self.compact_threshold == 0:
            self.compact()

    def compact(self) -> None:
        rec = recover_journal(self._read_bytes())
        if rec.snapshot is None:
            return
        tmp = self.path + ".compact"
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o600)
        try:
            os.write(fd, encode_record(rec.last_seq, rec.snapshot))
            if self.fsync:
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, self.path)
        # Reopen: the O_APPEND descriptor still points at the old inode.
        os.close(self._fd)
        self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND)
        self.compactions += 1

    def recover(self, *, strict: bool = False) -> RecoveredJournal:
        rec = recover_journal(self._read_bytes(), strict=strict)
        if rec.last_seq >= self._seq:
            self._seq = rec.last_seq + 1
        return rec

    def close(self) -> None:
        if self._fd >= 0:
            os.close(self._fd)
            self._fd = -1

    def __enter__(self) -> "FileJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Snapshot codec for the algorithm core (shared by both drivers)
# ---------------------------------------------------------------------------
def core_snapshot(core: "AlpsCore") -> dict:
    """JSON-safe snapshot of an :class:`AlpsCore`'s scheduling state.

    Subjects are emitted in the core's iteration order — dict order is
    schedule-relevant (``begin_quantum`` walks it), so restore must
    reproduce it exactly.
    """
    from repro.alps.state import Eligibility

    eligible = Eligibility.ELIGIBLE
    return {
        "count": core.count,
        "tc": core.tc,
        "cycles": core.cycles_completed,
        "subjects": [
            [
                sid,
                st.share,
                st.allowance,
                1 if st.state is eligible else 0,
                st.update,
                st.consumed_this_cycle,
                st.blocked_quanta_this_cycle,
                st.measurements,
            ]
            for sid, st in core.subjects.items()
        ],
        "due": list(core._last_due),
    }


def restore_core(core: "AlpsCore", snap: Mapping[str, Any]) -> None:
    """Restore ``core`` to a :func:`core_snapshot` state, in place.

    The attached cycle log is treated as observed history, not
    scheduling state: records indexed at or past the restored cycle
    count (completed after the snapshot was taken) are dropped so the
    next completion cannot duplicate an index.
    """
    from repro.alps.state import Eligibility, SubjectState

    try:
        rows = snap["subjects"]
        count = int(snap["count"])
        tc = int(snap["tc"])
        cycles = int(snap["cycles"])
        due = [int(s) for s in snap.get("due", [])]
        subjects: dict[int, SubjectState] = {}
        total = 0
        for sid, share, allowance, elig, update, consumed, blocked, meas in rows:
            st = SubjectState(share=int(share), allowance=float(allowance))
            st.state = Eligibility.ELIGIBLE if elig else Eligibility.INELIGIBLE
            st.update = int(update)
            st.consumed_this_cycle = int(consumed)
            st.blocked_quanta_this_cycle = int(blocked)
            st.measurements = int(meas)
            subjects[int(sid)] = st
            total += int(share)
    except (KeyError, TypeError, ValueError) as exc:
        raise JournalCorruptError(f"unusable core snapshot: {exc!r}") from exc
    core.subjects = subjects
    core.total_shares = total
    core.count = count
    core.tc = tc
    core.cycles_completed = cycles
    core._last_due = due
    # A restore is a membership-grade change: force the next
    # complete_quantum to run the full partition sweep.
    core._dirty = True
    log = core.cycle_log
    if len(log) > cycles:
        del log.records[cycles:]


def schedule_debt(
    core: "AlpsCore",
    debts_us: Mapping[int, int],
    deferred: MutableMapping[int, int],
) -> int:
    """Register downtime consumption for amortized repayment.

    ``debts_us`` maps subject id → CPU (µs) the subject consumed while
    the driver was down (current reading minus the journaled baseline).
    The debt is *not* charged as a lump: an unbounded one-shot charge
    destabilises the postponement optimization — it knocks ``tc`` far
    negative, the resulting burst of cycle completions hands out large
    credits, large allowances open long measurement-blind windows, and
    the next lump is bigger still (a growing oscillation observed under
    chaos testing).  Instead each debt is merged into ``deferred``, to
    be repaid by :func:`drain_debt` a share-proportional sliver per
    measured quantum, and the debtor gets ``update = count + 1`` so
    repayment starts on the next quantum.  Returns total µs scheduled.
    """
    total = 0
    for sid, debt_us in debts_us.items():
        st = core.subjects.get(sid)
        if st is None or debt_us <= 0:
            continue
        deferred[sid] = deferred.get(sid, 0) + int(debt_us)
        st.update = core.count + 1
        total += int(debt_us)
    return total


def drain_debt(
    deferred: MutableMapping[int, int],
    sid: int,
    share: int,
    quantum_us: int,
    total_shares: int,
) -> int:
    """One measurement's repayment of ``sid``'s deferred downtime debt.

    Removes and returns at most the subject's fair-share rate — one
    share-proportional quantum slice, ``share · Q / S`` µs — so the
    extra charge per quantum never exceeds what a cycle already credits
    back, keeping allowances (and the postponement feedback loop)
    damped while the debt is repaid in full.  Returns 0 when ``sid``
    owes nothing; callers add the result to the quantum's measured
    consumption.
    """
    owed = deferred.get(sid)
    if not owed:
        return 0
    rate = max(1, (share * quantum_us) // max(1, total_shares))
    if owed <= rate:
        del deferred[sid]
        return owed
    deferred[sid] = owed - rate
    return rate


def validate_snapshot(payload: Mapping[str, Any]) -> Mapping[str, Any]:
    """Check a recovered payload's version/shape; raise if unusable."""
    version = payload.get("v")
    if version != SNAPSHOT_VERSION:
        raise JournalCorruptError(
            f"snapshot version {version!r} (expected {SNAPSHOT_VERSION})"
        )
    if "core" not in payload or not isinstance(payload["core"], Mapping):
        raise JournalCorruptError("snapshot has no core section")
    return payload


__all__ = [
    "FileJournal",
    "MemoryJournal",
    "RecoveredJournal",
    "SNAPSHOT_VERSION",
    "core_snapshot",
    "drain_debt",
    "encode_record",
    "recover_journal",
    "restore_core",
    "schedule_debt",
    "validate_snapshot",
]
