"""Crash safety for the ALPS drivers (docs/resilience.md).

Three layers, composable and individually optional:

* :mod:`repro.resilience.journal` — write-ahead journaling of agent
  scheduling state with checksummed records and torn-tail-tolerant
  recovery, so a crashed driver resumes the same cycle with its
  fairness debt intact;
* :mod:`repro.resilience.supervisor` — heartbeats, bounded
  exponential-backoff restarts, and restart-budget escalation into a
  safe resume-all-and-stand-down degraded mode, for both the simulated
  agent and the live Linux controller;
* :mod:`repro.resilience.chaos` + :mod:`repro.resilience.invariants` —
  seeded randomized fault campaigns whose episodes are audited by five
  machine-checked invariants over the obs event log and final kernel
  state (``repro chaos run|report``).
"""

from repro.resilience.invariants import (
    InvariantResult,
    evaluate_episode_invariants,
)
from repro.resilience.journal import (
    FileJournal,
    MemoryJournal,
    RecoveredJournal,
    SNAPSHOT_VERSION,
    core_snapshot,
    encode_record,
    recover_journal,
    restore_core,
    validate_snapshot,
)
from repro.resilience.supervisor import (
    RestartDecision,
    RestartPolicy,
    SupervisedAlpsBehavior,
    SupervisedHostAlps,
    Supervisor,
    SupervisorState,
)

#: Chaos names resolved lazily (PEP 562): :mod:`repro.resilience.chaos`
#: imports the workload/experiment stack, which itself imports the agent
#: — and the agent imports this package for the journal codec.  Lazy
#: loading keeps ``import repro.alps.agent`` cycle-free.
_CHAOS_EXPORTS = (
    "CHAOS_EXPERIMENT",
    "attained_error_pct",
    "ChaosEpisode",
    "ChaosReport",
    "chaos_cell",
    "episode_from_payload",
    "episode_payload",
    "episode_plan",
    "run_chaos_campaign",
    "run_chaos_cell",
    "run_chaos_episode",
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.resilience import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "FileJournal",
    "InvariantResult",
    "MemoryJournal",
    "RecoveredJournal",
    "RestartDecision",
    "RestartPolicy",
    "SNAPSHOT_VERSION",
    "SupervisedAlpsBehavior",
    "SupervisedHostAlps",
    "Supervisor",
    "SupervisorState",
    "core_snapshot",
    "encode_record",
    "evaluate_episode_invariants",
    "recover_journal",
    "restore_core",
    "validate_snapshot",
    *_CHAOS_EXPORTS,
]
