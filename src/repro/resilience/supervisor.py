"""Supervision of ALPS drivers: heartbeats, backoff restarts, stand-down.

The journal (:mod:`repro.resilience.journal`) makes a restarted agent
*correct*; the supervisor makes restarting *safe*.  It is a small
policy state machine shared by both drivers:

* **heartbeats** — every serviced activation beats; a gap wider than
  ``heartbeat_timeout_quanta`` quanta is recorded and reported;
* **bounded exponential backoff with seeded jitter** — each crash
  delays the restart by a growing, capped backoff so a crash-looping
  agent cannot hammer the system with reconciliation work; a seeded
  random jitter fraction decorrelates restarts of co-scheduled agents
  (no thundering herd after a shared outage) while staying fully
  deterministic under the campaign seed;
* **restart-budget escalation** — past ``restart_budget`` crashes the
  supervisor raises :class:`~repro.errors.RestartBudgetExhausted`; the
  caller must then *resume every controlled process and stand down*
  (degraded mode): losing proportional shares for the rest of the run
  beats leaving host processes wedged in SIGSTOP.

Every transition is emitted as a ``supervisor.*`` event on the attached
:class:`repro.obs.Observer`, so chaos invariants can audit liveness and
escalation from the event log alone.

:class:`SupervisedAlpsBehavior` wraps the simulated agent (subsuming
:class:`~repro.faults.injector.FaultableAlpsBehavior`'s fault plumbing);
:class:`SupervisedHostAlps` wraps the live Linux controller in a
recover/run/backoff loop around a :class:`FileJournal`.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import RestartBudgetExhausted, SchedulerConfigError
from repro.kernel.actions import Action, Sleep
from repro.units import MSEC, SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alps.agent import AlpsAgent
    from repro.faults.injector import FaultInjector, FaultyKernelAPI
    from repro.hostos.controller import HostAlps, HostAlpsReport
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.process import Process
    from repro.obs.observer import Observer
    from repro.resilience.journal import FileJournal

#: How long a stood-down simulated agent sleeps between (inert) wakes.
STAND_DOWN_SLEEP_US = 3600 * SEC


@dataclass(slots=True, frozen=True)
class RestartPolicy:
    """Supervision tunables (see module docstring)."""

    #: Backoff added to the first restart's downtime.
    initial_backoff_us: int = 10 * MSEC
    #: Multiplier applied per successive restart.
    backoff_multiplier: float = 2.0
    #: Backoff ceiling.
    max_backoff_us: int = 2 * SEC
    #: Fraction of the granted backoff added as seeded uniform jitter
    #: (0 disables).  Applied on top of the (possibly capped) base, so
    #: restarts stay decorrelated even once the cap is reached; the
    #: deterministic base escalation itself is never jittered.
    backoff_jitter: float = 0.1
    #: Restarts allowed before the supervisor escalates to stand-down.
    restart_budget: int = 5
    #: Heartbeat gap (in quanta) past which a missed-heartbeat event is
    #: recorded.
    heartbeat_timeout_quanta: int = 8

    def __post_init__(self) -> None:
        if self.initial_backoff_us < 0:
            raise SchedulerConfigError("initial_backoff_us must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise SchedulerConfigError("backoff_multiplier must be >= 1")
        if self.max_backoff_us < self.initial_backoff_us:
            raise SchedulerConfigError(
                "max_backoff_us must be >= initial_backoff_us"
            )
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise SchedulerConfigError(
                "backoff_jitter must be in [0, 1]"
            )
        if self.restart_budget < 0:
            raise SchedulerConfigError("restart_budget must be >= 0")
        if self.heartbeat_timeout_quanta < 1:
            raise SchedulerConfigError("heartbeat_timeout_quanta must be >= 1")


class SupervisorState(enum.Enum):
    """Lifecycle of the supervised driver."""

    RUNNING = "running"
    RESTARTING = "restarting"
    DEGRADED = "degraded"


@dataclass(slots=True, frozen=True)
class RestartDecision:
    """What the supervisor granted for one failure."""

    attempt: int
    backoff_us: int


class Supervisor:
    """Policy state machine supervising one ALPS driver.

    Pure bookkeeping: it never touches processes itself.  The hosting
    wrapper calls :meth:`heartbeat` on every driver activation and
    :meth:`on_failure` on every crash, and enacts what comes back.
    """

    def __init__(
        self,
        policy: RestartPolicy = RestartPolicy(),
        *,
        quantum_us: int = 10 * MSEC,
        observer: Optional["Observer"] = None,
        label: str = "alps",
        seed: int = 0,
    ) -> None:
        if quantum_us <= 0:
            raise SchedulerConfigError("quantum_us must be positive")
        self.policy = policy
        self.quantum_us = quantum_us
        self.label = label
        self.seed = seed
        self.state = SupervisorState.RUNNING
        self.restarts = 0
        self.heartbeats = 0
        self.missed_heartbeats = 0
        self.stood_down_at: Optional[int] = None
        self._backoff_us = policy.initial_backoff_us
        self._last_beat: Optional[int] = None
        self._obs = observer
        self._jitter_rng = None

    # -- observability -------------------------------------------------
    def bind_observer(self, observer: Optional["Observer"]) -> None:
        """Late-bind the observability handle (sim wrappers pick it up
        from the kernel on first activation)."""
        if observer is not None and self._obs is None:
            self._obs = observer

    def _emit(self, now: int, kind: str, **fields) -> None:
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(now, kind, label=self.label, **fields)

    def _jitter_us(self, base_us: int) -> int:
        """Seeded uniform jitter in ``[0, jitter · base_us]``.

        The stream mixes the seed with the supervisor label, so two
        supervisors sharing a campaign seed still draw independently —
        that independence is the whole anti-herd point.
        """
        frac = self.policy.backoff_jitter
        if frac <= 0.0 or base_us <= 0:
            return 0
        if self._jitter_rng is None:
            from repro.sim.rng import RngStreams

            self._jitter_rng = RngStreams(self.seed).stream(
                f"supervisor.backoff:{self.label}"
            )
        return int(base_us * frac * self._jitter_rng.random())

    # -- the policy surface --------------------------------------------
    def heartbeat(self, now: int, *, slip_us: int = 0) -> None:
        """Record one driver activation; report oversized gaps.

        ``slip_us`` is the driver's own starvation estimate for this
        wake (the overload layer's cadence slip,
        :attr:`~repro.alps.agent.AlpsAgent.timer_slip_us`).  The monitor
        judges the worse of the wall gap and the reported slip, so a
        starved wake registers as supervisor pressure even when restarts
        have reset the wall-gap baseline under it.
        """
        self.heartbeats += 1
        last = self._last_beat
        self._last_beat = now
        if last is None:
            return
        gap = max(now - last, slip_us)
        limit = self.policy.heartbeat_timeout_quanta * self.quantum_us
        if gap > limit:
            self.missed_heartbeats += 1
            self._emit(
                now, "supervisor.heartbeat_missed", gap_us=gap, slip_us=slip_us
            )

    def on_failure(self, now: int) -> RestartDecision:
        """Grant a backoff restart, or raise once the budget is gone.

        Raises :class:`~repro.errors.RestartBudgetExhausted` when this
        failure exceeds ``restart_budget``; the caller must resume all
        controlled processes and stand the driver down.
        """
        if self.restarts >= self.policy.restart_budget:
            self.state = SupervisorState.DEGRADED
            self.stood_down_at = now
            self._emit(
                now,
                "supervisor.degraded",
                restarts=self.restarts,
                budget=self.policy.restart_budget,
            )
            raise RestartBudgetExhausted(self.restarts, self.policy.restart_budget)
        self.restarts += 1
        backoff = self._backoff_us + self._jitter_us(self._backoff_us)
        self._backoff_us = min(
            int(self._backoff_us * self.policy.backoff_multiplier),
            self.policy.max_backoff_us,
        )
        self.state = SupervisorState.RESTARTING
        self._emit(
            now,
            "supervisor.restart",
            attempt=self.restarts,
            backoff_us=backoff,
        )
        return RestartDecision(attempt=self.restarts, backoff_us=backoff)

    def on_recovered(self, now: int, *, journaled: bool) -> None:
        """The restarted driver is back in service."""
        self.state = SupervisorState.RUNNING
        self._last_beat = now
        self._emit(now, "supervisor.recovered", journaled=journaled)

    def stand_down(self, now: int, *, resumed: int) -> None:
        """Record the degraded-mode entry after the caller resumed all."""
        self.state = SupervisorState.DEGRADED
        if self.stood_down_at is None:
            self.stood_down_at = now
        self._emit(now, "supervisor.stand_down", resumed=resumed)

    @property
    def degraded(self) -> bool:
        """True once the supervisor has stood the driver down."""
        return self.state is SupervisorState.DEGRADED


class SupervisedAlpsBehavior:
    """Simulated-agent wrapper: fault plumbing plus supervision.

    A superset of :class:`~repro.faults.injector.FaultableAlpsBehavior`:
    the agent still sees the injector's faulty system-call surface and
    stretched sleeps, but agent crashes are adjudicated by the
    supervisor — journaled restart with backoff while the budget lasts,
    then resume-all and stand down.  Without an injector the wrapper is
    pure monitoring: it delegates verbatim, so supervision alone is
    schedule-invisible (the differential tests pin this).
    """

    __slots__ = ("agent", "supervisor", "injector", "_fkapi", "_bound")

    def __init__(
        self,
        agent: "AlpsAgent",
        supervisor: Supervisor,
        injector: Optional["FaultInjector"] = None,
    ) -> None:
        self.agent = agent
        self.supervisor = supervisor
        self.injector = injector
        self._fkapi: Optional["FaultyKernelAPI"] = None
        self._bound = False

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        sup = self.supervisor
        if not self._bound:
            sup.bind_observer(getattr(kapi, "observer", None))
            self._bound = True
        if sup.degraded:
            return Sleep(STAND_DOWN_SLEEP_US, channel="alpsdown")
        now = kapi.now
        injector = self.injector
        if injector is not None:
            if self._fkapi is None:
                self._fkapi = injector.wrap(kapi)
            crash = injector.agent_crash_due(now)
            if crash is not None:
                try:
                    decision = sup.on_failure(now)
                except RestartBudgetExhausted:
                    # Escalation: release everything and stand down.  The
                    # supervisor acts through the raw kernel surface —
                    # it is a separate, simpler entity than the agent
                    # whose system calls the plan perturbs.
                    resumed = self.agent.shutdown(kapi)
                    sup.stand_down(now, resumed=resumed)
                    return Sleep(STAND_DOWN_SLEEP_US, channel="alpsdown")
                self.agent.restart()
                sup.on_recovered(
                    now + crash.downtime_us + decision.backoff_us,
                    journaled=self.agent.last_restart_journaled,
                )
                return Sleep(
                    crash.downtime_us + decision.backoff_us,
                    channel="alpsrestart",
                )
        sup.heartbeat(now, slip_us=self.agent.timer_slip_us)
        action = self.agent.next_action(
            proc, self._fkapi if self._fkapi is not None else kapi
        )
        if (
            injector is not None
            and isinstance(action, Sleep)
            and action.channel == "alpstimer"
        ):
            extra = injector.stall_quanta(now)
            if extra:
                action = Sleep(
                    action.duration_us + extra * self.agent.cfg.quantum_us,
                    channel=action.channel,
                )
        return action


class SupervisedHostAlps:
    """Run the live Linux controller under supervision and journaling.

    Wraps ``HostAlps.run`` in a recover/run/backoff loop: a controller
    crash (any exception out of :meth:`HostAlps.run`) is healed by
    constructing a fresh controller, replaying the journal so fairness
    debt survives, sleeping the supervisor's backoff, and continuing
    for the remaining duration.  Once the restart budget is exhausted
    the last controller's ``_resume_all`` has already released every
    process; the wrapper stands down and reports what it has.
    """

    def __init__(
        self,
        shares,
        *,
        journal: "FileJournal",
        policy: RestartPolicy = RestartPolicy(),
        quantum_s: float = 0.05,
        observer: Optional["Observer"] = None,
        host_factory: Optional[Callable[[], "HostAlps"]] = None,
        sleep_fn: Callable[[float], None] = time.sleep,
        now_us: Callable[[], int] = lambda: int(time.monotonic() * 1_000_000),
        **host_kwargs,
    ) -> None:
        from repro.hostos.controller import HostAlps

        self.shares = dict(shares)
        self.journal = journal
        self.quantum_s = quantum_s
        self.observer = observer
        self._sleep = sleep_fn
        self._now_us = now_us
        self._host_kwargs = host_kwargs
        self.supervisor = Supervisor(
            policy,
            quantum_us=max(1, int(quantum_s * 1_000_000)),
            observer=observer,
            label="hostalps",
        )
        self._factory = host_factory or (
            lambda: HostAlps(
                self.shares,
                quantum_s=self.quantum_s,
                journal=self.journal,
                observer=self.observer,
                **self._host_kwargs,
            )
        )
        #: Journaled recoveries actually performed.
        self.recoveries = 0

    def run(self, duration_s: float) -> "HostAlpsReport":
        """Control for ``duration_s`` wall seconds, surviving crashes."""
        deadline = self._now_us() + int(duration_s * 1_000_000)
        report = None
        sup = self.supervisor
        while True:
            remaining = (deadline - self._now_us()) / 1_000_000
            if remaining <= 0:
                break
            controller = self._factory()
            if controller.restore_from_journal():
                self.recoveries += 1
                sup.on_recovered(self._now_us(), journaled=True)
            try:
                report = controller.run(remaining)
                break
            except KeyboardInterrupt:
                raise
            except Exception:
                try:
                    decision = sup.on_failure(self._now_us())
                except RestartBudgetExhausted:
                    # HostAlps.run's finally already ran _resume_all.
                    sup.stand_down(self._now_us(), resumed=0)
                    break
                self._sleep(decision.backoff_us / 1_000_000)
        if report is None:
            from repro.alps.instrumentation import CycleLog
            from repro.hostos.controller import HostAlpsReport

            report = HostAlpsReport(
                duration_s=duration_s,
                cycles=0,
                cycle_log=CycleLog(),
                consumed_us={},
                controller_cpu_us=0,
            )
        return report


__all__ = [
    "RestartDecision",
    "RestartPolicy",
    "STAND_DOWN_SLEEP_US",
    "SupervisedAlpsBehavior",
    "SupervisedHostAlps",
    "Supervisor",
    "SupervisorState",
]
