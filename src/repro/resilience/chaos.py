"""Seeded chaos campaigns with machine-checked invariants.

A *campaign* is a batch of independent *episodes*.  Each episode runs
the standard controlled workload with the full resilience stack on —
state journal, supervision wrapper, observability — under a seeded
:class:`~repro.faults.plan.FaultPlan` that mixes every fault kind the
injector knows, including journal write loss and torn journal writes,
plus agent crashes at fixed fractions of the horizon so journaled
recovery is exercised at every rate.  When the episode ends, the
invariants of :mod:`repro.resilience.invariants` are evaluated
*in-worker* over the final kernel state and obs event log, so a cached
episode carries its verdicts with it.

Three suites share this machinery.  The default ``resilience`` suite is
the crash/signal-loss campaign above.  The ``overload`` suite arms an
:class:`~repro.overload.guard.OverloadGuard` on the agent and cycles
three overload episode flavours on top of the base fault mix —
*arrival storms* that push the group well past the Section 4.2 knee
(and are reaped mid-episode so recovery can be audited), *agent
nice-bombs* that starve the scheduler itself, and *thousand-process
storms* against a bounded group, which exercise the admission queue at
depth without ever inflating the measurement set.  The two overload
invariants (bounded degraded slip, degrade-then-recover round trip)
have teeth only in this suite.

The ``plane`` suite targets the sharded control plane instead of a
single agent: a :class:`~repro.sharetree.plane.ShardedAlpsPlane` with
the :mod:`repro.sharetree.resilience` stack armed runs under
control-plane faults — within-budget cell crashes, migration tears in
both controller-crash and exception mode, and budget-exhausting crash
storms that force re-homing — while a scripted controller mutates
subtree weights to keep real migrations in flight.  It evaluates the
nine-invariant plane battery
(:func:`~repro.resilience.invariants.evaluate_plane_invariants`),
auditing the membership partition after every control step.

Episodes are :class:`~repro.sweep.scheduler.SweepCell`s dispatched
through :func:`~repro.sweep.scheduler.run_sweep`: campaigns parallelize
across cores, re-running a campaign is incremental, and equal seeds
produce byte-identical reports (the CLI determinism contract).

Surfaced as ``repro chaos run|report`` and gated in CI.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace
from typing import Any, Mapping, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.errors import (
    InvariantViolation,
    MigrationTornError,
    NoSuchProcessError,
)
from repro.experiments.common import run_for_cycles
from repro.faults.plan import (
    AgentCrash,
    AgentNiceBomb,
    ArrivalStorm,
    CellCrash,
    FaultPlan,
    MigrationTear,
    default_fault_plan,
)
from repro.obs.observer import Observer
from repro.resilience.invariants import (
    DEFAULT_FAIRNESS_BASE_PCT,
    DEFAULT_FAIRNESS_SLOPE_PCT,
    InvariantResult,
    evaluate_episode_invariants,
    evaluate_plane_invariants,
)
from repro.overload import OverloadConfig, OverloadGuard
from repro.resilience.journal import MemoryJournal
from repro.resilience.supervisor import RestartPolicy, Supervisor
from repro.sweep.cache import SweepCache
from repro.sweep.scheduler import SweepCell, SweepSpec, run_sweep
from repro.units import ms
from repro.workloads.scenarios import build_controlled_workload

#: Sweep-cache experiment id of one chaos episode.
CHAOS_EXPERIMENT = "resilience.chaos"

#: Default fault rates cycled across a campaign's episodes — the same
#: rates the robustness benchmark sweeps (minus the fault-free point,
#: which chaos has nothing to check against).
DEFAULT_RATES = (0.02, 0.05, 0.1, 0.2)
#: Episodes per campaign.
DEFAULT_EPISODES = 8
#: Workload shares (S = 10, cycle = 10 Q — the Table 2 small case).
DEFAULT_SHARES = (1, 2, 3, 4)

#: The campaign suites (see module docstring).
SUITES = ("resilience", "overload", "plane")
#: Overload episode flavours, cycled across an overload campaign.
OVERLOAD_KINDS = ("storm", "nicebomb", "thousand")
#: Workload shares for overload episodes.  No share-1 member: storm
#: arrivals ask for share 1, so the shed selector (lowest share first)
#: releases storm processes before any original worker.
OVERLOAD_SHARES = (2, 3, 4, 5)
#: Fairness bound for overload episodes.  Wider than the resilience
#: suite's: a storm legitimately floods the group (and the thousand
#: flavour floods the whole host) for a quarter of the horizon, so the
#: workers' cumulative split genuinely loosens beyond what signal-level
#: faults alone would cost.
OVERLOAD_FAIRNESS_BASE_PCT = 12.0
OVERLOAD_FAIRNESS_SLOPE_PCT = 520.0

#: Plane episode flavours, cycled across a ``plane`` campaign:
#: within-budget cell crashes (journaled restarts), migration tears
#: (both controller-crash and exception mode), and budget-exhausting
#: crash storms that force a re-home onto surviving cells.
PLANE_KINDS = ("crash", "tear", "rehome")
#: Cells (= simulated CPUs) per plane episode.  Three cells over four
#: subtrees: every re-home has at least two survivors to choose from,
#: and the LPT partition genuinely moves subtrees as weights mutate.
PLANE_CELLS = 3
#: Fairness bound for plane episodes, audited over the *settle window*
#: (the fault-free final quarter of the horizon, after weight mutation
#: stops): worst per-cell renormalised deviation from the tree's
#: effective shares.  Wider than the single-agent suite's: a cell that
#: restarted or adopted re-homed subjects re-baselines mid-window.
PLANE_FAIRNESS_BASE_PCT = 25.0
PLANE_FAIRNESS_SLOPE_PCT = 320.0


def overload_guard_config(kind: str = "storm") -> OverloadConfig:
    """Guard tuning for chaos episodes.

    Chaos episodes differ from the past-the-knee experiment in two ways
    the defaults don't fit.  First, the base fault mix injects agent
    *stalls* (4-quanta oversleeps) at every rate: with the default
    1-quantum engage threshold every stall engages the ladder and the
    rung flaps for the whole episode, so the engage threshold rises
    above a single stall's EWMA spike — genuine breakdown outages are
    tens of quanta and still trip it instantly.  Second, horizons are
    seconds, so the recovery dwell shortens to let the
    degrade-then-recover round trip finish inside the episode once the
    injected load clears.

    The thousand flavour adds a hard membership capacity — its storm
    must *queue*, not degrade — and widens the slip bound to
    non-binding: a thousand-process best-effort herd starves *any*
    process at the kernel's whim, exactly like a nice-bomb, so its
    checked claim is the bounded queue (``admission_queued_peak``
    against an unchanged measurement set), not bounded slip.
    """
    capacity = 8 if kind == "thousand" else None
    slip_bound = 1024.0 if kind == "thousand" else 64.0
    return OverloadConfig(
        capacity=capacity,
        engage_slip_quanta=4.0,
        release_slip_quanta=0.5,
        release_dwell=20,
        max_degraded_slip_quanta=slip_bound,
    )


def overload_episode_plan(
    kind: str, fault_rate: float, *, seed: int, horizon_us: int
) -> FaultPlan:
    """One overload episode's plan: the resilience mix plus one flavour.

    Storms arrive at 1/4 of the horizon and are reaped a quarter of a
    horizon later, leaving the final half for the round-trip recovery
    the invariants audit; a nice-bomb runs for a sixth of the horizon.
    """
    plan = episode_plan(fault_rate, seed=seed, horizon_us=horizon_us)
    if kind == "storm":
        # Push the group well past the Section 4.2 knee.
        return replace(
            plan,
            arrival_storms=(
                ArrivalStorm(
                    time_us=horizon_us // 4,
                    count=48,
                    share=1,
                    lifetime_us=horizon_us // 4,
                ),
            ),
        )
    if kind == "nicebomb":
        return replace(
            plan,
            agent_nice_bombs=(
                AgentNiceBomb(
                    time_us=horizon_us // 4,
                    nice=16,
                    duration_us=horizon_us // 6,
                ),
            ),
        )
    if kind == "thousand":
        # A thousand arrivals against a capacity-8 group: the queue
        # absorbs what the measurement set must never see.
        return replace(
            plan,
            arrival_storms=(
                ArrivalStorm(
                    time_us=horizon_us // 4,
                    count=1000,
                    share=1,
                    lifetime_us=horizon_us // 4,
                ),
            ),
        )
    raise ValueError(f"unknown overload episode kind {kind!r}")


def episode_plan(
    fault_rate: float, *, seed: int, horizon_us: int
) -> FaultPlan:
    """One episode's fault plan: the standard mix plus journal faults.

    On top of :func:`~repro.faults.plan.default_fault_plan`, journal
    appends are lost with probability ``rate`` and torn with ``rate/2``,
    and two agent crashes are pinned at 1/3 and 2/3 of the horizon so
    journaled recovery runs in *every* episode, not only at high rates.
    """
    plan = default_fault_plan(
        fault_rate, seed=seed, horizon_us=horizon_us, agent_crash=False
    )
    if fault_rate == 0:
        return plan
    return replace(
        plan,
        journal_write_fail_prob=min(1.0, fault_rate),
        journal_torn_write_prob=min(1.0, fault_rate / 2),
        agent_crashes=(
            AgentCrash(time_us=horizon_us // 3),
            AgentCrash(time_us=2 * horizon_us // 3),
        ),
    )


def attained_error_pct(cw: Any) -> float:
    """Worst-subject relative deviation of attained CPU fractions (%).

    Cumulative kernel-accounted CPU per worker over the whole episode,
    as a fraction of the group total, against the share-proportional
    target.  Unlike the per-cycle RMS metric, this is the quantity
    journaled recovery actually protects: debt repayment deliberately
    skews individual post-crash cycles, but the *cumulative* split must
    converge back to the shares.  Dead workers (injected crashes) are
    excluded and the targets renormalised over the survivors.
    """
    kapi = cw.kernel.kapi
    attained: list[tuple[int, int]] = []  # (share, usage)
    for proc, share in zip(cw.workers, cw.shares):
        try:
            attained.append((share, kapi.getrusage(proc.pid)))
        except NoSuchProcessError:
            continue
    total_us = sum(usage for _, usage in attained)
    total_shares = sum(share for share, _ in attained)
    if total_us <= 0 or total_shares <= 0:
        return float("nan")
    worst = 0.0
    for share, usage in attained:
        target = share / total_shares
        deviation = abs(usage / total_us - target) / target
        worst = max(worst, deviation)
    return 100.0 * worst


# ---------------------------------------------------------------------------
# Plane suite: sharded-control-plane episodes (docs/share_tree.md)
# ---------------------------------------------------------------------------
def plane_episode_tree():
    """The plane suite's fixed share tree: four tenants, eight leaves.

    Weights 4:3:2:1 across subtrees with a 2:1 pair inside each, so the
    LPT partition over :data:`PLANE_CELLS` cells is non-trivial and a
    single weight mutation regularly moves a subtree between cells.
    """
    from repro.sharetree import ShareTree

    tree = ShareTree()
    sid = 0
    for i, weight in enumerate((4, 3, 2, 1)):
        name = f"t{i}"
        tree.group(name, weight)
        tree.leaf(f"{name}/w0", sid=sid, weight=2)
        tree.leaf(f"{name}/w1", sid=sid + 1, weight=1)
        sid += 2
    return tree


def plane_episode_plan(
    kind: str,
    fault_rate: float,
    *,
    horizon_us: int,
    restart_budget: int,
) -> FaultPlan:
    """One plane episode's control-plane fault plan.

    All flavours run the per-cell state journals with lossy/torn writes
    at the fault rate (so journaled cell restarts exercise recovery
    fallback too); on top of that ``crash`` pins one within-budget
    crash each on cells 0 and 1, ``tear`` pins a controller-crash tear
    and an exception-mode tear, and ``rehome`` hammers cell 0 with
    ``restart_budget + 2`` crashes so escalation *must* re-home its
    subtrees.  Every fault lands before the settle window (the final
    quarter of the horizon) so the fairness audit sees a quiet plane.
    """
    journal = (
        dict(
            journal_write_fail_prob=min(1.0, fault_rate),
            journal_torn_write_prob=min(1.0, fault_rate / 2),
        )
        if fault_rate > 0
        else {}
    )
    if kind == "crash":
        return FaultPlan(
            cell_crashes=(
                CellCrash(time_us=horizon_us // 3, cell=0),
                CellCrash(time_us=2 * horizon_us // 3, cell=1),
            ),
            **journal,
        )
    if kind == "tear":
        return FaultPlan(
            migration_tears=(
                MigrationTear(time_us=horizon_us // 3, after_ops=1, crash=True),
                MigrationTear(
                    time_us=2 * horizon_us // 3, after_ops=2, crash=False
                ),
            ),
            **journal,
        )
    if kind == "rehome":
        return FaultPlan(
            cell_crashes=tuple(
                CellCrash(
                    time_us=horizon_us // 4 + i * (horizon_us // 16), cell=0
                )
                for i in range(restart_budget + 2)
            ),
            **journal,
        )
    raise ValueError(f"unknown plane episode kind {kind!r}")


def audit_plane_partition(plane) -> tuple[list[str], list[str]]:
    """One control-step audit of the plane's membership partition.

    Returns ``(orphan_violations, atomicity_violations)``:
    *atomicity* — every leaf sid owned by exactly one cell (none lost,
    duplicated, or invented); *orphan* — every subtree's leaves
    co-located on a single cell that is not dead.  Called between
    ``run_until`` segments (after the maintenance tick), where the
    partition must always be whole regardless of what was injected.
    """
    orphans: list[str] = []
    atomic: list[str] = []
    res = plane.resilience
    dead = res.dead_cells if res is not None else frozenset()
    members = plane.members()
    owner_count = {leaf.sid: 0 for leaf in plane.tree.leaves()}
    for cell, sids in sorted(members.items()):
        for sid in sorted(sids):
            if sid in owner_count:
                owner_count[sid] += 1
            else:
                atomic.append(f"cell {cell} owns unknown sid {sid}")
    for sid, count in owner_count.items():
        if count == 0:
            atomic.append(f"sid {sid} owned by no cell")
        elif count > 1:
            atomic.append(f"sid {sid} owned by {count} cells")
    for node in plane.tree.subtrees():
        leaf_sids = {leaf.sid for leaf in plane.tree.leaves(node)}
        cells = sorted(
            cell
            for cell, sids in members.items()
            if leaf_sids & sids
        )
        if len(cells) > 1:
            orphans.append(
                f"subtree {node.name} split across cells {cells}"
            )
        elif cells and all(cell in dead for cell in cells):
            orphans.append(
                f"subtree {node.name} owned only by dead cell {cells}"
            )
    return orphans, atomic


def plane_attained_error_pct(
    plane, *, baseline: Optional[Mapping[int, int]] = None
) -> float:
    """Worst per-cell renormalised attained-fraction deviation (%).

    Each cell is one CPU: the plane's fairness claim is proportional
    enforcement *within* a cell's subject set, so targets renormalise
    over each cell's members and the worst deviation across cells is
    reported.  ``baseline`` (sid → rusage µs) restricts the measurement
    to consumption after a snapshot — the settle-window audit.
    """
    kapi = plane.kernel.kapi
    eff = plane.tree.effective_shares()
    worst = 0.0
    measured = False
    for cell, sids in sorted(plane.members().items()):
        rows: list[tuple[int, int]] = []
        for sid in sorted(sids):
            try:
                usage = kapi.getrusage(plane.workers[sid].pid)
            except NoSuchProcessError:
                continue
            if baseline is not None:
                usage -= baseline.get(sid, 0)
            rows.append((eff[sid], usage))
        total_us = sum(usage for _, usage in rows)
        total_shares = sum(share for share, _ in rows)
        if len(rows) < 2 or total_us <= 0 or total_shares <= 0:
            continue
        measured = True
        for share, usage in rows:
            target = share / total_shares
            deviation = abs(usage / total_us - target) / target
            worst = max(worst, deviation)
    return 100.0 * worst if measured else float("nan")


def run_plane_episode(
    seed: int,
    fault_rate: float,
    *,
    plane_kind: str = "crash",
    quantum_ms: float = 10.0,
    cycles: int = 60,
    warmup_cycles: int = 5,
    restart_budget: int = 5,
    cells: int = PLANE_CELLS,
    fairness_base_pct: float = PLANE_FAIRNESS_BASE_PCT,
    fairness_slope_pct: float = PLANE_FAIRNESS_SLOPE_PCT,
) -> ChaosEpisode:
    """Run one plane-suite episode and evaluate all nine invariants.

    The driver models an out-of-band controller: it advances the plane
    in fixed control steps, mutating a random subtree weight every
    third step (forcing real migrations for the tears to land in) until
    the settle point at 3/4 of the horizon, auditing the membership
    partition after every step.  The final quarter runs with frozen
    weights; fairness is measured over that window only, against the
    final effective shares.  A crash-mode tear surfaces as
    :class:`~repro.errors.MigrationTornError` here — exactly as it
    would to a real controller — and the next maintenance tick
    salvages it.
    """
    from repro.resilience.supervisor import RestartPolicy
    from repro.sharetree import ShardedAlpsPlane
    from repro.sharetree.resilience import PlaneResilienceConfig
    from repro.sim.rng import RngStreams

    if plane_kind not in PLANE_KINDS:
        raise ValueError(f"unknown plane episode kind {plane_kind!r}")
    total_cycles = cycles + warmup_cycles
    quantum_us = ms(quantum_ms)
    horizon_us = int(2 * total_cycles * 10 * quantum_us)
    settle_us = (3 * horizon_us) // 4
    plan = plane_episode_plan(
        plane_kind,
        fault_rate,
        horizon_us=horizon_us,
        restart_budget=restart_budget,
    )
    tree = plane_episode_tree()
    plane = ShardedAlpsPlane(
        tree,
        AlpsConfig(quantum_us=quantum_us),
        cells=cells,
        seed=seed,
        observer=Observer(),
        resilience=PlaneResilienceConfig(
            policy=RestartPolicy(restart_budget=restart_budget),
            seed=seed,
            plan=plan,
        ),
    )
    res = plane.resilience
    assert res is not None
    mutate = RngStreams(seed).stream("plane.chaos.mutate")
    subtrees = [node.name for node in tree.subtrees()]
    orphans: list[str] = []
    atomic: list[str] = []
    steps = 24
    step_us = settle_us // steps
    for i in range(1, steps + 1):
        if i % 3 == 0:
            path = subtrees[int(mutate.integers(0, len(subtrees)))]
            weight = int(mutate.integers(1, 9))
            try:
                plane.set_weight(path, weight)
            except MigrationTornError:
                # Crash mode: the journaled intent is salvaged by the
                # next tick.  Exception mode: the readmit guard already
                # rolled the torn subtree back before this propagated.
                pass
        plane.run_until(i * step_us)
        step_orphans, step_atomic = audit_plane_partition(plane)
        orphans.extend(step_orphans)
        atomic.extend(step_atomic)
    kapi = plane.kernel.kapi
    baseline = {
        sid: kapi.getrusage(proc.pid)
        for sid, proc in plane.workers.items()
    }
    plane.run_until(horizon_us)
    step_orphans, step_atomic = audit_plane_partition(plane)
    orphans.extend(step_orphans)
    atomic.extend(step_atomic)
    error_pct = plane_attained_error_pct(plane, baseline=baseline)
    for cell, agent in sorted(plane.agents.items()):
        if not res.is_dead(cell):
            agent.shutdown(kapi)
    invariants = evaluate_plane_invariants(
        plane,
        fault_rate=fault_rate,
        error_pct=error_pct,
        orphan_violations=orphans,
        atomicity_violations=atomic,
        fairness_base_pct=fairness_base_pct,
        fairness_slope_pct=fairness_slope_pct,
    )
    agents = list(plane.agents.values())
    return ChaosEpisode(
        seed=seed,
        fault_rate=fault_rate,
        cycles=max((len(a.cycle_log) for a in agents), default=0),
        error_pct=float(error_pct),
        restarts=sum(a.restarts for a in agents),
        journal_recoveries=sum(a.journal_recoveries for a in agents),
        recovery_fallbacks=sum(a.recovery_fallbacks for a in agents),
        journal_writes_lost=res.journal_writes_lost,
        journal_writes_torn=res.journal_writes_torn,
        supervisor_restarts=res.cell_restarts,
        degraded=bool(res.dead_cells),
        invariants=tuple(invariants),
        suite="plane",
        plane_kind=plane_kind,
        cells=cells,
        dead_cells=len(res.dead_cells),
        rehomes=res.rehomes,
        tears=res.tears_injected,
        salvages=res.salvages,
        leaf_migrations=plane.migrations,
    )


@dataclass(slots=True, frozen=True)
class ChaosEpisode:
    """One episode's outcome: fault census, recovery census, verdicts."""

    seed: int
    fault_rate: float
    cycles: int
    error_pct: float
    # -- recovery census --------------------------------------------
    restarts: int
    journal_recoveries: int
    recovery_fallbacks: int
    journal_writes_lost: int
    journal_writes_torn: int
    supervisor_restarts: int
    degraded: bool
    # -- verdicts ----------------------------------------------------
    invariants: tuple[InvariantResult, ...]
    # -- overload census (zeros outside the overload suite) ----------
    suite: str = "resilience"
    overload_kind: str = ""
    engagements: int = 0
    sheds: int = 0
    max_degraded_slip_quanta: float = 0.0
    admission_queued_peak: int = 0
    # -- plane census (zeros outside the plane suite) ----------------
    plane_kind: str = ""
    cells: int = 0
    dead_cells: int = 0
    rehomes: int = 0
    tears: int = 0
    salvages: int = 0
    leaf_migrations: int = 0

    @property
    def ok(self) -> bool:
        """True when every invariant held."""
        return all(res.ok for res in self.invariants)


def run_chaos_episode(
    seed: int,
    fault_rate: float,
    *,
    suite: str = "resilience",
    overload_kind: str = "storm",
    plane_kind: str = "crash",
    shares: Sequence[int] = DEFAULT_SHARES,
    quantum_ms: float = 10.0,
    cycles: int = 60,
    warmup_cycles: int = 5,
    restart_budget: int = 5,
    fairness_base_pct: float = DEFAULT_FAIRNESS_BASE_PCT,
    fairness_slope_pct: float = DEFAULT_FAIRNESS_SLOPE_PCT,
) -> ChaosEpisode:
    """Run one fully-instrumented episode and evaluate its invariants."""
    if suite not in SUITES:
        raise ValueError(f"unknown chaos suite {suite!r}")
    if suite == "plane":
        # The plane suite has its own driver: a sharded plane under
        # control-plane faults, not a single controlled workload.
        return run_plane_episode(
            seed,
            fault_rate,
            plane_kind=plane_kind,
            quantum_ms=quantum_ms,
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            restart_budget=restart_budget,
            fairness_base_pct=fairness_base_pct,
            fairness_slope_pct=fairness_slope_pct,
        )
    total_cycles = cycles + warmup_cycles
    quantum_us = ms(quantum_ms)
    horizon_us = int(2 * total_cycles * sum(shares) * quantum_us)
    guard: Optional[OverloadGuard] = None
    if suite == "overload":
        plan = overload_episode_plan(
            overload_kind, fault_rate, seed=seed, horizon_us=horizon_us
        )
        guard = OverloadGuard(overload_guard_config(overload_kind))
    else:
        overload_kind = ""
        plan = episode_plan(fault_rate, seed=seed, horizon_us=horizon_us)
    observer = Observer()
    journal = MemoryJournal()
    supervisor = Supervisor(
        RestartPolicy(restart_budget=restart_budget),
        quantum_us=quantum_us,
        label=f"chaos-{seed}",
        seed=seed,
    )
    cw = build_controlled_workload(
        list(shares),
        AlpsConfig(quantum_us=quantum_us),
        seed=seed,
        fault_plan=plan,
        observer=observer,
        journal=journal,
        supervisor=supervisor,
        overload=guard,
    )
    # Heavy plans (or a stood-down agent) may never reach the cycle
    # goal; the horizon bounds the episode and a short log is still an
    # auditable result.
    run_for_cycles(
        cw, total_cycles, max_sim_us=horizon_us, on_incomplete="ignore"
    )
    cw.agent.shutdown(cw.kernel.kapi)
    error_pct = attained_error_pct(cw)
    invariants = evaluate_episode_invariants(
        cw,
        fault_rate=fault_rate,
        error_pct=error_pct,
        fairness_base_pct=fairness_base_pct,
        fairness_slope_pct=fairness_slope_pct,
    )
    injector = cw.injector
    return ChaosEpisode(
        seed=seed,
        fault_rate=fault_rate,
        cycles=len(cw.agent.cycle_log),
        error_pct=float(error_pct),
        restarts=cw.agent.restarts,
        journal_recoveries=cw.agent.journal_recoveries,
        recovery_fallbacks=cw.agent.recovery_fallbacks,
        journal_writes_lost=injector.journal_writes_lost if injector else 0,
        journal_writes_torn=injector.journal_writes_torn if injector else 0,
        supervisor_restarts=supervisor.restarts,
        degraded=supervisor.degraded,
        invariants=tuple(invariants),
        suite=suite,
        overload_kind=overload_kind,
        engagements=guard.ladder.engagements if guard else 0,
        sheds=guard.sheds if guard else 0,
        max_degraded_slip_quanta=(
            guard.max_degraded_slip_quanta if guard else 0.0
        ),
        admission_queued_peak=guard.admission.queued_peak if guard else 0,
    )


# ---------------------------------------------------------------------------
# Sweep-scheduler integration: cell params, worker, payload codec
# ---------------------------------------------------------------------------
def chaos_cell(
    seed: int,
    fault_rate: float,
    *,
    suite: str = "resilience",
    overload_kind: str = "storm",
    plane_kind: str = "crash",
    shares: Sequence[int] = DEFAULT_SHARES,
    quantum_ms: float = 10.0,
    cycles: int = 60,
    warmup_cycles: int = 5,
    restart_budget: int = 5,
    fairness_base_pct: float = DEFAULT_FAIRNESS_BASE_PCT,
    fairness_slope_pct: float = DEFAULT_FAIRNESS_SLOPE_PCT,
) -> SweepCell:
    """Declarative form of one chaos episode."""
    return SweepCell(
        CHAOS_EXPERIMENT,
        {
            "seed": seed,
            "fault_rate": fault_rate,
            "suite": suite,
            "overload_kind": overload_kind,
            "plane_kind": plane_kind,
            "shares": list(shares),
            "quantum_ms": quantum_ms,
            "cycles": cycles,
            "warmup_cycles": warmup_cycles,
            "restart_budget": restart_budget,
            "fairness_base_pct": fairness_base_pct,
            "fairness_slope_pct": fairness_slope_pct,
        },
    )


def run_chaos_cell(params: Mapping[str, Any]) -> dict:
    """Module-level sweep worker for one chaos episode."""
    episode = run_chaos_episode(
        params["seed"],
        params["fault_rate"],
        suite=params.get("suite", "resilience"),
        overload_kind=params.get("overload_kind", "storm"),
        plane_kind=params.get("plane_kind", "crash"),
        shares=tuple(params["shares"]),
        quantum_ms=params["quantum_ms"],
        cycles=params["cycles"],
        warmup_cycles=params["warmup_cycles"],
        restart_budget=params["restart_budget"],
        fairness_base_pct=params["fairness_base_pct"],
        fairness_slope_pct=params["fairness_slope_pct"],
    )
    return episode_payload(episode)


def episode_payload(episode: ChaosEpisode) -> dict:
    """JSON-safe encoding of a :class:`ChaosEpisode`."""
    payload = asdict(episode)
    payload["invariants"] = [
        {"name": res.name, "ok": res.ok, "detail": res.detail}
        for res in episode.invariants
    ]
    return payload


def episode_from_payload(payload: Mapping[str, Any]) -> ChaosEpisode:
    """Inverse of :func:`episode_payload` (exact round-trip)."""
    data = dict(payload)
    data["invariants"] = tuple(
        InvariantResult(res["name"], bool(res["ok"]), res["detail"])
        for res in data["invariants"]
    )
    return ChaosEpisode(**data)


@dataclass(slots=True)
class ChaosReport:
    """A finished campaign: every episode plus aggregate verdicts."""

    campaign_seed: int
    episodes: list[ChaosEpisode]

    @property
    def ok(self) -> bool:
        """True when every invariant of every episode held."""
        return all(ep.ok for ep in self.episodes)

    def violations(self) -> list[tuple[int, str, str]]:
        """``(episode_index, invariant, detail)`` for every failure."""
        out: list[tuple[int, str, str]] = []
        for i, ep in enumerate(self.episodes):
            for res in ep.invariants:
                if not res.ok:
                    out.append((i, res.name, res.detail))
        return out

    def raise_on_violation(self) -> None:
        """Raise :class:`~repro.errors.InvariantViolation` unless clean."""
        violations = self.violations()
        if violations:
            raise InvariantViolation(violations)

    def format_table(self) -> str:
        """Stable text rendering (equal seeds render identical bytes)."""
        overload = any(ep.suite == "overload" for ep in self.episodes)
        plane = any(ep.suite == "plane" for ep in self.episodes)
        kind_hdr = f" {'kind':>9} {'shed':>4}" if overload else ""
        if plane:
            kind_hdr += (
                f" {'kind':>7} {'dead':>4} {'rehome':>6} "
                f"{'tears':>5} {'moves':>5}"
            )
        lines = [
            f"chaos campaign seed={self.campaign_seed} "
            f"episodes={len(self.episodes)} "
            f"verdict={'PASS' if self.ok else 'FAIL'}",
            f"{'ep':>3} {'seed':>6} {'rate':>5}{kind_hdr} {'cycles':>6} "
            f"{'err%':>7} {'restarts':>8} {'journaled':>9} "
            f"{'fallback':>8} {'verdict':>7}",
        ]
        for i, ep in enumerate(self.episodes):
            kind_col = (
                f" {ep.overload_kind:>9} {ep.sheds:>4}" if overload else ""
            )
            if plane:
                kind_col += (
                    f" {ep.plane_kind:>7} {ep.dead_cells:>4} "
                    f"{ep.rehomes:>6} {ep.tears:>5} {ep.leaf_migrations:>5}"
                )
            lines.append(
                f"{i:>3} {ep.seed:>6} {ep.fault_rate:>5.2f}{kind_col} "
                f"{ep.cycles:>6} "
                f"{ep.error_pct:>7.2f} {ep.restarts:>8} "
                f"{ep.journal_recoveries:>9} {ep.recovery_fallbacks:>8} "
                f"{'ok' if ep.ok else 'FAIL':>7}"
            )
            for res in ep.invariants:
                if not res.ok:
                    lines.append(f"      ! {res.name}: {res.detail}")
        return "\n".join(lines)


def run_chaos_campaign(
    seed: int = 0,
    *,
    suite: str = "resilience",
    episodes: int = DEFAULT_EPISODES,
    rates: Sequence[float] = DEFAULT_RATES,
    shares: Optional[Sequence[int]] = None,
    quantum_ms: float = 10.0,
    cycles: int = 60,
    warmup_cycles: int = 5,
    restart_budget: int = 5,
    fairness_base_pct: Optional[float] = None,
    fairness_slope_pct: Optional[float] = None,
    workers: Optional[int] = None,
    cache: Optional[SweepCache] = None,
) -> ChaosReport:
    """Run one seeded campaign: ``episodes`` cells cycling over ``rates``.

    Episode *i* uses fault rate ``rates[i % len(rates)]`` and seed
    ``seed * 1000 + i``, so campaigns with different seeds never share
    an episode and ``repro chaos run --seed N`` is fully deterministic.
    The ``overload`` suite additionally cycles episode flavours through
    :data:`OVERLOAD_KINDS` and defaults to :data:`OVERLOAD_SHARES`.
    """
    if suite not in SUITES:
        raise ValueError(f"unknown chaos suite {suite!r}")
    if episodes < 1:
        raise ValueError(f"episodes must be >= 1, got {episodes}")
    if not rates:
        raise ValueError("at least one fault rate is required")
    if shares is None:
        shares = OVERLOAD_SHARES if suite == "overload" else DEFAULT_SHARES
    if fairness_base_pct is None:
        fairness_base_pct = {
            "overload": OVERLOAD_FAIRNESS_BASE_PCT,
            "plane": PLANE_FAIRNESS_BASE_PCT,
        }.get(suite, DEFAULT_FAIRNESS_BASE_PCT)
    if fairness_slope_pct is None:
        fairness_slope_pct = {
            "overload": OVERLOAD_FAIRNESS_SLOPE_PCT,
            "plane": PLANE_FAIRNESS_SLOPE_PCT,
        }.get(suite, DEFAULT_FAIRNESS_SLOPE_PCT)
    cells = [
        chaos_cell(
            seed * 1000 + i,
            rates[i % len(rates)],
            suite=suite,
            overload_kind=OVERLOAD_KINDS[i % len(OVERLOAD_KINDS)],
            plane_kind=PLANE_KINDS[i % len(PLANE_KINDS)],
            shares=shares,
            quantum_ms=quantum_ms,
            cycles=cycles,
            warmup_cycles=warmup_cycles,
            restart_budget=restart_budget,
            fairness_base_pct=fairness_base_pct,
            fairness_slope_pct=fairness_slope_pct,
        )
        for i in range(episodes)
    ]
    spec = SweepSpec(worker=run_chaos_cell, cells=cells)
    outcome = run_sweep(spec, workers=workers, cache=cache)
    return ChaosReport(
        campaign_seed=seed,
        episodes=[episode_from_payload(v) for v in outcome.values],
    )


__all__ = [
    "CHAOS_EXPERIMENT",
    "ChaosEpisode",
    "ChaosReport",
    "DEFAULT_EPISODES",
    "DEFAULT_RATES",
    "DEFAULT_SHARES",
    "OVERLOAD_KINDS",
    "OVERLOAD_SHARES",
    "PLANE_CELLS",
    "PLANE_KINDS",
    "SUITES",
    "attained_error_pct",
    "audit_plane_partition",
    "chaos_cell",
    "episode_from_payload",
    "episode_payload",
    "episode_plan",
    "overload_episode_plan",
    "overload_guard_config",
    "plane_attained_error_pct",
    "plane_episode_plan",
    "plane_episode_tree",
    "run_chaos_campaign",
    "run_chaos_cell",
    "run_chaos_episode",
    "run_plane_episode",
]
