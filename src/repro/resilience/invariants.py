"""Machine-checked invariants over one chaos episode.

A chaos campaign is only as good as what it *checks*.  Each episode
(one seeded fault plan over one controlled workload) finishes with the
safety/liveness properties below evaluated against the workload's
final kernel state, its obs event log, and the fault injector's trace.
All must hold at every fault rate the robustness benchmark sweeps;
a failure is a real resilience bug, not noise — each invariant is
conditioned on what the plan actually injected.

The invariants:

``no_lost_process``
    Every controlled process that is dead at the end of the episode
    died to an *injected* crash (a ``crash pid=N`` record in the fault
    trace).  Anything else lost a process to the scheduler itself.
``no_wedged_process``
    After shutdown, no live controlled process remains job-control
    stopped.  The PR 1 guarantee, now audited under supervision and
    journaled restarts too.
``cpu_conservation``
    The agent's accounting never exceeds physics: per live pid, the
    agent's cumulative measured consumption is bounded by the kernel's
    own rusage counter, and the kernel's total consumption is bounded
    by elapsed virtual time × CPUs.
``bounded_fairness``
    The worst subject's relative deviation of *cumulative* attained-CPU
    fraction from its share-proportional target stays under an affine
    bound in the fault rate: ``error ≤ base + slope · rate`` (percent).
    The journaled-recovery claim, as an inequality: individual
    post-crash cycles deliberately deviate while debt is repaid, but
    the cumulative split must converge back to the shares.
``agent_liveness``
    Unless the supervisor legitimately stood the agent down (restart
    budget exhausted), the agent serviced a quantum timer within the
    liveness window of the episode's end — crashes plus backoff never
    silence it permanently.

Two more apply to episodes run with an overload guard attached
(docs/overload.md); both report trivially-true when no guard was
armed:

``bounded_timer_slip``
    Once the degradation ladder is engaged, per-wake timer slip stays
    under the guard's configured bound — degradation actually buys the
    stability it trades accuracy for.  Conditioned on the plan: while
    an injected nice-bomb deprioritises the *agent itself*, no amount
    of stretching or shedding can bound its slip, so bombed episodes
    skip this check.
``degrade_recover_roundtrip``
    If the ladder engaged during the episode, then by the end — after
    the plan's storms were reaped and bombs expired — it walked back to
    NORMAL with every shed member readmitted or accounted dead, and the
    measurement cadence restored (postpone boost 1): degradation is a
    round trip, not a ratchet.

The ``plane`` chaos suite (docs/share_tree.md, "Plane fault
tolerance") evaluates plane-aware analogues of the five core checks
against a :class:`~repro.sharetree.plane.ShardedAlpsPlane` plus two
invariants of its own, for nine total
(:func:`evaluate_plane_invariants`):

``no_orphaned_subtree``
    At every audited control step, every leaf is owned by exactly one
    *live* cell and every subtree's leaves are co-located — cell death
    and re-homing never strand a tenant without an enforcing agent.
``migration_atomicity``
    The membership partition is conserved across arbitrary crash
    points: no sid is ever lost, duplicated, or invented, even when a
    :class:`~repro.faults.plan.MigrationTear` kills the controller
    mid-batch and salvage replays the journaled intent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.errors import NoSuchProcessError
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sharetree.plane import ShardedAlpsPlane
    from repro.workloads.scenarios import ControlledWorkload

#: Fairness bound intercept (percent error at fault rate 0).  Clean
#: runs land under 1%; the intercept leaves slack for startup skew.
DEFAULT_FAIRNESS_BASE_PCT = 8.0
#: Fairness bound slope (percent error per unit fault rate).  Dominated
#: by the heaviest sweep point (rate 0.2: one in five control signals
#: is dropped outright, so proportions genuinely loosen — the measured
#: worst case is ~45% with salvage recovery and amortized debt
#: repayment keeping it bounded; the slope leaves seed headroom).
DEFAULT_FAIRNESS_SLOPE_PCT = 320.0
#: How recently (µs before episode end) the agent must have ticked.
DEFAULT_LIVENESS_WINDOW_US = 2 * SEC


@dataclass(slots=True, frozen=True)
class InvariantResult:
    """One invariant's verdict for one episode."""

    name: str
    ok: bool
    detail: str


def _crashed_pids(cw: "ControlledWorkload") -> set[int]:
    """pids the injector deliberately killed (from its fault trace)."""
    pids: set[int] = set()
    if cw.injector is None:
        return pids
    for rec in cw.injector.trace:
        if rec.kind == "crash" and rec.detail.startswith("pid="):
            try:
                pids.add(int(rec.detail[4:]))
            except ValueError:  # pragma: no cover - trace is ours
                continue
    return pids


def check_no_lost_process(cw: "ControlledWorkload") -> InvariantResult:
    """Every dead controlled process died to an injected crash."""
    crashed = _crashed_pids(cw)
    kapi = cw.kernel.kapi
    lost = []
    for proc in cw.workers:
        if not kapi.pid_exists(proc.pid) and proc.pid not in crashed:
            lost.append(proc.pid)
    return InvariantResult(
        "no_lost_process",
        not lost,
        "all deaths injected" if not lost else f"unexplained deaths: {lost}",
    )


def check_no_wedged_process(cw: "ControlledWorkload") -> InvariantResult:
    """No live controlled process remains stopped after shutdown."""
    wedged = []
    for proc in cw.workers:
        try:
            if cw.kernel.is_stopped(proc.pid):
                wedged.append(proc.pid)
        except Exception:
            continue  # dead — cannot be wedged
    return InvariantResult(
        "no_wedged_process",
        not wedged,
        "no wedged pids" if not wedged else f"wedged pids: {wedged}",
    )


def check_cpu_conservation(cw: "ControlledWorkload") -> InvariantResult:
    """Agent accounting ≤ kernel accounting ≤ time × CPUs."""
    kapi = cw.kernel.kapi
    total_kernel_us = 0
    for sid, subj in cw.agent.subjects.items():
        pid = getattr(subj, "pid", None)
        if pid is None:
            continue
        try:
            kernel_us = kapi.getrusage(pid)
        except NoSuchProcessError:
            continue
        total_kernel_us += kernel_us
        agent_us = cw.agent.cumulative_cpu_of(sid)
        if agent_us > kernel_us:
            return InvariantResult(
                "cpu_conservation",
                False,
                f"agent measured {agent_us}us for sid {sid} "
                f"but kernel accounted only {kernel_us}us",
            )
    ncpus = cw.kernel.cfg.ncpus
    budget = cw.engine.now * ncpus
    if total_kernel_us > budget:
        return InvariantResult(
            "cpu_conservation",
            False,
            f"kernel accounted {total_kernel_us}us over a "
            f"{budget}us budget ({ncpus} cpu(s))",
        )
    return InvariantResult(
        "cpu_conservation",
        True,
        f"{total_kernel_us}us within {budget}us budget",
    )


def check_bounded_fairness(
    fault_rate: float,
    error_pct: float,
    *,
    base_pct: float = DEFAULT_FAIRNESS_BASE_PCT,
    slope_pct: float = DEFAULT_FAIRNESS_SLOPE_PCT,
) -> InvariantResult:
    """Cumulative attained-fraction error under ``base + slope · rate``.

    ``error_pct`` is :func:`repro.resilience.chaos.attained_error_pct`:
    the worst subject's relative deviation of cumulative attained CPU
    from its share-proportional target, in percent.
    """
    bound = base_pct + slope_pct * fault_rate
    ok = error_pct == error_pct and error_pct <= bound  # NaN fails
    return InvariantResult(
        "bounded_fairness",
        ok,
        f"error {error_pct:.2f}% vs bound {bound:.2f}% at rate {fault_rate}",
    )


def check_agent_liveness(
    cw: "ControlledWorkload",
    *,
    window_us: int = DEFAULT_LIVENESS_WINDOW_US,
) -> InvariantResult:
    """The agent kept servicing quanta (unless legitimately degraded)."""
    if cw.supervisor is not None and cw.supervisor.degraded:
        return InvariantResult(
            "agent_liveness", True, "supervisor stood the agent down"
        )
    obs = cw.observer
    if obs is None:
        return InvariantResult(
            "agent_liveness", False, "no observer attached: cannot audit"
        )
    ticks = obs.events.of_kind("quantum.tick")
    if not ticks:
        return InvariantResult("agent_liveness", False, "agent never ticked")
    last = ticks[-1].time_us
    gap = cw.engine.now - last
    return InvariantResult(
        "agent_liveness",
        gap <= window_us,
        f"last tick {gap}us before episode end (window {window_us}us)",
    )


def check_bounded_timer_slip(cw: "ControlledWorkload") -> InvariantResult:
    """Degraded-mode slip stayed within the guard's configured bound."""
    guard = cw.overload
    if guard is None:
        return InvariantResult(
            "bounded_timer_slip", True, "n/a: no overload guard"
        )
    plan = cw.injector.plan if cw.injector is not None else None
    if plan is not None and plan.agent_nice_bombs:
        return InvariantResult(
            "bounded_timer_slip",
            True,
            "n/a: agent nice-bomb injected (agent-external suppression)",
        )
    if guard.degraded_wakes == 0:
        return InvariantResult(
            "bounded_timer_slip", True, "ladder never engaged"
        )
    bound = guard.config.max_degraded_slip_quanta
    return InvariantResult(
        "bounded_timer_slip",
        guard.slip_bound_ok,
        f"max degraded slip {guard.max_degraded_slip_quanta:.1f}q "
        f"vs bound {bound:.1f}q over {guard.degraded_wakes} degraded wakes",
    )


def check_degrade_recover_roundtrip(
    cw: "ControlledWorkload",
) -> InvariantResult:
    """An engaged ladder walked all the way back once the load cleared."""
    guard = cw.overload
    if guard is None:
        return InvariantResult(
            "degrade_recover_roundtrip", True, "n/a: no overload guard"
        )
    if guard.ladder.engagements == 0:
        return InvariantResult(
            "degrade_recover_roundtrip", True, "ladder never engaged"
        )
    if not guard.fully_recovered:
        return InvariantResult(
            "degrade_recover_roundtrip",
            False,
            f"still degraded at episode end: rung={int(guard.rung)} "
            f"shed_outstanding={guard.shed_outstanding} "
            f"after {guard.ladder.engagements} engagement(s)",
        )
    boost = cw.agent.core.postpone_boost
    if boost != 1:
        return InvariantResult(
            "degrade_recover_roundtrip",
            False,
            f"recovered rung but postpone boost still {boost}",
        )
    return InvariantResult(
        "degrade_recover_roundtrip",
        True,
        f"{guard.ladder.engagements} engagement(s), "
        f"{guard.sheds} shed(s), full enforcement restored",
    )


# ---------------------------------------------------------------------------
# Plane-suite invariants (repro.sharetree.resilience, docs/share_tree.md)
# ---------------------------------------------------------------------------
def check_plane_no_lost_process(plane: "ShardedAlpsPlane") -> InvariantResult:
    """Every leaf worker survived: plane plans never kill workers, so a
    dead worker means the control plane itself lost a process."""
    kapi = plane.kernel.kapi
    lost = [
        proc.pid
        for proc in plane.workers.values()
        if not kapi.pid_exists(proc.pid)
    ]
    return InvariantResult(
        "no_lost_process",
        not lost,
        "all workers alive" if not lost else f"lost worker pids: {lost}",
    )


def check_plane_no_wedged_process(
    plane: "ShardedAlpsPlane",
) -> InvariantResult:
    """After every live cell shut down, no worker remains stopped —
    not even one whose owning cell died mid-episode (escalation resumes
    all before standing down; re-homing hands the rest to survivors)."""
    wedged = []
    for proc in plane.workers.values():
        try:
            if plane.kernel.is_stopped(proc.pid):
                wedged.append(proc.pid)
        except Exception:
            continue  # dead — cannot be wedged
    return InvariantResult(
        "no_wedged_process",
        not wedged,
        "no wedged pids" if not wedged else f"wedged pids: {wedged}",
    )


def check_plane_cpu_conservation(
    plane: "ShardedAlpsPlane",
) -> InvariantResult:
    """Per owning cell, agent accounting ≤ kernel accounting; the
    kernel's total ≤ elapsed time × CPUs.  A migrated subject's new
    cell counts only post-adoption consumption, so the per-sid bound
    still holds under arbitrary re-homing."""
    kapi = plane.kernel.kapi
    for cell, agent in sorted(plane.agents.items()):
        for sid in agent.subjects:
            try:
                kernel_us = kapi.getrusage(plane.workers[sid].pid)
            except NoSuchProcessError:
                continue
            agent_us = agent.cumulative_cpu_of(sid)
            if agent_us > kernel_us:
                return InvariantResult(
                    "cpu_conservation",
                    False,
                    f"cell {cell} measured {agent_us}us for sid {sid} "
                    f"but kernel accounted only {kernel_us}us",
                )
    total_kernel_us = 0
    for proc in list(plane.workers.values()) + list(
        plane.agent_procs.values()
    ):
        try:
            total_kernel_us += kapi.getrusage(proc.pid)
        except NoSuchProcessError:
            continue
    budget = plane.engine.now * plane.cells
    if total_kernel_us > budget:
        return InvariantResult(
            "cpu_conservation",
            False,
            f"kernel accounted {total_kernel_us}us over a "
            f"{budget}us budget ({plane.cells} cpu(s))",
        )
    return InvariantResult(
        "cpu_conservation",
        True,
        f"{total_kernel_us}us within {budget}us budget",
    )


def check_plane_agent_liveness(
    plane: "ShardedAlpsPlane",
    *,
    window_us: int = DEFAULT_LIVENESS_WINDOW_US,
) -> InvariantResult:
    """Every cell that still owns subjects kept beating its supervisor
    within the window — dead (stood-down) cells are excused, because
    re-homing, not restarting, is their contract."""
    res = plane.resilience
    if res is None:
        return InvariantResult(
            "agent_liveness", False, "no resilience stack: cannot audit"
        )
    end = plane.engine.now
    stale = []
    for cell, agent in sorted(plane.agents.items()):
        if not agent.subjects or res.is_dead(cell):
            continue
        last = res.cell_health(cell).supervisor._last_beat
        if last is None or end - last > window_us:
            gap = "never" if last is None else f"{end - last}us"
            stale.append(f"cell {cell}: {gap}")
    return InvariantResult(
        "agent_liveness",
        not stale,
        "all live cells beat within window"
        if not stale
        else f"stale cells: {stale} (window {window_us}us)",
    )


def check_no_orphaned_subtree(
    violations: Sequence[str],
) -> InvariantResult:
    """Every leaf is owned by a live cell, and every subtree's leaves
    are co-located on one cell, at every audited control step."""
    return InvariantResult(
        "no_orphaned_subtree",
        not violations,
        "no orphaned leaves or split subtrees"
        if not violations
        else f"{len(violations)} violation(s); first: {violations[0]}",
    )


def check_migration_atomicity(
    violations: Sequence[str],
) -> InvariantResult:
    """The membership partition is conserved across arbitrary crash
    points: no sid lost, duplicated, or invented, at every audited
    control step."""
    return InvariantResult(
        "migration_atomicity",
        not violations,
        "membership partition conserved"
        if not violations
        else f"{len(violations)} violation(s); first: {violations[0]}",
    )


def evaluate_plane_invariants(
    plane: "ShardedAlpsPlane",
    *,
    fault_rate: float,
    error_pct: float,
    orphan_violations: Sequence[str],
    atomicity_violations: Sequence[str],
    fairness_base_pct: float,
    fairness_slope_pct: float,
    liveness_window_us: int = DEFAULT_LIVENESS_WINDOW_US,
) -> list[InvariantResult]:
    """All nine plane-suite invariants, in canonical order: the seven
    episode invariants (the two overload checks answer trivially — the
    plane suite arms no guard) plus ``no_orphaned_subtree`` and
    ``migration_atomicity``."""
    return [
        check_plane_no_lost_process(plane),
        check_plane_no_wedged_process(plane),
        check_plane_cpu_conservation(plane),
        check_bounded_fairness(
            fault_rate,
            error_pct,
            base_pct=fairness_base_pct,
            slope_pct=fairness_slope_pct,
        ),
        check_plane_agent_liveness(plane, window_us=liveness_window_us),
        InvariantResult(
            "bounded_timer_slip", True, "n/a: no overload guard"
        ),
        InvariantResult(
            "degrade_recover_roundtrip", True, "n/a: no overload guard"
        ),
        check_no_orphaned_subtree(orphan_violations),
        check_migration_atomicity(atomicity_violations),
    ]


def evaluate_episode_invariants(
    cw: "ControlledWorkload",
    *,
    fault_rate: float,
    error_pct: float,
    fairness_base_pct: float = DEFAULT_FAIRNESS_BASE_PCT,
    fairness_slope_pct: float = DEFAULT_FAIRNESS_SLOPE_PCT,
    liveness_window_us: int = DEFAULT_LIVENESS_WINDOW_US,
) -> list[InvariantResult]:
    """All seven invariants for one finished episode, in canonical order
    (the two overload checks answer trivially without a guard)."""
    return [
        check_no_lost_process(cw),
        check_no_wedged_process(cw),
        check_cpu_conservation(cw),
        check_bounded_fairness(
            fault_rate,
            error_pct,
            base_pct=fairness_base_pct,
            slope_pct=fairness_slope_pct,
        ),
        check_agent_liveness(cw, window_us=liveness_window_us),
        check_bounded_timer_slip(cw),
        check_degrade_recover_roundtrip(cw),
    ]


__all__ = [
    "DEFAULT_FAIRNESS_BASE_PCT",
    "DEFAULT_FAIRNESS_SLOPE_PCT",
    "DEFAULT_LIVENESS_WINDOW_US",
    "InvariantResult",
    "check_agent_liveness",
    "check_bounded_fairness",
    "check_bounded_timer_slip",
    "check_cpu_conservation",
    "check_degrade_recover_roundtrip",
    "check_migration_atomicity",
    "check_no_lost_process",
    "check_no_orphaned_subtree",
    "check_no_wedged_process",
    "check_plane_agent_liveness",
    "check_plane_cpu_conservation",
    "check_plane_no_lost_process",
    "check_plane_no_wedged_process",
    "evaluate_episode_invariants",
    "evaluate_plane_invariants",
]
