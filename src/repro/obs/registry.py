"""The metrics registry: counters, gauges, fixed-bucket histograms.

One :class:`MetricsRegistry` is the single place a run's quantitative
state lands: substrate statistics (events/sec, context switches),
scheduler health (per-subject share vs. attained CPU, RMS error), and
span aggregates.  Instruments are identified by ``(name, labels)`` and
created on first use; exporters (:mod:`repro.obs.export`) render a
registry snapshot as JSONL, CSV, or Prometheus text.

The registry also *absorbs* the older measurement surfaces so there is
one source of truth: :meth:`MetricsRegistry.absorb_perf_counters` folds
a :class:`~repro.perf.counters.PerfCounters` in (counts become
counters, wall-time totals become ``*_seconds`` gauges), and
:func:`repro.obs.bridge.collect_workload` loads the
:mod:`repro.metrics` aggregations (accuracy, overhead) for a finished
workload.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Any, Iterable, Mapping, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.counters import PerfCounters

#: Label sets are stored canonically as sorted (key, value) tuples.
LabelItems = tuple[tuple[str, str], ...]


def _label_key(labels: Mapping[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Default histogram buckets (µs scale — sampling delays, span costs).
DEFAULT_US_BUCKETS: tuple[float, ...] = (
    10.0, 50.0, 100.0, 500.0, 1_000.0, 5_000.0, 10_000.0, 50_000.0, 100_000.0
)


class Counter:
    """Monotonically increasing count."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, n: float = 1) -> None:
        """Add ``n`` (must be non-negative: counters never go down)."""
        if n < 0:
            raise ValueError(f"counter {self.name} cannot decrease (n={n})")
        self.value += n


class Gauge:
    """A value that can go up and down (last write wins)."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        self.value += n

    def dec(self, n: float = 1.0) -> None:
        self.value -= n


class Histogram:
    """Fixed-bucket histogram with Prometheus ``le`` (≤) semantics.

    ``bounds`` are the finite upper bounds, strictly increasing; an
    implicit +Inf bucket catches everything above the last bound.  An
    observation equal to a bound lands in that bound's bucket
    (cumulative ``le`` convention), so bucket *i* counts observations in
    ``(bounds[i-1], bounds[i]]``.
    """

    kind = "histogram"
    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")

    def __init__(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_US_BUCKETS,
        labels: LabelItems = (),
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError(f"histogram {name} needs at least one bound")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name} bounds must be strictly increasing: {bounds}"
            )
        if bounds[-1] == float("inf"):
            bounds = bounds[:-1]  # the +Inf bucket is implicit
            if not bounds:
                raise ValueError(f"histogram {name} needs a finite bound")
        self.name = name
        self.labels = labels
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; index len(bounds) is +Inf.
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        # bisect_left gives the first bound >= value, which is exactly
        # the ``le`` bucket; values above every bound fall through to
        # the +Inf slot at index len(bounds).
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style cumulative ``(le, count)`` pairs, +Inf last."""
        out: list[tuple[float, int]] = []
        running = 0
        for bound, n in zip(self.bounds, self.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return out


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of named, optionally labelled instruments."""

    __slots__ = ("_instruments",)

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelItems], Instrument] = {}

    # -- get-or-create accessors --------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, str], **kwargs):
        key = (name, _label_key(labels))
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(name, labels=key[1], **kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} already registered as {inst.kind}, "
                f"not {cls.kind}"
            )
        return inst

    def counter(self, name: str, **labels: str) -> Counter:
        """The counter ``name`` with these labels (created on first use)."""
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge ``name`` with these labels (created on first use)."""
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_US_BUCKETS,
        **labels: str,
    ) -> Histogram:
        """The histogram ``name`` (``bounds`` only applies at creation)."""
        return self._get(Histogram, name, labels, bounds=bounds)

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        """Instruments in stable (name, labels) order."""
        return iter(
            self._instruments[k] for k in sorted(self._instruments.keys())
        )

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Instrument]:
        """Look up an instrument without creating it."""
        return self._instruments.get((name, _label_key(labels or {})))

    def snapshot(self) -> list[dict[str, Any]]:
        """JSON-safe dump of every instrument, in stable order.

        Counters/gauges carry ``value``; histograms carry non-cumulative
        ``buckets`` (pairs of ``[le, count]``, +Inf spelled ``"+Inf"``),
        ``sum`` and ``count``.  :func:`restore_snapshot` is the inverse.
        """
        out: list[dict[str, Any]] = []
        for inst in self:
            rec: dict[str, Any] = {
                "name": inst.name,
                "type": inst.kind,
                "labels": dict(inst.labels),
            }
            if isinstance(inst, Histogram):
                rec["bounds"] = list(inst.bounds)
                rec["bucket_counts"] = list(inst.bucket_counts)
                rec["sum"] = inst.sum
                rec["count"] = inst.count
            else:
                rec["value"] = inst.value
            out.append(rec)
        return out

    # -- absorption of the older measurement surfaces -------------------
    def absorb_perf_counters(
        self, perf: "PerfCounters", *, prefix: str = ""
    ) -> None:
        """Fold a :class:`PerfCounters` into the registry.

        Event counts become counters under their existing dotted names;
        wall-time totals become ``<name>_seconds`` gauges.  Safe to call
        repeatedly with the same instance only if it was cleared in
        between (counters are cumulative).
        """
        for name, n in sorted(perf.counts.items()):
            self.counter(prefix + name).inc(n)
        for name, dt in sorted(perf.times.items()):
            self.gauge(prefix + name + "_seconds").set(dt)


def restore_snapshot(records: Iterable[Mapping[str, Any]]) -> MetricsRegistry:
    """Rebuild a registry from :meth:`MetricsRegistry.snapshot` output."""
    reg = MetricsRegistry()
    for rec in records:
        name = rec["name"]
        labels = {str(k): str(v) for k, v in dict(rec.get("labels", {})).items()}
        kind = rec["type"]
        if kind == "counter":
            reg.counter(name, **labels).inc(rec["value"])
        elif kind == "gauge":
            reg.gauge(name, **labels).set(rec["value"])
        elif kind == "histogram":
            h = reg.histogram(name, bounds=rec["bounds"], **labels)
            h.bucket_counts = [int(n) for n in rec["bucket_counts"]]
            h.sum = float(rec["sum"])
            h.count = int(rec["count"])
        else:
            raise ValueError(f"unknown metric type {kind!r}")
    return reg
