"""Lightweight span tracing for the agent's hot path.

A *span* is a named interval with a duration.  The ALPS agent records
one virtual-time span per Table 1 primitive it pays for — receiving the
quantum timer (``timer_event``), reading subject progress
(``measure``), sending eligibility signals (``signal``) — so a cost
breakdown in the style of the paper's Table 1 / Figure 5 falls straight
out of the recorder instead of requiring bespoke timers in each
experiment.

Virtual-duration spans (:meth:`SpanRecorder.record`) are
seed-deterministic.  Wall-clock spans (:meth:`SpanRecorder.measure`)
exist for host-side drivers and tooling; they never feed back into the
simulation, so they cannot perturb the schedule.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.registry import MetricsRegistry


@dataclass(slots=True, frozen=True)
class Span:
    """One recorded interval."""

    name: str
    start_us: int
    duration_us: float


@dataclass(slots=True, frozen=True)
class SpanStats:
    """Aggregate view of one span name."""

    name: str
    count: int
    total_us: float
    min_us: float
    max_us: float

    @property
    def mean_us(self) -> float:
        return self.total_us / self.count if self.count else 0.0


class SpanRecorder:
    """Aggregates spans by name; keeps the most recent ones for tailing."""

    __slots__ = ("_agg", "_recent", "recorded")

    def __init__(self, keep_recent: int = 1024) -> None:
        #: name -> [count, total, min, max]
        self._agg: dict[str, list[float]] = {}
        self._recent: deque[Span] = deque(maxlen=keep_recent)
        self.recorded = 0

    def record(
        self, name: str, duration_us: float, *, start_us: int = 0
    ) -> None:
        """Record one span with an explicit (virtual) duration."""
        self.recorded += 1
        self._recent.append(Span(name, start_us, duration_us))
        agg = self._agg.get(name)
        if agg is None:
            self._agg[name] = [1, duration_us, duration_us, duration_us]
            return
        agg[0] += 1
        agg[1] += duration_us
        if duration_us < agg[2]:
            agg[2] = duration_us
        if duration_us > agg[3]:
            agg[3] = duration_us

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Record the enclosed block's *wall* time as a span (µs)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, (time.perf_counter() - start) * 1e6)

    # -- views -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._agg)

    def recent(self, n: int = 20) -> list[Span]:
        """The last ``n`` recorded spans, oldest first."""
        items = list(self._recent)
        return items[-n:] if n < len(items) else items

    def stats(self, name: str) -> Optional[SpanStats]:
        """Aggregate for one span name, or None if never recorded."""
        agg = self._agg.get(name)
        if agg is None:
            return None
        return SpanStats(name, int(agg[0]), agg[1], agg[2], agg[3])

    def breakdown(self) -> list[SpanStats]:
        """Per-name aggregates, largest total first (Table 1 style)."""
        rows = [
            SpanStats(name, int(a[0]), a[1], a[2], a[3])
            for name, a in self._agg.items()
        ]
        rows.sort(key=lambda s: (-s.total_us, s.name))
        return rows

    def format_breakdown(self) -> str:
        """Aligned text table of the breakdown (µs)."""
        rows = self.breakdown()
        if not rows:
            return "(no spans recorded)"
        grand = sum(r.total_us for r in rows) or 1.0
        width = max(len(r.name) for r in rows)
        lines = [
            f"{'span'.ljust(width)}  {'count':>8}  {'total µs':>12}  "
            f"{'mean µs':>10}  {'share':>6}"
        ]
        for r in rows:
            lines.append(
                f"{r.name.ljust(width)}  {r.count:>8}  {r.total_us:>12,.1f}  "
                f"{r.mean_us:>10,.2f}  {r.total_us / grand:>6.1%}"
            )
        return "\n".join(lines)

    def to_registry(self, registry: "MetricsRegistry") -> None:
        """Load the aggregates as ``span_*`` metrics.

        Emits ``span_count``/``span_total_us`` counters and a
        ``span_mean_us`` gauge per span name (labelled ``span=<name>``),
        so exported snapshots carry the cost breakdown.
        """
        for row in self.breakdown():
            registry.counter("span_count", span=row.name).inc(row.count)
            registry.counter("span_total_us", span=row.name).inc(row.total_us)
            registry.gauge("span_mean_us", span=row.name).set(row.mean_us)

    def clear(self) -> None:
        """Drop all aggregates and recent spans."""
        self._agg.clear()
        self._recent.clear()
