"""Unified observability: structured events, metrics, spans, exporters.

One substrate replaces the scattered instrumentation that grew across
``repro.perf.counters``, ``repro.alps.tracing``, and ad-hoc CSV writers
(Gunther's resource-manager operations papers make the case: a
proportional-share controller is only trustworthy when its
entitlement-vs-consumption telemetry is first-class).  Three surfaces,
bound together by :class:`Observer`:

* :mod:`repro.obs.events` — a seed-deterministic, schema-versioned
  JSONL event log (quantum ticks, eligibility transitions, cycle
  boundaries, fault injections, kernel context switches) with a bounded
  ring buffer and streaming sinks;
* :mod:`repro.obs.registry` — counters, gauges, and fixed-bucket
  histograms, absorbing :class:`~repro.perf.counters.PerfCounters` and
  the :mod:`repro.metrics` aggregations;
* :mod:`repro.obs.spans` — hot-path cost spans for Table 1-style
  breakdowns.

Attach via ``build_controlled_workload(..., observer=Observer())``,
inspect live with ``python -m repro top``, and export with
``python -m repro obs export --format prometheus|jsonl|csv`` (see
docs/observability.md).  Observation is schedule-invisible: equal seeds
produce byte-identical schedules with or without an observer attached.
"""

from repro.obs.bridge import collect_plane, collect_workload
from repro.obs.events import (
    SCHEMA_VERSION,
    CallbackSink,
    EventLog,
    JsonlSink,
    NullSink,
    ObsEvent,
    Sink,
)
from repro.obs.export import (
    events_to_jsonl,
    metrics_to_csv,
    metrics_to_jsonl,
    metrics_to_prometheus,
    parse_events_jsonl,
    parse_metrics_csv,
    parse_metrics_jsonl,
    parse_prometheus_text,
    rows_to_markdown,
)
from repro.obs.observer import Observer
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    restore_snapshot,
)
from repro.obs.spans import Span, SpanRecorder, SpanStats
from repro.obs.top import (
    render_plane_frame,
    render_top_frame,
    run_plane_top,
    run_top,
)

__all__ = [
    "SCHEMA_VERSION",
    "CallbackSink",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "NullSink",
    "ObsEvent",
    "Observer",
    "Sink",
    "Span",
    "SpanRecorder",
    "SpanStats",
    "collect_plane",
    "collect_workload",
    "events_to_jsonl",
    "metrics_to_csv",
    "metrics_to_jsonl",
    "metrics_to_prometheus",
    "parse_events_jsonl",
    "parse_metrics_csv",
    "parse_metrics_jsonl",
    "parse_prometheus_text",
    "render_plane_frame",
    "render_top_frame",
    "restore_snapshot",
    "rows_to_markdown",
    "run_plane_top",
    "run_top",
]
