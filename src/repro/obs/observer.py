"""The :class:`Observer`: one handle binding events, metrics, and spans.

Components never construct observability state themselves — they hold
an optional ``Observer`` (``None`` by default) and guard every
instrumentation point with ``if obs is not None`` plus the observer's
``enabled`` flag.  That keeps the off path at a single attribute read,
the same discipline the engine's tracer short-circuit uses, and the
differential harness (tests/obs/test_observer_differential.py) proves
the *on* path is schedule-invisible too: observation reads simulation
state, it never advances clocks, draws randomness, or charges CPU.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.events import EventLog, Sink
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import SpanRecorder
from repro.perf.counters import PerfCounters


class Observer:
    """Aggregate of one run's observability surfaces.

    Attributes:
        events: bounded ring buffer + streaming sinks (JSONL records).
        metrics: the metrics registry exporters read.
        spans: hot-path cost spans (Table 1-style breakdowns).
        perf: the run's :class:`PerfCounters`; the engine accounts into
            it when the observer is attached, and
            :meth:`finalize_metrics` folds it into ``metrics`` so the
            registry stays the single exported source of truth.
        enabled: master switch; a disabled observer records nothing but
            keeps its identity (useful for cost measurements).
    """

    __slots__ = ("events", "metrics", "spans", "perf", "enabled")

    def __init__(
        self,
        *,
        capacity: int = 65536,
        sinks: Iterable[Sink] = (),
        enabled: bool = True,
    ) -> None:
        self.events = EventLog(capacity=capacity, sinks=sinks)
        self.metrics = MetricsRegistry()
        self.spans = SpanRecorder()
        self.perf = PerfCounters()
        self.enabled = enabled

    @classmethod
    def disabled(cls) -> "Observer":
        """An attached-but-inert observer (off-path cost measurement)."""
        return cls(capacity=1, enabled=False)

    def emit(self, time_us: int, kind: str, **fields) -> None:
        """Record one structured event (no-op while disabled)."""
        if self.enabled:
            self.events.emit(time_us, kind, **fields)

    def finalize_metrics(self) -> MetricsRegistry:
        """Fold perf counters and span aggregates into the registry.

        Idempotence is the caller's concern (counters accumulate);
        call once, after the run, before exporting.
        """
        self.metrics.absorb_perf_counters(self.perf)
        self.spans.to_registry(self.metrics)
        self.metrics.counter("obs_events_emitted").inc(self.events.emitted)
        self.metrics.counter("obs_events_dropped").inc(self.events.dropped)
        return self.metrics
