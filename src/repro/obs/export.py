"""Exporters (and their parse-back inverses) for observability data.

Three wire formats, one source of truth (a
:class:`~repro.obs.registry.MetricsRegistry` snapshot or an
:class:`~repro.obs.events.EventLog`):

* **JSONL** — one JSON object per metric or event line; lossless
  (``parse_metrics_jsonl`` / ``parse_events_jsonl`` invert exactly).
* **CSV** — flat rows for spreadsheet/pandas consumption; lossless for
  scalar metrics, histograms are flattened one bucket per row.
* **Prometheus text exposition** — ``# TYPE`` headers plus
  ``name{labels} value`` samples; histograms use the standard
  cumulative ``_bucket``/``_sum``/``_count`` triple.

Every exporter is a pure function of its input, so round-trip tests
(tests/obs/test_export.py) pin the formats.
"""

from __future__ import annotations

import csv
import io
import json
import math
import re
from typing import Any, Iterable, Mapping

from repro.obs.events import EventLog, ObsEvent
from repro.obs.registry import MetricsRegistry, restore_snapshot

# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def events_to_jsonl(log: EventLog | Iterable[ObsEvent]) -> str:
    """Serialize events, one JSON line each (oldest first)."""
    return "\n".join(e.to_json() for e in log)


def parse_events_jsonl(text: str) -> list[ObsEvent]:
    """Inverse of :func:`events_to_jsonl`."""
    return [
        ObsEvent.from_json(line)
        for line in text.splitlines()
        if line.strip()
    ]


def metrics_to_jsonl(registry: MetricsRegistry) -> str:
    """Serialize a registry snapshot, one JSON line per instrument."""
    return "\n".join(
        json.dumps(rec, sort_keys=True, separators=(",", ":"))
        for rec in registry.snapshot()
    )


def parse_metrics_jsonl(text: str) -> MetricsRegistry:
    """Inverse of :func:`metrics_to_jsonl`."""
    return restore_snapshot(
        json.loads(line) for line in text.splitlines() if line.strip()
    )


# ---------------------------------------------------------------------------
# CSV
# ---------------------------------------------------------------------------

_CSV_FIELDS = ("name", "type", "labels", "field", "le", "value")


def metrics_to_csv(registry: MetricsRegistry) -> str:
    """Flat CSV rows: one per scalar, one per histogram bucket/sum/count.

    ``labels`` is a ``k=v;k=v`` string; histogram rows carry ``field``
    (``bucket``/``sum``/``count``) and, for buckets, the ``le`` bound.
    """
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=_CSV_FIELDS)
    writer.writeheader()
    for rec in registry.snapshot():
        labels = ";".join(f"{k}={v}" for k, v in sorted(rec["labels"].items()))
        base = {"name": rec["name"], "type": rec["type"], "labels": labels}
        if rec["type"] == "histogram":
            for bound, n in zip(rec["bounds"], rec["bucket_counts"]):
                writer.writerow(
                    {**base, "field": "bucket", "le": repr(bound), "value": n}
                )
            writer.writerow(
                {**base, "field": "bucket", "le": "+Inf",
                 "value": rec["bucket_counts"][-1]}
            )
            writer.writerow({**base, "field": "sum", "value": rec["sum"]})
            writer.writerow({**base, "field": "count", "value": rec["count"]})
        else:
            writer.writerow({**base, "field": "value", "value": rec["value"]})
    return out.getvalue()


def parse_metrics_csv(text: str) -> MetricsRegistry:
    """Inverse of :func:`metrics_to_csv`."""
    records: dict[tuple[str, str], dict[str, Any]] = {}
    for row in csv.DictReader(io.StringIO(text)):
        key = (row["name"], row["labels"])
        rec = records.get(key)
        if rec is None:
            labels = {}
            if row["labels"]:
                for item in row["labels"].split(";"):
                    k, _, v = item.partition("=")
                    labels[k] = v
            rec = records[key] = {
                "name": row["name"], "type": row["type"], "labels": labels
            }
            if row["type"] == "histogram":
                rec["bounds"] = []
                rec["bucket_counts"] = []
                rec["sum"] = 0.0
                rec["count"] = 0
        if row["type"] == "histogram":
            if row["field"] == "bucket":
                if row["le"] != "+Inf":
                    rec["bounds"].append(float(row["le"]))
                rec["bucket_counts"].append(int(row["value"]))
            elif row["field"] == "sum":
                rec["sum"] = float(row["value"])
            elif row["field"] == "count":
                rec["count"] = int(row["value"])
        else:
            value = float(row["value"])
            rec["value"] = int(value) if value.is_integer() else value
    return restore_snapshot(records.values())


# ---------------------------------------------------------------------------
# Prometheus text exposition format
# ---------------------------------------------------------------------------

_NAME_SANITIZE = re.compile(r"[^a-zA-Z0-9_:]")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'(?P<k>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<v>[^"]*)"')


def prom_name(name: str) -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    return _NAME_SANITIZE.sub("_", name)


def _prom_value(v: float) -> str:
    if v == math.inf:
        return "+Inf"
    if isinstance(v, float) and v.is_integer():
        return str(int(v))
    return repr(v)


def _prom_labels(labels: Mapping[str, str], extra: str = "") -> str:
    items = [f'{k}="{v}"' for k, v in sorted(labels.items())]
    if extra:
        items.append(extra)
    return "{" + ",".join(items) + "}" if items else ""


def metrics_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: list[str] = []
    typed: set[str] = set()
    for rec in registry.snapshot():
        name = prom_name(rec["name"])
        if name not in typed:
            lines.append(f"# TYPE {name} {rec['type']}")
            typed.add(name)
        labels = rec["labels"]
        if rec["type"] == "histogram":
            running = 0
            for bound, n in zip(rec["bounds"], rec["bucket_counts"]):
                running += n
                le = 'le="' + _prom_value(bound) + '"'
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, le)} {running}"
                )
            inf_le = 'le="+Inf"'
            lines.append(
                f"{name}_bucket{_prom_labels(labels, inf_le)} {rec['count']}"
            )
            lines.append(
                f"{name}_sum{_prom_labels(labels)} {_prom_value(rec['sum'])}"
            )
            lines.append(f"{name}_count{_prom_labels(labels)} {rec['count']}")
        else:
            lines.append(
                f"{name}{_prom_labels(labels)} {_prom_value(rec['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse exposition text back into ``{(name, labels): value}``.

    Handles ``# TYPE``/``# HELP`` comments and histogram series (the
    ``_bucket``/``_sum``/``_count`` samples appear under their sample
    names).  Used by the round-trip tests and usable against any
    Prometheus endpoint dump.
    """
    out: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        labels = tuple(
            sorted(
                (lm.group("k"), lm.group("v"))
                for lm in _LABEL_RE.finditer(m.group("labels") or "")
            )
        )
        raw = m.group("value")
        value = math.inf if raw == "+Inf" else float(raw)
        out[(m.group("name"), labels)] = value
    return out


# ---------------------------------------------------------------------------
# Markdown (documentation tables)
# ---------------------------------------------------------------------------


def rows_to_markdown(
    header: Iterable[str], rows: Iterable[Iterable[Any]]
) -> str:
    """Render a GitHub-flavored markdown table (doc regeneration)."""
    head = [str(h) for h in header]
    lines = [
        "| " + " | ".join(head) + " |",
        "|" + "|".join("---" for _ in head) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(lines)
