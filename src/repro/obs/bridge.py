"""Glue between the observability layer and the scheduling substrate.

:func:`collect_workload` is the post-run half of observation: it loads
everything a finished :class:`ControlledWorkload` knows — substrate
perf counters, kernel scheduler statistics, the agent's robustness
counters, and the :mod:`repro.metrics` accuracy/overhead aggregations —
into the observer's metrics registry, so one export carries the whole
entitlement-vs-consumption story (share, target fraction, attained
fraction, and drift per subject).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.metrics.accuracy import (
    mean_rms_relative_error,
    per_subject_fractions,
)
from repro.obs.observer import Observer
from repro.perf.report import collect_workload_counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sharetree.plane import ShardedAlpsPlane
    from repro.workloads.scenarios import ControlledWorkload

#: Sampling-delay histogram bounds (µs): sub-quantum resolution up to
#: several quanta of drift (the §4.2 breakdown makes the tail grow).
SAMPLING_DELAY_BOUNDS = (
    100.0, 500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0,
    25_000.0, 50_000.0, 100_000.0,
)


def collect_workload(
    workload: "ControlledWorkload",
    observer: Optional[Observer] = None,
    *,
    skip_cycles: int = 0,
) -> Observer:
    """Load a finished workload's state into an observer's registry.

    Uses the workload's attached observer when none is given (creating
    a fresh one for un-observed runs, so post-hoc export always works).
    ``skip_cycles`` drops warm-up cycles from the accuracy aggregates,
    mirroring the experiments' convention.
    """
    obs = observer if observer is not None else workload.observer
    if obs is None:
        obs = Observer()
    reg = obs.metrics
    agent = workload.agent

    # Substrate statistics (engine/kernel/agent counters).
    collect_workload_counters(workload, into=obs.perf)

    # Per-subject entitlement vs. consumption (the paper's core claim).
    log = agent.cycle_log
    attained = per_subject_fractions(log, skip=skip_cycles)
    total_shares = sum(s.share for s in agent.subjects.values()) or 1
    for sid, subj in sorted(agent.subjects.items()):
        lbl = str(sid)
        target = subj.share / total_shares
        reg.gauge("alps_subject_share", sid=lbl).set(subj.share)
        reg.gauge("alps_subject_target_fraction", sid=lbl).set(target)
        got = attained.get(sid, 0.0)
        reg.gauge("alps_subject_attained_fraction", sid=lbl).set(got)
        reg.gauge("alps_subject_drift_fraction", sid=lbl).set(got - target)
        reg.gauge("alps_subject_cpu_us", sid=lbl).set(
            agent.cumulative_cpu_of(sid)
        )
        reg.gauge("alps_subject_allowance_quanta", sid=lbl).set(
            agent.core.allowance(sid)
        )

    # Whole-run accuracy / overhead aggregates (repro.metrics).
    err = mean_rms_relative_error(log, skip=skip_cycles)
    if not math.isnan(err):
        reg.gauge("alps_rms_error_pct").set(err)
    reg.gauge("alps_overhead_fraction").set(workload.overhead_fraction())
    reg.counter("alps_cycles_completed").inc(len(log))

    # Sampling latency distribution (quantum boundary → read execution).
    hist = reg.histogram(
        "alps_sampling_delay_us", bounds=SAMPLING_DELAY_BOUNDS
    )
    for delay in agent.sampling_delays_us:
        hist.observe(delay)

    # Fault-injection tallies, when the run carried an injector.
    injector = workload.injector
    if injector is not None:
        reg.counter("faults_crashes").inc(injector.crashes_injected)
        reg.counter("faults_forks").inc(injector.forks_spawned)
        reg.counter("faults_signals_dropped").inc(injector.signals_dropped)
        reg.counter("faults_signals_delayed").inc(injector.signals_delayed)
        reg.counter("faults_reads_failed").inc(injector.reads_failed)
        reg.counter("faults_agent_stalls").inc(injector.stalls_injected)
        reg.counter("faults_agent_crashes").inc(
            injector.agent_crashes_injected
        )

    # Overload-protection state, when the run carried a guard
    # (docs/overload.md): the starvation signal, the ladder position,
    # and the admission/shed census.
    guard = getattr(agent, "overload", None)
    if guard is not None:
        reg.gauge("alps_overload_rung").set(int(guard.rung))
        reg.gauge("alps_overload_stretch_factor").set(guard.stretch_factor)
        reg.gauge("alps_timer_slip_quanta").set(guard.slip.ewma_quanta)
        reg.gauge("alps_timer_slip_max_quanta").set(guard.slip.max_quanta)
        reg.gauge("alps_admission_queue_depth").set(guard.admission.depth)
        reg.gauge("alps_overload_shed_outstanding").set(
            guard.shed_outstanding
        )
        reg.counter("alps_overload_engagements").inc(
            guard.ladder.engagements
        )
        reg.counter("alps_overload_sheds").inc(guard.sheds)
        reg.counter("alps_overload_readmits").inc(guard.readmits)

    # Share-tree shape and per-subtree allocation, when the run carried
    # a hierarchical tree (docs/share_tree.md).
    tree = getattr(agent, "sharetree", None)
    if tree is not None:
        reg.gauge("alps_sharetree_depth").set(tree.depth)
        reg.gauge("alps_sharetree_nodes").set(tree.node_count)
        reg.gauge("alps_sharetree_leaves").set(tree.leaf_count)
        reg.gauge("alps_sharetree_pending_admissions").set(
            tree.pending_admissions
        )
        reg.counter("alps_sharetree_migrations").inc(tree.migrations)
        reg.counter("alps_sharetree_reweighs").inc(tree.reweighs)
        for node in tree.subtrees():
            lbl = node.path
            target = float(tree.fraction_of(node.path))
            got = sum(
                attained.get(leaf.sid, 0.0) for leaf in tree.leaves(node)
            )
            reg.gauge("alps_subtree_weight", path=lbl).set(node.weight)
            reg.gauge("alps_subtree_target_fraction", path=lbl).set(target)
            reg.gauge("alps_subtree_attained_fraction", path=lbl).set(got)

    obs.finalize_metrics()
    return obs


def collect_plane(
    plane: "ShardedAlpsPlane", observer: Optional[Observer] = None
) -> Observer:
    """Load a sharded plane's control-plane state into a registry.

    The ``alps_plane_*`` family mirrors what ``repro top --tree
    --cells`` renders: shard-map shape, the migration/rebalance census,
    per-cell supervision health, and — with the resilience stack armed
    — the epoch fence position and the re-home/salvage/tear counters.
    """
    obs = observer if observer is not None else plane.observer
    if obs is None:
        obs = Observer()
    reg = obs.metrics
    res = plane.resilience

    reg.gauge("alps_plane_cells").set(plane.cells)
    reg.gauge("alps_plane_subtrees").set(len(plane.assignment))
    reg.gauge("alps_plane_overhead_fraction").set(plane.overhead_fraction())
    reg.counter("alps_plane_migrations").inc(plane.migrations)
    reg.counter("alps_plane_rebalances").inc(plane.rebalances)

    for cell in range(plane.cells):
        lbl = str(cell)
        agent = plane.agents.get(cell)
        leaves = len(agent.subjects) if agent is not None else 0
        reg.gauge("alps_plane_cell_leaves", cell=lbl).set(leaves)
        reg.gauge("alps_plane_cell_subtrees", cell=lbl).set(
            sum(1 for c in plane.assignment.values() if c == cell)
        )
        if res is not None and cell in res.health:
            health = res.health[cell]
            reg.gauge("alps_plane_cell_dead", cell=lbl).set(
                1 if health.dead else 0
            )
            reg.counter("alps_plane_cell_restarts", cell=lbl).inc(
                health.supervisor.restarts
            )
        elif agent is not None:
            reg.gauge("alps_plane_cell_dead", cell=lbl).set(0)
            reg.counter("alps_plane_cell_restarts", cell=lbl).inc(
                agent.restarts
            )

    if res is not None:
        reg.gauge("alps_plane_epoch").set(res.epoch)
        reg.gauge("alps_plane_dead_cells").set(len(res.dead_cells))
        reg.gauge("alps_plane_last_rehome_us").set(
            res.last_rehome_us if res.last_rehome_us is not None else -1
        )
        reg.counter("alps_plane_rehomes").inc(res.rehomes)
        reg.counter("alps_plane_rehomed_leaves").inc(res.rehomed_leaves)
        reg.counter("alps_plane_salvages").inc(res.salvages)
        reg.counter("alps_plane_salvaged_leaves").inc(res.salvaged_leaves)
        reg.counter("alps_plane_readmits").inc(res.readmits)
        reg.counter("alps_plane_adopt_retries").inc(res.adopt_retries)
        reg.counter("alps_plane_fenced_adopts").inc(res.fenced_adopts)
        reg.counter("alps_plane_cell_crashes").inc(
            res.cell_crashes_injected
        )
        reg.counter("alps_plane_migration_tears").inc(res.tears_injected)
        reg.counter("alps_plane_journal_writes_lost").inc(
            res.journal_writes_lost
        )
        reg.counter("alps_plane_journal_writes_torn").inc(
            res.journal_writes_torn
        )

    obs.finalize_metrics()
    return obs
