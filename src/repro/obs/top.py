"""``repro top`` — a curses-free live view of share vs. attained CPU.

Renders a frame per refresh: one row per controlled subject showing its
share, target fraction, the fraction it actually attained so far, the
drift between the two, its allowance and eligibility, plus a run header
(virtual time, cycles, overhead, event throughput).  Frames are plain
text; interactive terminals get an ANSI home+clear prefix instead of
curses, so the view works over ssh, in pipes (``--frames N`` then
exits), and in tests (render is a pure function of the workload).
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Optional, TextIO

from repro.alps.state import Eligibility
from repro.metrics.accuracy import per_subject_fractions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sharetree.plane import ShardedAlpsPlane
    from repro.workloads.scenarios import ControlledWorkload

#: ANSI: cursor home + clear-to-end (avoids full-screen flicker).
_ANSI_HOME_CLEAR = "\x1b[H\x1b[J"

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_top_frame(
    workload: "ControlledWorkload", *, skip_cycles: int = 0
) -> str:
    """One ``top`` frame for the workload's current state (pure)."""
    agent = workload.agent
    kernel = workload.kernel
    now_s = workload.engine.now / 1_000_000
    attained = per_subject_fractions(agent.cycle_log, skip=skip_cycles)
    total_shares = sum(s.share for s in agent.subjects.values()) or 1
    header = (
        f"repro top — t={now_s:9.3f}s  cycles={len(agent.cycle_log):<6}"
        f"quanta={agent.invocations:<7}ctxsw={kernel.context_switches:<8}"
        f"overhead={workload.overhead_fraction():6.2%}"
    )
    cols = (
        f"{'SID':>4} {'SHARE':>5} {'TARGET':>7} {'ATTAIN':>7} {'DRIFT':>7} "
        f"{'ALLOW':>7} {'STATE':<6} {'':<{_BAR_WIDTH}}"
    )
    lines = [header, "", cols]
    for sid, subj in sorted(agent.subjects.items()):
        target = subj.share / total_shares
        got = attained.get(sid, 0.0)
        st = agent.core.subjects.get(sid)
        if st is None:
            allow, state = 0.0, "gone"
        else:
            allow = st.allowance
            state = "elig" if st.state is Eligibility.ELIGIBLE else "inelg"
        lines.append(
            f"{sid:>4} {subj.share:>5} {target:>7.1%} {got:>7.1%} "
            f"{got - target:>+7.1%} {allow:>7.2f} {state:<6} {_bar(got)}"
        )
    lines.append("")
    lines.append(
        f"agent: reads={agent.reads} signals={agent.signals_sent} "
        f"retries={agent.signal_retries + agent.read_retries} "
        f"heals={agent.heals} stalls={agent.missed_boundaries}"
    )
    guard = getattr(agent, "overload", None)
    if guard is not None:
        rung = guard.rung
        lines.append(
            f"overload: rung={int(rung)}({rung.name.lower()}) "
            f"slip={guard.slip.ewma_quanta:.2f}q "
            f"queue={guard.admission.depth} "
            f"shed={guard.shed_outstanding} "
            f"stretch=x{guard.stretch_factor} "
            f"engaged={guard.ladder.engagements}"
        )
    return "\n".join(lines)


def render_tree_frame(
    workload: "ControlledWorkload", *, skip_cycles: int = 0
) -> str:
    """One ``top --tree`` frame: indented subtree rows (pure).

    Each node shows its weight, its target fraction (the tree's exact
    recursive allocation, docs/share_tree.md) and the fraction its
    subtree actually attained; leaves add the owning sid.  Requires a
    workload built with ``sharetree=``.
    """
    agent = workload.agent
    tree = agent.sharetree
    if tree is None:
        raise ValueError("render_tree_frame needs a share-tree workload")
    now_s = workload.engine.now / 1_000_000
    attained = per_subject_fractions(agent.cycle_log, skip=skip_cycles)

    def subtree_attained(node) -> float:
        return sum(
            attained.get(leaf.sid, 0.0) for leaf in tree.leaves(node)
        )

    header = (
        f"repro top --tree — t={now_s:9.3f}s  "
        f"cycles={len(agent.cycle_log):<6}"
        f"nodes={tree.node_count:<5}depth={tree.depth:<3}"
        f"migrations={tree.migrations:<5}"
        f"overhead={workload.overhead_fraction():6.2%}"
    )
    cols = (
        f"{'NODE':<18} {'WT':>4} {'SID':>4} {'TARGET':>7} {'ATTAIN':>7} "
        f"{'DRIFT':>7} {'':<{_BAR_WIDTH}}"
    )
    lines = [header, "", cols]
    for node in tree.nodes():
        indent = "  " * (node.depth - 1)
        target = float(tree.fraction_of(node.path))
        got = (
            attained.get(node.sid, 0.0)
            if node.is_leaf
            else subtree_attained(node)
        )
        sid = str(node.sid) if node.sid is not None else "-"
        lines.append(
            f"{indent + node.name:<18} {node.weight:>4} {sid:>4} "
            f"{target:>7.1%} {got:>7.1%} {got - target:>+7.1%} {_bar(got)}"
        )
    gates = tree.gates()
    if gates:
        queued = ", ".join(
            f"{g.path}={g.admission.depth}" for g in gates if g.admission
        )
        lines.append("")
        lines.append(f"admission gates: {queued}")
    return "\n".join(lines)


def render_plane_frame(plane: "ShardedAlpsPlane") -> str:
    """One ``top --tree --cells N`` frame over a sharded plane (pure).

    Tree rows show each node's target against the fraction of total
    *kernel-accounted* worker CPU its subtree attained (each cell is a
    CPU, so cycle-log fractions would be per-cell, not comparable
    across the machine), plus the owning cell per leaf.  A per-cell
    health section follows: supervisor state, restarts granted, owned
    subtrees/leaves, and — with the resilience stack armed — the
    migration epoch, re-home/salvage census, and when each dead cell's
    subtrees were re-homed.
    """
    tree = plane.tree
    kapi = plane.kernel.kapi
    now_s = plane.engine.now / 1_000_000
    usage: dict[int, int] = {}
    for sid, proc in plane.workers.items():
        try:
            usage[sid] = kapi.getrusage(proc.pid)
        except Exception:
            usage[sid] = 0
    total_us = sum(usage.values()) or 1
    cell_of = {
        sid: cell
        for cell, agent in plane.agents.items()
        for sid in agent.subjects
    }
    res = plane.resilience
    header = (
        f"repro top --tree --cells — t={now_s:9.3f}s  "
        f"cells={plane.cells:<3}"
        f"migrations={plane.migrations:<5}"
        f"rebalances={plane.rebalances:<4}"
        f"overhead={plane.overhead_fraction():6.2%}"
    )
    cols = (
        f"{'NODE':<18} {'WT':>4} {'SID':>4} {'CELL':>4} {'TARGET':>7} "
        f"{'ATTAIN':>7} {'DRIFT':>7} {'':<{_BAR_WIDTH}}"
    )
    lines = [header, "", cols]
    for node in tree.nodes():
        indent = "  " * (node.depth - 1)
        target = float(tree.fraction_of(node.path))
        if node.is_leaf:
            got = usage.get(node.sid, 0) / total_us
            sid = str(node.sid)
            cell = str(cell_of.get(node.sid, "-"))
        else:
            got = sum(
                usage.get(leaf.sid, 0) for leaf in tree.leaves(node)
            ) / total_us
            sid = "-"
            cells = sorted(
                {
                    cell_of[leaf.sid]
                    for leaf in tree.leaves(node)
                    if leaf.sid in cell_of
                }
            )
            cell = str(cells[0]) if len(cells) == 1 else "*"
        lines.append(
            f"{indent + node.name:<18} {node.weight:>4} {sid:>4} {cell:>4} "
            f"{target:>7.1%} {got:>7.1%} {got - target:>+7.1%} {_bar(got)}"
        )
    lines.append("")
    if res is not None:
        lines.append(
            f"plane: epoch={res.epoch} rehomes={res.rehomes} "
            f"salvages={res.salvages} readmits={res.readmits} "
            f"tears={res.tears_injected} "
            f"fenced={res.fenced_adopts}"
        )
    for cell in range(plane.cells):
        agent = plane.agents.get(cell)
        subtrees = [
            name for name, c in sorted(plane.assignment.items()) if c == cell
        ]
        if res is not None and cell in res.health:
            health = res.health[cell]
            state = health.state
            restarts = health.supervisor.restarts
            extra = ""
            if health.dead and health.died_at_us is not None:
                extra = f" died@{health.died_at_us / 1_000_000:.3f}s"
                if health.rehomed_at_us is not None:
                    extra += (
                        f" rehomed@{health.rehomed_at_us / 1_000_000:.3f}s"
                    )
        elif agent is not None:
            state, restarts, extra = "running", agent.restarts, ""
        else:
            state, restarts, extra = "empty", 0, ""
        leaves = len(agent.subjects) if agent is not None else 0
        lines.append(
            f"cell {cell}: {state:<9} restarts={restarts} "
            f"leaves={leaves} subtrees={','.join(subtrees) or '-'}{extra}"
        )
    return "\n".join(lines)


def run_plane_top(
    plane: "ShardedAlpsPlane",
    *,
    frame_us: int,
    frames: Optional[int] = None,
    interval_s: float = 0.5,
    stream: Optional[TextIO] = None,
    clear: Optional[bool] = None,
) -> int:
    """:func:`run_top`, but driving a sharded plane.

    Advances via :meth:`ShardedAlpsPlane.run_until` so the resilience
    maintenance tick (salvage, re-homing) runs between frames exactly
    as it would under a real out-of-band controller.
    """
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = hasattr(out, "isatty") and out.isatty()
    rendered = 0
    try:
        while frames is None or rendered < frames:
            plane.run_until(plane.engine.now + frame_us)
            frame = render_plane_frame(plane)
            if clear:
                out.write(_ANSI_HOME_CLEAR + frame + "\n")
            else:
                if rendered:
                    out.write("\n")
                out.write(frame + "\n")
            out.flush()
            rendered += 1
            if interval_s > 0 and (frames is None or rendered < frames):
                time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return rendered


def run_top(
    workload: "ControlledWorkload",
    *,
    frame_us: int,
    frames: Optional[int] = None,
    interval_s: float = 0.5,
    stream: Optional[TextIO] = None,
    clear: Optional[bool] = None,
    skip_cycles: int = 0,
    tree: bool = False,
) -> int:
    """Drive the workload forward, rendering a frame per ``frame_us``.

    ``frames=None`` runs until interrupted (Ctrl-C returns cleanly).
    ``clear=None`` auto-detects a tty; non-tty output separates frames
    with a blank line instead of ANSI clears.  ``tree=True`` renders the
    hierarchical :func:`render_tree_frame` view instead of the flat
    per-subject table.  Returns frames rendered.
    """
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = hasattr(out, "isatty") and out.isatty()
    engine = workload.engine
    render = render_tree_frame if tree else render_top_frame
    rendered = 0
    try:
        while frames is None or rendered < frames:
            engine.run_until(engine.now + frame_us)
            frame = render(workload, skip_cycles=skip_cycles)
            if clear:
                out.write(_ANSI_HOME_CLEAR + frame + "\n")
            else:
                if rendered:
                    out.write("\n")
                out.write(frame + "\n")
            out.flush()
            rendered += 1
            if interval_s > 0 and (frames is None or rendered < frames):
                time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return rendered
