"""``repro top`` — a curses-free live view of share vs. attained CPU.

Renders a frame per refresh: one row per controlled subject showing its
share, target fraction, the fraction it actually attained so far, the
drift between the two, its allowance and eligibility, plus a run header
(virtual time, cycles, overhead, event throughput).  Frames are plain
text; interactive terminals get an ANSI home+clear prefix instead of
curses, so the view works over ssh, in pipes (``--frames N`` then
exits), and in tests (render is a pure function of the workload).
"""

from __future__ import annotations

import sys
import time
from typing import TYPE_CHECKING, Optional, TextIO

from repro.alps.state import Eligibility
from repro.metrics.accuracy import per_subject_fractions

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.scenarios import ControlledWorkload

#: ANSI: cursor home + clear-to-end (avoids full-screen flicker).
_ANSI_HOME_CLEAR = "\x1b[H\x1b[J"

_BAR_WIDTH = 24


def _bar(fraction: float, width: int = _BAR_WIDTH) -> str:
    fraction = min(max(fraction, 0.0), 1.0)
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def render_top_frame(
    workload: "ControlledWorkload", *, skip_cycles: int = 0
) -> str:
    """One ``top`` frame for the workload's current state (pure)."""
    agent = workload.agent
    kernel = workload.kernel
    now_s = workload.engine.now / 1_000_000
    attained = per_subject_fractions(agent.cycle_log, skip=skip_cycles)
    total_shares = sum(s.share for s in agent.subjects.values()) or 1
    header = (
        f"repro top — t={now_s:9.3f}s  cycles={len(agent.cycle_log):<6}"
        f"quanta={agent.invocations:<7}ctxsw={kernel.context_switches:<8}"
        f"overhead={workload.overhead_fraction():6.2%}"
    )
    cols = (
        f"{'SID':>4} {'SHARE':>5} {'TARGET':>7} {'ATTAIN':>7} {'DRIFT':>7} "
        f"{'ALLOW':>7} {'STATE':<6} {'':<{_BAR_WIDTH}}"
    )
    lines = [header, "", cols]
    for sid, subj in sorted(agent.subjects.items()):
        target = subj.share / total_shares
        got = attained.get(sid, 0.0)
        st = agent.core.subjects.get(sid)
        if st is None:
            allow, state = 0.0, "gone"
        else:
            allow = st.allowance
            state = "elig" if st.state is Eligibility.ELIGIBLE else "inelg"
        lines.append(
            f"{sid:>4} {subj.share:>5} {target:>7.1%} {got:>7.1%} "
            f"{got - target:>+7.1%} {allow:>7.2f} {state:<6} {_bar(got)}"
        )
    lines.append("")
    lines.append(
        f"agent: reads={agent.reads} signals={agent.signals_sent} "
        f"retries={agent.signal_retries + agent.read_retries} "
        f"heals={agent.heals} stalls={agent.missed_boundaries}"
    )
    guard = getattr(agent, "overload", None)
    if guard is not None:
        rung = guard.rung
        lines.append(
            f"overload: rung={int(rung)}({rung.name.lower()}) "
            f"slip={guard.slip.ewma_quanta:.2f}q "
            f"queue={guard.admission.depth} "
            f"shed={guard.shed_outstanding} "
            f"stretch=x{guard.stretch_factor} "
            f"engaged={guard.ladder.engagements}"
        )
    return "\n".join(lines)


def render_tree_frame(
    workload: "ControlledWorkload", *, skip_cycles: int = 0
) -> str:
    """One ``top --tree`` frame: indented subtree rows (pure).

    Each node shows its weight, its target fraction (the tree's exact
    recursive allocation, docs/share_tree.md) and the fraction its
    subtree actually attained; leaves add the owning sid.  Requires a
    workload built with ``sharetree=``.
    """
    agent = workload.agent
    tree = agent.sharetree
    if tree is None:
        raise ValueError("render_tree_frame needs a share-tree workload")
    now_s = workload.engine.now / 1_000_000
    attained = per_subject_fractions(agent.cycle_log, skip=skip_cycles)

    def subtree_attained(node) -> float:
        return sum(
            attained.get(leaf.sid, 0.0) for leaf in tree.leaves(node)
        )

    header = (
        f"repro top --tree — t={now_s:9.3f}s  "
        f"cycles={len(agent.cycle_log):<6}"
        f"nodes={tree.node_count:<5}depth={tree.depth:<3}"
        f"migrations={tree.migrations:<5}"
        f"overhead={workload.overhead_fraction():6.2%}"
    )
    cols = (
        f"{'NODE':<18} {'WT':>4} {'SID':>4} {'TARGET':>7} {'ATTAIN':>7} "
        f"{'DRIFT':>7} {'':<{_BAR_WIDTH}}"
    )
    lines = [header, "", cols]
    for node in tree.nodes():
        indent = "  " * (node.depth - 1)
        target = float(tree.fraction_of(node.path))
        got = (
            attained.get(node.sid, 0.0)
            if node.is_leaf
            else subtree_attained(node)
        )
        sid = str(node.sid) if node.sid is not None else "-"
        lines.append(
            f"{indent + node.name:<18} {node.weight:>4} {sid:>4} "
            f"{target:>7.1%} {got:>7.1%} {got - target:>+7.1%} {_bar(got)}"
        )
    gates = tree.gates()
    if gates:
        queued = ", ".join(
            f"{g.path}={g.admission.depth}" for g in gates if g.admission
        )
        lines.append("")
        lines.append(f"admission gates: {queued}")
    return "\n".join(lines)


def run_top(
    workload: "ControlledWorkload",
    *,
    frame_us: int,
    frames: Optional[int] = None,
    interval_s: float = 0.5,
    stream: Optional[TextIO] = None,
    clear: Optional[bool] = None,
    skip_cycles: int = 0,
    tree: bool = False,
) -> int:
    """Drive the workload forward, rendering a frame per ``frame_us``.

    ``frames=None`` runs until interrupted (Ctrl-C returns cleanly).
    ``clear=None`` auto-detects a tty; non-tty output separates frames
    with a blank line instead of ANSI clears.  ``tree=True`` renders the
    hierarchical :func:`render_tree_frame` view instead of the flat
    per-subject table.  Returns frames rendered.
    """
    out = stream if stream is not None else sys.stdout
    if clear is None:
        clear = hasattr(out, "isatty") and out.isatty()
    engine = workload.engine
    render = render_tree_frame if tree else render_top_frame
    rendered = 0
    try:
        while frames is None or rendered < frames:
            engine.run_until(engine.now + frame_us)
            frame = render(workload, skip_cycles=skip_cycles)
            if clear:
                out.write(_ANSI_HOME_CLEAR + frame + "\n")
            else:
                if rendered:
                    out.write("\n")
                out.write(frame + "\n")
            out.flush()
            rendered += 1
            if interval_s > 0 and (frames is None or rendered < frames):
                time.sleep(interval_s)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    return rendered
