"""Structured, schema-versioned observability events.

One :class:`ObsEvent` is a point-in-time fact about the run — a quantum
tick, an eligibility transition, a cycle boundary, a fault injection, a
kernel context switch — carried as a small JSON-safe record.  Events
are *seed-deterministic*: everything in them derives from virtual time
and simulation state, never from wall clocks, so equal seeds replay the
exact same event stream byte for byte.

The :class:`EventLog` keeps the most recent events in a bounded ring
buffer (old events fall off; :attr:`EventLog.emitted` keeps the true
total) and fans each event out to any attached streaming sinks.  With
no sinks attached, an emit is one record construction plus one deque
append — cheap enough to leave on.

Well-known event kinds (see docs/observability.md for the full schema
reference):

===================  =====================================================
kind                 emitted by / meaning
===================  =====================================================
``quantum.tick``     ALPS agent, once per serviced quantum timer
``eligibility.stop``  subject transitioned eligible → ineligible
``eligibility.cont``  subject transitioned ineligible → eligible
``cycle.complete``   ALPS cycle boundary (Figure 3's ``tc`` wrapped)
``agent.stall``      agent overslept at least one quantum boundary
``kernel.ctxsw``     simulated kernel placed a process on a CPU
``signal.sent``      a signal reached the kernel (kill(2) succeeded)
``fault.*``          fault injector misbehavior (``fault.crash``, ...)
``experiment.progress``  run_for_cycles chunk boundary
===================  =====================================================
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

#: Version stamp carried by every serialized event record.  Bump when a
#: field is renamed/removed or its meaning changes; adding new kinds or
#: new optional fields is backward compatible and needs no bump.
SCHEMA_VERSION = 1


@dataclass(slots=True, frozen=True)
class ObsEvent:
    """One structured event: virtual time, a kind, and flat JSON fields."""

    time_us: int
    kind: str
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_json(self) -> str:
        """Stable one-line JSON form (sorted keys, no whitespace)."""
        rec = {"v": SCHEMA_VERSION, "t": self.time_us, "kind": self.kind}
        if self.fields:
            rec["data"] = dict(sorted(self.fields.items()))
        return json.dumps(rec, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, line: str) -> "ObsEvent":
        """Parse one JSONL line back into an event (round-trip inverse)."""
        rec = json.loads(line)
        version = rec.get("v")
        if version != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported event schema version {version!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            time_us=int(rec["t"]),
            kind=str(rec["kind"]),
            fields=rec.get("data", {}),
        )


class Sink:
    """Streaming event consumer interface (duck-typed; subclass optional)."""

    def write(self, event: ObsEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class NullSink(Sink):
    """Discards every event — the default, zero-cost sink."""

    def write(self, event: ObsEvent) -> None:
        pass


class JsonlSink(Sink):
    """Streams each event as one JSON line to a writable text stream."""

    def __init__(self, stream) -> None:
        self._stream = stream
        self.lines_written = 0

    def write(self, event: ObsEvent) -> None:
        self._stream.write(event.to_json() + "\n")
        self.lines_written += 1


class CallbackSink(Sink):
    """Invokes a callable per event (testing / ad-hoc pipelines)."""

    def __init__(self, fn) -> None:
        self._fn = fn

    def write(self, event: ObsEvent) -> None:
        self._fn(event)


class EventLog:
    """Bounded ring buffer of events, with streaming fan-out.

    ``capacity`` bounds memory for arbitrarily long runs: once full, the
    oldest events are dropped from the buffer (sinks, having already
    streamed them, lose nothing).  ``emitted`` counts every event ever
    emitted, so ``emitted - len(log)`` is the number rotated out.
    """

    __slots__ = ("_buf", "sinks", "emitted")

    def __init__(
        self, capacity: int = 65536, sinks: Iterable[Sink] = ()
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self._buf: deque[ObsEvent] = deque(maxlen=capacity)
        self.sinks: list[Sink] = list(sinks)
        self.emitted = 0

    @property
    def capacity(self) -> int:
        """Ring-buffer bound this log was created with."""
        return self._buf.maxlen or 0

    @property
    def dropped(self) -> int:
        """Events rotated out of the ring buffer so far."""
        return self.emitted - len(self._buf)

    def emit(self, time_us: int, kind: str, **fields: Any) -> None:
        """Record one event and stream it to every sink."""
        event = ObsEvent(time_us, kind, fields)
        self.emitted += 1
        self._buf.append(event)
        for sink in self.sinks:
            sink.write(event)

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[ObsEvent]:
        return iter(self._buf)

    def tail(self, n: int) -> list[ObsEvent]:
        """The most recent ``n`` buffered events, oldest first."""
        if n <= 0:
            return []
        buf = self._buf
        if n >= len(buf):
            return list(buf)
        return list(buf)[-n:]

    def of_kind(self, kind: str) -> list[ObsEvent]:
        """All buffered events of one kind (or a ``prefix.*`` family)."""
        if kind.endswith(".*"):
            prefix = kind[:-1]
            return [e for e in self._buf if e.kind.startswith(prefix)]
        return [e for e in self._buf if e.kind == kind]

    def clear(self) -> None:
        """Drop the buffer (``emitted`` keeps counting from here)."""
        self._buf.clear()
