"""Fault tolerance for the sharded control plane (docs/share_tree.md).

PRs 1/5/6 made a *single* ALPS agent self-healing, journaled, and
overload-safe.  This module extends those guarantees to the PR 8
:class:`~repro.sharetree.plane.ShardedAlpsPlane`, whose failure modes
are strictly worse: a cell agent crash orphans whole subtrees, and a
``rebalance()`` torn between ``release_subject`` and ``adopt_subject``
can leak subjects out of every cell or leave pids wedged in SIGSTOP.

Three mechanisms, all schedule-invisible when no fault fires:

**Per-cell supervision.**  Each cell's agent runs behind
:class:`CellBehavior` — the PR 5 :class:`Supervisor` policy machine
plus plane-level escalation.  An injected
:class:`~repro.faults.plan.CellCrash` within the restart budget is a
journaled restart with bounded, jittered backoff; past the budget the
behavior *resumes every process the cell controlled first*
(:meth:`~repro.alps.agent.AlpsAgent.shutdown`), stands the cell down,
and marks it dead so the next plane tick re-homes its subtrees onto
surviving cells via the existing LPT partition.

**Crash-safe two-phase migration.**  Before any ``release_subject``
runs, the plane journals an epoch-fenced ``migration.intent`` record
(the write-ahead rule); a ``migration.commit`` record closes the batch.
:meth:`PlaneResilience.salvage` replays a torn batch — newest journal
record is an uncommitted intent — completing each subtree's move
forward when its destination already adopted a leaf, rolling it back
otherwise, rebuilding released-but-unadopted subjects from the share
tree and kernel truth, and resuming any pid left stopped.  Epochs fence
split-brain: every adoption stamps ``sid → epoch``, and a stale intent
(or a stale cell) can never double-adopt a subject that a newer epoch
already moved.

**Guarded adoption.**  Migration adopts run with bounded retries on
transient kernel-read failures, and the release→adopt loop readmits
released subjects to their source cell in a ``finally`` — an ordinary
exception mid-``rebalance`` can no longer strand a subject outside
every cell.

The whole stack is audited by the ``plane`` chaos suite
(``repro chaos run --suite plane``), which machine-checks the two new
invariants — ``no_orphaned_subtree`` and ``migration_atomicity`` — on
top of the existing seven (:mod:`repro.resilience.invariants`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.alps.subjects import ProcessSubject
from repro.errors import (
    MigrationTornError,
    NoSuchProcessError,
    RestartBudgetExhausted,
    TransientReadError,
)
from repro.faults.plan import CellCrash, FaultPlan, MigrationTear
from repro.kernel.actions import Action, Sleep
from repro.kernel.signals import SIGCONT
from repro.resilience.journal import MemoryJournal
from repro.resilience.supervisor import (
    STAND_DOWN_SLEEP_US,
    RestartPolicy,
    SupervisedAlpsBehavior,
    Supervisor,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alps.agent import AlpsAgent
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.process import Process
    from repro.sharetree.plane import ShardedAlpsPlane

#: Journal record kinds (plane-level migration log).
INTENT_KIND = "migration.intent"
COMMIT_KIND = "migration.commit"


@dataclass(slots=True, frozen=True)
class PlaneResilienceConfig:
    """Tunables for one plane's fault-tolerance stack.

    The default config arms supervision and journaling with a null
    fault plan: nothing ever fires, and the differential battery pins
    that this is byte-identical to a bare plane.
    """

    #: Per-cell supervisor policy (restart budget, backoff, jitter).
    policy: RestartPolicy = field(default_factory=RestartPolicy)
    #: Seed for supervisor jitter and journal fault draws.
    seed: int = 0
    #: Injected control-plane faults (cell crashes, migration tears,
    #: journal write faults applied to the per-cell state journals).
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Bounded retries for one migration adopt hitting transient
    #: kernel-read failures before it falls back to readmit-to-source.
    adopt_retries: int = 3


@dataclass(slots=True)
class CellHealth:
    """One cell's supervision record (rendered by ``repro top --tree``)."""

    cell: int
    supervisor: Supervisor
    journal: MemoryJournal
    dead: bool = False
    died_at_us: Optional[int] = None
    rehomed_at_us: Optional[int] = None
    resumed_on_death: int = 0

    @property
    def state(self) -> str:
        """Render label: the supervisor state, or ``dead`` once marked."""
        return "dead" if self.dead else self.supervisor.state.value


class CellBehavior(SupervisedAlpsBehavior):
    """Cell-agent wrapper: PR 5 supervision plus plane escalation.

    Identical to :class:`SupervisedAlpsBehavior` without an injector —
    verbatim delegation, so supervision alone stays schedule-invisible —
    except that crashes come from the plane's :class:`CellCrash`
    schedule and budget exhaustion notifies the plane so the dead
    cell's subtrees are re-homed (resume-all first: the agent's
    ``shutdown`` releases every stopped pid before the cell goes dark).
    """

    __slots__ = ("resilience", "cell")

    def __init__(
        self,
        agent: "AlpsAgent",
        supervisor: Supervisor,
        resilience: "PlaneResilience",
        cell: int,
    ) -> None:
        super().__init__(agent, supervisor, injector=None)
        self.resilience = resilience
        self.cell = cell

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        sup = self.supervisor
        if not self._bound:
            sup.bind_observer(getattr(kapi, "observer", None))
            self._bound = True
        if sup.degraded:
            return Sleep(STAND_DOWN_SLEEP_US, channel="alpsdown")
        now = kapi.now
        crash = self.resilience.crash_due(self.cell, now)
        if crash is not None:
            try:
                decision = sup.on_failure(now)
            except RestartBudgetExhausted:
                # Escalation: resume everything this cell controlled,
                # stand down, and hand the subtrees to the plane.
                resumed = self.agent.shutdown(kapi)
                sup.stand_down(now, resumed=resumed)
                self.resilience.note_cell_dead(
                    self.cell, now, resumed=resumed
                )
                return Sleep(STAND_DOWN_SLEEP_US, channel="alpsdown")
            self.agent.restart()
            sup.on_recovered(
                now + crash.downtime_us + decision.backoff_us,
                journaled=self.agent.last_restart_journaled,
            )
            self.resilience.note_cell_restarted(self.cell, now)
            return Sleep(
                crash.downtime_us + decision.backoff_us,
                channel="alpsrestart",
            )
        sup.heartbeat(now, slip_us=self.agent.timer_slip_us)
        return self.agent.next_action(proc, kapi)


class PlaneResilience:
    """The plane's fault-tolerance stack (see module docstring).

    Owned by a :class:`~repro.sharetree.plane.ShardedAlpsPlane` built
    with ``resilience=PlaneResilienceConfig(...)``.  Holds per-cell
    supervisors and state journals, the plane-level migration journal,
    the epoch fence, and the injected fault schedules.
    """

    def __init__(
        self, plane: "ShardedAlpsPlane", config: PlaneResilienceConfig
    ) -> None:
        self.plane = plane
        self.config = config
        self.plan = config.plan
        #: Plane-level migration journal (write-ahead intent/commit).
        self.journal = MemoryJournal()
        #: Monotonic migration epoch; bumped per journaled batch.
        self.epoch = 0
        #: sid -> epoch of its most recent adoption (the fence).
        self.sid_epoch: dict[int, int] = {}
        #: Cell index -> health record (created lazily per spawned cell).
        self.health: dict[int, CellHealth] = {}
        # Injected schedules, materialised up front (determinism: the
        # plan is data; consumption order is the simulation's).
        self._cell_crashes: dict[int, list[CellCrash]] = {}
        for crash in sorted(self.plan.cell_crashes, key=lambda c: c.time_us):
            self._cell_crashes.setdefault(crash.cell, []).append(crash)
        self._tears: list[MigrationTear] = sorted(
            self.plan.migration_tears, key=lambda t: t.time_us
        )
        self._armed_tear: Optional[MigrationTear] = None
        self._ops_until_tear = 0
        #: True between a crash-mode tear and its salvage: the readmit
        #: guard must not run (the controller "died" mid-batch).
        self.crashed = False
        # -- census ----------------------------------------------------
        self.cell_crashes_injected = 0
        self.tears_injected = 0
        self.rehomes = 0
        self.rehomed_leaves = 0
        self.salvages = 0
        self.salvaged_leaves = 0
        self.adopt_retries = 0
        self.readmits = 0
        self.fenced_adopts = 0
        self.journal_writes_lost = 0
        self.journal_writes_torn = 0
        self.last_rehome_us: Optional[int] = None
        self._rng = None

    # ------------------------------------------------------------------
    # Cell lifecycle
    # ------------------------------------------------------------------
    def _journal_fault_hook(self, cell: int):
        """Per-cell journal write-fault hook drawn from the plan.

        Mirrors the injector's ``fault_journal_append`` but with a
        plane-owned RNG stream per cell, so enabling journal faults on
        one cell cannot shift another cell's draws.
        """
        plan = self.plan
        if (
            plan.journal_write_fail_prob <= 0
            and plan.journal_torn_write_prob <= 0
        ):
            return None
        from repro.sim.rng import RngStreams

        if self._rng is None:
            self._rng = RngStreams(self.config.seed)
        stream = self._rng.stream(f"plane.journal:{cell}")
        lost_p = plan.journal_write_fail_prob
        torn_p = plan.journal_torn_write_prob

        def hook(encoded: bytes) -> Optional[bytes]:
            draw = stream.random()
            if draw < lost_p:
                self.journal_writes_lost += 1
                return None
            if draw < lost_p + torn_p:
                cut = 1 + int(stream.integers(0, max(1, len(encoded) - 1)))
                self.journal_writes_torn += 1
                return encoded[:cut]
            return encoded

        return hook

    def cell_health(self, cell: int) -> CellHealth:
        """The cell's health record, created on first use."""
        health = self.health.get(cell)
        if health is None:
            supervisor = Supervisor(
                self.config.policy,
                quantum_us=self.plane.config.quantum_us,
                observer=self.plane.observer,
                label=f"plane-c{cell}",
                seed=self.config.seed,
            )
            journal = MemoryJournal(fault_hook=self._journal_fault_hook(cell))
            health = CellHealth(cell, supervisor, journal)
            self.health[cell] = health
        return health

    def spawn_cell(
        self, cell: int, subjects
    ) -> tuple["Process", "AlpsAgent"]:
        """Spawn one supervised, journaled cell agent.

        The plane calls this instead of
        :func:`~repro.alps.agent.spawn_alps` when resilience is on; the
        construction mirrors it exactly (same name, uid, attachment
        order) so the agent's own schedule is unchanged.
        """
        from repro.alps.agent import AlpsAgent

        plane = self.plane
        health = self.cell_health(cell)
        agent = AlpsAgent(list(subjects), plane.config)
        agent.attach_journal(health.journal)
        agent.attach_sharetree(plane.tree)
        behavior = CellBehavior(agent, health.supervisor, self, cell)
        proc = plane.kernel.spawn(f"alps-c{cell}", behavior)
        for subject in subjects:
            self.note_owner(subject.sid, cell)
        return proc, agent

    # ------------------------------------------------------------------
    # Injected fault schedules
    # ------------------------------------------------------------------
    def crash_due(self, cell: int, now: int) -> Optional[CellCrash]:
        """Pop the cell's next due crash, if any."""
        queue = self._cell_crashes.get(cell)
        if not queue or queue[0].time_us > now:
            return None
        crash = queue.pop(0)
        self.cell_crashes_injected += 1
        self.plane._emit(
            "plane.cell_crash",
            cell=cell,
            downtime_us=crash.downtime_us,
        )
        return crash

    def arm_tears(self, now: int) -> None:
        """Arm the next due migration tear before a rebalance batch."""
        if self._armed_tear is None and self._tears:
            if self._tears[0].time_us <= now:
                self._armed_tear = self._tears.pop(0)
                self._ops_until_tear = self._armed_tear.after_ops

    def migration_op(self) -> None:
        """One release/adopt operation: fire the armed tear when due."""
        tear = self._armed_tear
        if tear is None:
            return
        if self._ops_until_tear > 0:
            self._ops_until_tear -= 1
            return
        self._armed_tear = None
        self.tears_injected += 1
        if tear.crash:
            self.crashed = True
        self.plane._emit(
            "plane.migration_tear", crash=tear.crash, after_ops=tear.after_ops
        )
        raise MigrationTornError(crash=tear.crash, after_ops=tear.after_ops)

    # ------------------------------------------------------------------
    # Escalation bookkeeping
    # ------------------------------------------------------------------
    def note_cell_dead(self, cell: int, now: int, *, resumed: int) -> None:
        """A cell exhausted its restart budget and stood down."""
        health = self.cell_health(cell)
        health.dead = True
        health.died_at_us = now
        health.resumed_on_death = resumed
        self.plane._emit("plane.cell_dead", cell=cell, resumed=resumed)

    def note_cell_restarted(self, cell: int, now: int) -> None:
        """A cell crash was healed by a journaled restart."""
        self.plane._emit(
            "plane.cell_restart",
            cell=cell,
            attempt=self.cell_health(cell).supervisor.restarts,
        )

    @property
    def dead_cells(self) -> frozenset[int]:
        """Cells that stood down (excluded from partitions and adopts)."""
        return frozenset(
            cell for cell, health in self.health.items() if health.dead
        )

    def is_dead(self, cell: int) -> bool:
        health = self.health.get(cell)
        return health is not None and health.dead

    # ------------------------------------------------------------------
    # Epoch fence
    # ------------------------------------------------------------------
    def note_owner(self, sid: int, cell: int, epoch: Optional[int] = None) -> None:
        """Stamp an adoption with its epoch (the split-brain fence)."""
        self.sid_epoch[sid] = self.epoch if epoch is None else epoch

    def fence_ok(self, sid: int, epoch: int) -> bool:
        """True when an adoption at ``epoch`` is not stale for ``sid``."""
        return self.sid_epoch.get(sid, -1) <= epoch

    # ------------------------------------------------------------------
    # Two-phase migration journal
    # ------------------------------------------------------------------
    def begin_migration(self, moves) -> int:
        """Write the intent record; returns the batch's epoch.

        ``moves`` is ``[(name, src_cell, dst_cell, [(sid, path), ...])]``.
        Write-ahead: the record reaches the journal before any release
        runs, so a controller death at *any* later point leaves a
        salvageable intent.
        """
        self.epoch += 1
        self.journal.append(
            {
                "v": 1,
                "kind": INTENT_KIND,
                "epoch": self.epoch,
                "moves": [
                    [name, src, dst, [[sid, path] for sid, path in leaves]]
                    for name, src, dst, leaves in moves
                ],
            }
        )
        self.plane._emit(
            "plane.migration_intent",
            epoch=self.epoch,
            subtrees=len(moves),
            leaves=sum(len(m[3]) for m in moves),
        )
        return self.epoch

    def commit_migration(self, epoch: int) -> None:
        """Close the batch: every move completed (or rolled back)."""
        self.journal.append({"v": 1, "kind": COMMIT_KIND, "epoch": epoch})
        self.plane._emit("plane.migration_commit", epoch=epoch)

    def torn_intent(self) -> Optional[dict]:
        """The newest journal record iff it is an uncommitted intent."""
        rec = self.journal.recover()
        snap = rec.snapshot
        if snap is not None and snap.get("kind") == INTENT_KIND:
            return snap
        return None

    # ------------------------------------------------------------------
    # Salvage (crash recovery)
    # ------------------------------------------------------------------
    def _live_fallback(self, *preferred: Optional[int]) -> Optional[int]:
        """First live cell among ``preferred``, else the lowest live."""
        dead = self.dead_cells
        for cell in preferred:
            if cell is not None and cell not in dead:
                return cell
        for cell in range(self.plane.cells):
            if cell not in dead:
                return cell
        return None

    def _rebuild_subject(self, sid: int) -> ProcessSubject:
        """Reconstruct a released-but-unadopted subject from durable
        truth: the share tree (share) and the plane's worker map (pid).
        A real controller restart has no in-memory Subject to recover —
        only what the tree and kernel still know."""
        plane = self.plane
        eff = plane.tree.effective_shares()
        return ProcessSubject(
            sid=sid, share=eff[sid], pid=plane.workers[sid].pid
        )

    def salvage(self) -> int:
        """Complete or roll back a torn migration batch; returns leaves
        re-placed.

        Per subtree in the torn intent: if the destination already
        adopted any leaf, the move completes *forward* (subtree
        atomicity — a tenant's members are never split across cells);
        otherwise it rolls back to the source.  Dead cells are never
        adopted into (the fence), released-but-unadopted subjects are
        rebuilt from the tree and kernel truth, stale per-sid epochs are
        skipped, and any pid left stopped is resumed.  Idempotent: a
        clean journal salvages nothing.
        """
        intent = self.torn_intent()
        self.crashed = False
        if intent is None:
            return 0
        plane = self.plane
        kapi = plane.kernel.kapi
        epoch = int(intent["epoch"])
        placed = 0
        for name, src_cell, dst_cell, leaves in intent["moves"]:
            sids = [int(sid) for sid, _ in leaves]
            owners = {sid: plane.cell_of_sid(sid) for sid in sids}
            forward = any(owners[sid] == dst_cell for sid in sids)
            target = self._live_fallback(
                dst_cell if forward else src_cell,
                src_cell if forward else dst_cell,
            )
            if target is None:  # pragma: no cover - all cells dead
                continue
            for sid in sids:
                if not self.fence_ok(sid, epoch):
                    self.fenced_adopts += 1
                    continue  # a newer epoch already moved this sid
                cur = owners[sid]
                if cur == target:
                    continue
                if cur is not None:
                    subject = plane.agents[cur].release_subject(sid, kapi)
                else:
                    subject = self._rebuild_subject(sid)
                plane._adopt_into(target, subject, epoch=epoch)
                placed += 1
            # Belt and braces: a tear between a release's individual
            # resumes cannot happen in-process, but kernel truth is
            # checked anyway — no salvaged pid stays stopped.
            for sid in sids:
                pid = plane.workers[sid].pid
                try:
                    if kapi.is_stopped(pid):
                        kapi.kill(pid, SIGCONT)
                except NoSuchProcessError:
                    continue
            plane.assignment[name] = target
        self.salvages += 1
        self.salvaged_leaves += placed
        self.journal.append(
            {"v": 1, "kind": "migration.salvage", "epoch": epoch,
             "leaves": placed}
        )
        self.commit_migration(epoch)
        self.plane._emit("plane.salvage", epoch=epoch, leaves=placed)
        return placed

    # ------------------------------------------------------------------
    # Plane maintenance
    # ------------------------------------------------------------------
    def orphaned_cells(self) -> list[int]:
        """Dead cells whose agents still own subjects (need re-homing)."""
        return [
            cell
            for cell in sorted(self.dead_cells)
            if (agent := self.plane.agents.get(cell)) is not None
            and agent.subjects
        ]

    def tick(self) -> int:
        """One control-plane maintenance pass; returns leaves moved.

        Runs after every ``run_until`` segment: salvage any torn batch
        left by a crashed controller, then re-home dead cells' subtrees
        onto survivors via the ordinary (dead-cell-excluding) partition.
        With no faults injected this touches nothing — the differential
        battery pins that it is schedule-invisible.
        """
        moved = 0
        if self.crashed or self.torn_intent() is not None:
            moved += self.salvage()
        if self.orphaned_cells():
            if self._live_fallback() is None:
                self.plane._emit("plane.quorum_lost", cells=self.plane.cells)
                return moved
            rehomed = 0
            while True:
                try:
                    rehomed += self.plane.rebalance()
                    break
                except MigrationTornError:
                    # A tear scheduled into the re-home itself.  The
                    # readmit guard (exception mode) parks the torn
                    # subtree back on its *dead* source cell, so waiting
                    # a tick would leave it orphaned for a full control
                    # step: salvage the journaled intent now — the
                    # live-fallback placement lands the leaves on
                    # survivors — and retry.  Each tear consumes one
                    # armed fault, so this terminates.
                    salvaged = self.salvage()
                    moved += salvaged
                    rehomed += salvaged
                    if not self.orphaned_cells():
                        break
            if rehomed:
                self.rehomes += 1
                self.rehomed_leaves += rehomed
                self.last_rehome_us = self.plane.engine.now
                for cell in self.dead_cells:
                    health = self.health[cell]
                    if health.rehomed_at_us is None and not (
                        self.plane.agents.get(cell)
                        and self.plane.agents[cell].subjects
                    ):
                        health.rehomed_at_us = self.plane.engine.now
                self.plane._emit(
                    "plane.rehome",
                    leaves=rehomed,
                    dead_cells=sorted(self.dead_cells),
                )
        return moved

    # ------------------------------------------------------------------
    # Census (obs bridge, chaos episodes, ``repro top --tree``)
    # ------------------------------------------------------------------
    @property
    def cell_restarts(self) -> int:
        """Restarts granted across every cell supervisor."""
        return sum(h.supervisor.restarts for h in self.health.values())


__all__ = [
    "COMMIT_KIND",
    "CellBehavior",
    "CellHealth",
    "INTENT_KIND",
    "PlaneResilience",
    "PlaneResilienceConfig",
]
