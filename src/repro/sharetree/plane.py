"""Sharded multi-cell control plane: many ALPS cells on one SMP kernel.

One ALPS agent is a single process; past a few hundred subjects its own
measurement work exceeds its fair share (the §4.2 breakdown).  The
production-scale answer is *sharding*: run many concurrent ALPS cells
— one agent process per simulated CPU core, extending the
``bench_extension_smp`` seed — and give each cell ownership of whole
**subtrees** of the share tree, so intra-tenant proportions are always
enforced by exactly one agent.

:class:`ShardedAlpsPlane` builds the whole arrangement on one simulated
SMP kernel: it partitions the tree's top-level subtrees across cells
greedily by effective weight (LPT — heaviest subtree to the least
loaded cell, deterministic tie-break by creation order), spawns one
spinner worker per leaf and one ALPS agent per non-empty cell, and
keeps the partition balanced as weights change: :meth:`set_weight`
reweighs every cell's core from the shared tree and :meth:`rebalance`
migrates whole subtrees between cells when the greedy assignment moves
(:meth:`AlpsAgent.release_subject` → :meth:`AlpsAgent.adopt_subject`,
counting ``sharetree.migrate`` events and the tree's ``migrations``
bridge counter).

The plane is a *control plane*: migrations and reweighs happen between
``run_until`` calls, modelling an out-of-band controller, and are fully
deterministic for a fixed seed and call sequence.

Built with ``resilience=PlaneResilienceConfig(...)`` the plane gains
the fault-tolerance stack of :mod:`repro.sharetree.resilience`:
per-cell supervision with plane-level re-homing, journaled two-phase
migrations with crash salvage, and the epoch fence.  Without injected
faults the stack is schedule-invisible (byte-identical runs, pinned by
the differential battery).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Sequence

from repro.alps.agent import AlpsAgent, spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject, Subject
from repro.errors import SchedulerConfigError, TransientReadError
from repro.kernel import make_kernel
from repro.kernel.kconfig import KernelConfig
from repro.kernel.process import Process
from repro.sharetree.tree import ShareNode, ShareTree
from repro.sim.engine import Engine
from repro.workloads.spinner import spinner_behavior

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kapi import KernelAPI
    from repro.obs.observer import Observer
    from repro.sharetree.resilience import PlaneResilienceConfig
    from repro.sim.trace import Tracer


class ShardedAlpsPlane:
    """Concurrent ALPS cells sharded over a share tree's subtrees."""

    def __init__(
        self,
        tree: ShareTree,
        alps_config: Optional[AlpsConfig] = None,
        *,
        cells: int = 2,
        seed: int = 0,
        observer: Optional["Observer"] = None,
        resilience: Optional["PlaneResilienceConfig"] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        if cells < 1:
            raise SchedulerConfigError(f"cells must be >= 1, got {cells}")
        if not tree.subtrees():
            raise SchedulerConfigError("the share tree has no subtrees")
        if not tree.leaves():
            raise SchedulerConfigError("the share tree has no leaves")
        self.tree = tree
        self.cells = cells
        self.config = alps_config if alps_config is not None else AlpsConfig()
        self.observer = observer
        self.engine = Engine(seed=seed, observer=observer, tracer=tracer)
        # One simulated CPU per cell: each agent effectively owns a
        # core's worth of control work (the bench_extension_smp seed).
        self.kernel = make_kernel(self.engine, KernelConfig(ncpus=cells))
        if observer is not None:
            self.kernel.attach_observer(observer)
        #: The fault-tolerance stack (docs/share_tree.md, "Plane fault
        #: tolerance"); None runs the bare PR 8 plane.
        self.resilience = None
        if resilience is not None:
            from repro.sharetree.resilience import PlaneResilience

            self.resilience = PlaneResilience(self, resilience)
        #: Subtree name -> owning cell index (the shard map).
        self.assignment: dict[str, int] = self._partition()
        #: Leaf sid -> its worker process.
        self.workers: dict[int, Process] = {}
        #: Cell index -> agent (cells left empty by the partition have
        #: no agent; they still contribute kernel CPUs).
        self.agents: dict[int, AlpsAgent] = {}
        self.agent_procs: dict[int, Process] = {}
        #: Leaves moved between cells by :meth:`rebalance`.
        self.migrations = 0
        #: Rebalance passes that moved at least one subtree.
        self.rebalances = 0
        eff = tree.effective_shares()
        for uid, leaf in enumerate(tree.leaves()):
            self.workers[leaf.sid] = self.kernel.spawn(  # type: ignore[index]
                leaf.path.replace("/", "."), spinner_behavior(), uid=100 + uid
            )
        for cell in range(cells):
            subjects = [
                ProcessSubject(
                    sid=leaf.sid,  # type: ignore[arg-type]
                    share=eff[leaf.sid],  # type: ignore[index]
                    pid=self.workers[leaf.sid].pid,  # type: ignore[index]
                )
                for name in self._subtrees_of(cell)
                for leaf in tree.leaves(tree.node(name))
            ]
            if not subjects:
                continue
            self._spawn_cell(cell, subjects)
        self._emit("sharetree.attach", cells=cells, subtrees=len(self.assignment))

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.events.emit(self.engine.now, kind, **fields)

    def _partition(
        self, exclude: frozenset[int] = frozenset()
    ) -> dict[str, int]:
        """Greedy LPT: heaviest subtree to the least-loaded cell.

        Deterministic: subtrees are ordered by (effective weight desc,
        creation order), ties between cells break to the lowest index.
        ``exclude`` removes cells from consideration (dead cells during
        a re-home pass).
        """
        candidates = [c for c in range(self.cells) if c not in exclude]
        if not candidates:
            raise SchedulerConfigError("no live cells left to partition over")
        order = list(self.tree.subtrees())
        weights = {
            node.name: self.tree.effective_weight(node.path) for node in order
        }
        ranked = sorted(
            order, key=lambda n: (-weights[n.name], order.index(n))
        )
        load = {c: 0 for c in candidates}
        assignment: dict[str, int] = {}
        for node in ranked:
            cell = min(candidates, key=lambda c: (load[c], c))
            assignment[node.name] = cell
            load[cell] += weights[node.name]
        return assignment

    def _spawn_cell(self, cell: int, subjects: Sequence[Subject]) -> AlpsAgent:
        """Spawn a cell's agent (supervised when resilience is on)."""
        if self.resilience is not None:
            proc, agent = self.resilience.spawn_cell(cell, subjects)
        else:
            proc, agent = spawn_alps(
                self.kernel,
                list(subjects),
                self.config,
                name=f"alps-c{cell}",
                sharetree=self.tree,
            )
        self.agents[cell] = agent
        self.agent_procs[cell] = proc
        return agent

    def _subtrees_of(self, cell: int) -> list[str]:
        """Subtree names owned by ``cell``, in creation order."""
        return [
            node.name
            for node in self.tree.subtrees()
            if self.assignment.get(node.name) == cell
        ]

    # ------------------------------------------------------------------
    def run_until(self, t_us: int) -> None:
        """Advance the whole plane to virtual time ``t_us``.

        With resilience on, a maintenance tick follows the segment:
        torn migrations are salvaged and dead cells' subtrees re-homed
        (:meth:`~repro.sharetree.resilience.PlaneResilience.tick`).
        Fault-free ticks touch nothing, so the call is schedule-
        invisible.
        """
        self.engine.run_until(t_us)
        if self.resilience is not None:
            self.resilience.tick()

    def agent_of(self, subtree: str) -> AlpsAgent:
        """The agent currently enforcing ``subtree``."""
        cell = self.assignment.get(subtree)
        if cell is None or cell not in self.agents:
            raise SchedulerConfigError(f"no agent owns subtree {subtree!r}")
        return self.agents[cell]

    def cell_of_sid(self, sid: int) -> Optional[int]:
        """The cell whose agent currently controls ``sid``."""
        for cell, agent in self.agents.items():
            if sid in agent.subjects:
                return cell
        return None

    def members(self) -> dict[int, set[int]]:
        """Cell index -> controlled sids (the conservation surface)."""
        return {
            cell: set(agent.subjects) for cell, agent in self.agents.items()
        }

    # ------------------------------------------------------------------
    def set_weight(self, path: str, weight: int) -> None:
        """Reweight a tree node, reweigh every cell, and rebalance."""
        self.tree.set_weight(path, weight)
        for agent in self.agents.values():
            agent.reweigh_from_tree()
        self._emit("sharetree.reweigh", path=path, weight=weight)
        self.rebalance()

    def rebalance(self) -> int:
        """Re-run the greedy partition; migrate subtrees that moved.

        Returns the number of leaves migrated.  Whole subtrees move
        atomically — a tenant's members are never split across cells —
        and every migrated leaf is released (stopped pids resumed) by
        its old agent before the new one adopts it, so no process can
        be wedged in SIGSTOP by a rebalance.

        Crash safety: an exception between release and adopt rolls the
        torn subtree back to its source cell (readmit-to-source guard)
        before propagating, so no subject is ever stranded outside
        every cell.  With resilience on, the whole batch is bracketed
        by journaled intent/commit records (write-ahead), so even a
        controller death mid-batch — a crash-mode
        :class:`~repro.faults.plan.MigrationTear`, which deliberately
        skips the in-process guard — is healed by
        :meth:`~repro.sharetree.resilience.PlaneResilience.salvage`.
        Per-leaf ``sharetree.migrate`` events are emitted only after a
        subtree's adoptions all complete, between batch-level
        ``sharetree.migrate.begin``/``sharetree.migrate.commit``
        markers, so the event log never shows a migration that never
        finished.
        """
        res = self.resilience
        exclude = res.dead_cells if res is not None else frozenset()
        new_assignment = self._partition(exclude)
        kapi = self.kernel.kapi
        # Plan the whole batch up front: subtrees whose owning cell
        # changes, with the leaves their source agent actually controls.
        planned: list[tuple[str, Optional[int], int, list[tuple[int, str]]]]
        planned = []
        for name, new_cell in new_assignment.items():
            old_cell = self.assignment.get(name)
            if old_cell == new_cell:
                continue
            src = self.agents.get(old_cell) if old_cell is not None else None
            leaf_moves = []
            for leaf in self.tree.leaves(self.tree.node(name)):
                sid = leaf.sid
                assert sid is not None
                if src is None or sid not in src.subjects:
                    continue  # pragma: no cover - defensive
                leaf_moves.append((sid, leaf.path))
            if leaf_moves:
                planned.append((name, old_cell, new_cell, leaf_moves))
        if not planned:
            self.assignment = new_assignment
            return 0
        epoch = None
        if res is not None:
            res.arm_tears(self.engine.now)
            epoch = res.begin_migration(planned)
        self._emit(
            "sharetree.migrate.begin",
            subtrees=len(planned),
            leaves=sum(len(m[3]) for m in planned),
        )
        moved_leaves = 0
        moved_subtrees = 0
        for name, old_cell, new_cell, leaf_moves in planned:
            src = self.agents[old_cell]  # planned ⇒ src exists
            released: list[tuple[int, str, Subject]] = []
            completed: list[tuple[int, str, Subject]] = []
            try:
                for sid, path in leaf_moves:
                    if res is not None:
                        res.migration_op()
                    released.append(
                        (sid, path, src.release_subject(sid, kapi))
                    )
                if self.agents.get(new_cell) is None:
                    # A previously empty cell gains its first subtree:
                    # spawn its agent with the migrating members as the
                    # founding group (baselines at its INIT phase).
                    if res is not None:
                        res.migration_op()
                    self._spawn_cell(
                        new_cell, [subj for _, _, subj in released]
                    )
                    completed, released = released, []
                else:
                    dst = self.agents[new_cell]
                    for item in list(released):
                        sid, path, subject = item
                        if res is not None:
                            res.migration_op()
                        self._adopt_with_retry(dst, subject, kapi)
                        if res is not None:
                            res.note_owner(sid, new_cell, epoch)
                        released.remove(item)
                        completed.append(item)
            except Exception:
                if not (res is not None and res.crashed):
                    # Readmit-to-source guard: roll the torn subtree
                    # back whole (atomicity), so the exception cannot
                    # strand a released subject outside every cell.  A
                    # crash-mode tear skips this by design — salvage
                    # replays the journaled intent instead.
                    self._rollback_subtree(
                        old_cell, new_cell, completed, released, kapi
                    )
                raise
            moved_subtrees += 1
            moved_leaves += len(completed)
            self.assignment[name] = new_cell
            self.migrations += len(completed)
            self.tree.note_migration(len(completed))
            for sid, path, _ in completed:
                self._emit(
                    "sharetree.migrate",
                    sid=sid, path=path, src=old_cell, dst=new_cell,
                )
        self.assignment = new_assignment
        if moved_leaves:
            self.rebalances += 1
            self._emit(
                "sharetree.rebalance",
                subtrees=moved_subtrees, leaves=moved_leaves,
            )
        self._emit(
            "sharetree.migrate.commit",
            subtrees=moved_subtrees, leaves=moved_leaves,
        )
        if res is not None and epoch is not None:
            res.commit_migration(epoch)
        return moved_leaves

    def _adopt_with_retry(
        self, dst: AlpsAgent, subject: Subject, kapi: "KernelAPI"
    ) -> bool:
        """Adopt with bounded retries on transient kernel-read failures.

        Exhausted retries re-raise; the caller's readmit guard then
        returns the subject to its source cell, so a flaky accounting
        surface degrades a migration instead of losing a subject.
        """
        res = self.resilience
        retries = res.config.adopt_retries if res is not None else 0
        attempt = 0
        while True:
            try:
                return dst.adopt_subject(subject, kapi)
            except TransientReadError:
                attempt += 1
                if res is not None:
                    res.adopt_retries += 1
                if attempt > retries:
                    raise

    def _adopt_into(
        self, cell: int, subject: Subject, *, epoch: Optional[int] = None
    ) -> None:
        """Place one subject into ``cell`` (salvage path), spawning the
        cell's agent if it has none, and stamp the epoch fence."""
        agent = self.agents.get(cell)
        if agent is None:
            self._spawn_cell(cell, [subject])
        else:
            self._adopt_with_retry(agent, subject, self.kernel.kapi)
        if self.resilience is not None:
            self.resilience.note_owner(subject.sid, cell, epoch)

    def _rollback_subtree(
        self,
        old_cell: Optional[int],
        new_cell: int,
        completed: list[tuple[int, str, Subject]],
        released: list[tuple[int, str, Subject]],
        kapi: "KernelAPI",
    ) -> None:
        """Return a torn subtree's members to the source cell.

        Adoptions that already completed are released from the
        destination first, so the subtree stays co-located; released-
        but-unadopted subjects are readmitted directly.  Best effort by
        design: conservation (no subject outside every cell, no pid
        left stopped) beats placement — a follow-up rebalance will
        re-run the partition.
        """
        res = self.resilience
        src = self.agents.get(old_cell) if old_cell is not None else None
        dst = self.agents.get(new_cell)
        to_readmit = list(released)
        for sid, path, subject in completed:
            if dst is not None and sid in dst.subjects:
                to_readmit.append((sid, path, dst.release_subject(sid, kapi)))
        for sid, path, subject in to_readmit:
            if src is not None:
                src.adopt_subject(subject, kapi)
                if res is not None:
                    res.note_owner(sid, old_cell)  # type: ignore[arg-type]
                    res.readmits += 1
                self._emit(
                    "plane.migration_readmit", sid=sid, path=path,
                    cell=old_cell,
                )

    # ------------------------------------------------------------------
    # Aggregation (experiments / benchmarks)
    # ------------------------------------------------------------------
    def attained_us(self) -> dict[int, int]:
        """Cumulative measured CPU (µs) per sid across every cell."""
        totals: dict[int, int] = {}
        for agent in self.agents.values():
            for sid in agent.subjects:
                totals[sid] = agent.cumulative_cpu_of(sid)
        return totals

    def subtree_attained_us(self) -> dict[str, int]:
        """Cumulative measured CPU (µs) per top-level subtree."""
        per_sid = self.attained_us()
        out: dict[str, int] = {}
        for node in self.tree.subtrees():
            out[node.name] = sum(
                per_sid.get(leaf.sid, 0)  # type: ignore[arg-type]
                for leaf in self.tree.leaves(node)
            )
        return out

    def overhead_fraction(self) -> float:
        """All agents' CPU over aggregate machine time (SMP-aware)."""
        elapsed = self.kernel.now * self.cells
        if elapsed <= 0:
            return 0.0
        spent = sum(
            self.kernel.getrusage(proc.pid)
            for proc in self.agent_procs.values()
        )
        return spent / elapsed
