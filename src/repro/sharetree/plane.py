"""Sharded multi-cell control plane: many ALPS cells on one SMP kernel.

One ALPS agent is a single process; past a few hundred subjects its own
measurement work exceeds its fair share (the §4.2 breakdown).  The
production-scale answer is *sharding*: run many concurrent ALPS cells
— one agent process per simulated CPU core, extending the
``bench_extension_smp`` seed — and give each cell ownership of whole
**subtrees** of the share tree, so intra-tenant proportions are always
enforced by exactly one agent.

:class:`ShardedAlpsPlane` builds the whole arrangement on one simulated
SMP kernel: it partitions the tree's top-level subtrees across cells
greedily by effective weight (LPT — heaviest subtree to the least
loaded cell, deterministic tie-break by creation order), spawns one
spinner worker per leaf and one ALPS agent per non-empty cell, and
keeps the partition balanced as weights change: :meth:`set_weight`
reweighs every cell's core from the shared tree and :meth:`rebalance`
migrates whole subtrees between cells when the greedy assignment moves
(:meth:`AlpsAgent.release_subject` → :meth:`AlpsAgent.adopt_subject`,
counting ``sharetree.migrate`` events and the tree's ``migrations``
bridge counter).

The plane is a *control plane*: migrations and reweighs happen between
``run_until`` calls, modelling an out-of-band controller, and are fully
deterministic for a fixed seed and call sequence.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.alps.agent import AlpsAgent, spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject
from repro.errors import SchedulerConfigError
from repro.kernel import make_kernel
from repro.kernel.kconfig import KernelConfig
from repro.kernel.process import Process
from repro.sharetree.tree import ShareNode, ShareTree
from repro.sim.engine import Engine
from repro.workloads.spinner import spinner_behavior

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer


class ShardedAlpsPlane:
    """Concurrent ALPS cells sharded over a share tree's subtrees."""

    def __init__(
        self,
        tree: ShareTree,
        alps_config: Optional[AlpsConfig] = None,
        *,
        cells: int = 2,
        seed: int = 0,
        observer: Optional["Observer"] = None,
    ) -> None:
        if cells < 1:
            raise SchedulerConfigError(f"cells must be >= 1, got {cells}")
        if not tree.subtrees():
            raise SchedulerConfigError("the share tree has no subtrees")
        if not tree.leaves():
            raise SchedulerConfigError("the share tree has no leaves")
        self.tree = tree
        self.cells = cells
        self.config = alps_config if alps_config is not None else AlpsConfig()
        self.observer = observer
        self.engine = Engine(seed=seed, observer=observer)
        # One simulated CPU per cell: each agent effectively owns a
        # core's worth of control work (the bench_extension_smp seed).
        self.kernel = make_kernel(self.engine, KernelConfig(ncpus=cells))
        if observer is not None:
            self.kernel.attach_observer(observer)
        #: Subtree name -> owning cell index (the shard map).
        self.assignment: dict[str, int] = self._partition()
        #: Leaf sid -> its worker process.
        self.workers: dict[int, Process] = {}
        #: Cell index -> agent (cells left empty by the partition have
        #: no agent; they still contribute kernel CPUs).
        self.agents: dict[int, AlpsAgent] = {}
        self.agent_procs: dict[int, Process] = {}
        #: Leaves moved between cells by :meth:`rebalance`.
        self.migrations = 0
        #: Rebalance passes that moved at least one subtree.
        self.rebalances = 0
        eff = tree.effective_shares()
        for uid, leaf in enumerate(tree.leaves()):
            self.workers[leaf.sid] = self.kernel.spawn(  # type: ignore[index]
                leaf.path.replace("/", "."), spinner_behavior(), uid=100 + uid
            )
        for cell in range(cells):
            subjects = [
                ProcessSubject(
                    sid=leaf.sid,  # type: ignore[arg-type]
                    share=eff[leaf.sid],  # type: ignore[index]
                    pid=self.workers[leaf.sid].pid,  # type: ignore[index]
                )
                for name in self._subtrees_of(cell)
                for leaf in tree.leaves(tree.node(name))
            ]
            if not subjects:
                continue
            proc, agent = spawn_alps(
                self.kernel,
                subjects,
                self.config,
                name=f"alps-c{cell}",
                sharetree=tree,
            )
            self.agents[cell] = agent
            self.agent_procs[cell] = proc
        self._emit("sharetree.attach", cells=cells, subtrees=len(self.assignment))

    # ------------------------------------------------------------------
    def _emit(self, kind: str, **fields) -> None:
        obs = self.observer
        if obs is not None and obs.enabled:
            obs.events.emit(self.engine.now, kind, **fields)

    def _partition(self) -> dict[str, int]:
        """Greedy LPT: heaviest subtree to the least-loaded cell.

        Deterministic: subtrees are ordered by (effective weight desc,
        creation order), ties between cells break to the lowest index.
        """
        order = list(self.tree.subtrees())
        weights = {
            node.name: self.tree.effective_weight(node.path) for node in order
        }
        ranked = sorted(
            order, key=lambda n: (-weights[n.name], order.index(n))
        )
        load = [0] * self.cells
        assignment: dict[str, int] = {}
        for node in ranked:
            cell = load.index(min(load))
            assignment[node.name] = cell
            load[cell] += weights[node.name]
        return assignment

    def _subtrees_of(self, cell: int) -> list[str]:
        """Subtree names owned by ``cell``, in creation order."""
        return [
            node.name
            for node in self.tree.subtrees()
            if self.assignment.get(node.name) == cell
        ]

    # ------------------------------------------------------------------
    def run_until(self, t_us: int) -> None:
        """Advance the whole plane to virtual time ``t_us``."""
        self.engine.run_until(t_us)

    def agent_of(self, subtree: str) -> AlpsAgent:
        """The agent currently enforcing ``subtree``."""
        cell = self.assignment.get(subtree)
        if cell is None or cell not in self.agents:
            raise SchedulerConfigError(f"no agent owns subtree {subtree!r}")
        return self.agents[cell]

    def cell_of_sid(self, sid: int) -> Optional[int]:
        """The cell whose agent currently controls ``sid``."""
        for cell, agent in self.agents.items():
            if sid in agent.subjects:
                return cell
        return None

    def members(self) -> dict[int, set[int]]:
        """Cell index -> controlled sids (the conservation surface)."""
        return {
            cell: set(agent.subjects) for cell, agent in self.agents.items()
        }

    # ------------------------------------------------------------------
    def set_weight(self, path: str, weight: int) -> None:
        """Reweight a tree node, reweigh every cell, and rebalance."""
        self.tree.set_weight(path, weight)
        for agent in self.agents.values():
            agent.reweigh_from_tree()
        self._emit("sharetree.reweigh", path=path, weight=weight)
        self.rebalance()

    def rebalance(self) -> int:
        """Re-run the greedy partition; migrate subtrees that moved.

        Returns the number of leaves migrated.  Whole subtrees move
        atomically — a tenant's members are never split across cells —
        and every migrated leaf is released (stopped pids resumed) by
        its old agent before the new one adopts it, so no process can
        be wedged in SIGSTOP by a rebalance.
        """
        new_assignment = self._partition()
        kapi = self.kernel.kapi
        moved_leaves = 0
        moved_subtrees = 0
        for name, new_cell in new_assignment.items():
            old_cell = self.assignment.get(name)
            if old_cell == new_cell:
                continue
            src = self.agents.get(old_cell) if old_cell is not None else None
            released = []
            moved_paths = []
            for leaf in self.tree.leaves(self.tree.node(name)):
                sid = leaf.sid
                assert sid is not None
                if src is None or sid not in src.subjects:
                    continue  # pragma: no cover - defensive
                released.append(src.release_subject(sid, kapi))
                moved_paths.append((sid, leaf.path))
            if not released:
                continue
            moved_subtrees += 1
            dst = self.agents.get(new_cell)
            if dst is None:
                # A previously empty cell gains its first subtree: spawn
                # its agent with the migrating members as the founding
                # group (baselines are established at its INIT phase).
                proc, dst = spawn_alps(
                    self.kernel,
                    released,
                    self.config,
                    name=f"alps-c{new_cell}",
                    sharetree=self.tree,
                )
                self.agents[new_cell] = dst
                self.agent_procs[new_cell] = proc
            else:
                for subject in released:
                    dst.adopt_subject(subject, kapi)
            moved_leaves += len(released)
            for sid, path in moved_paths:
                self._emit(
                    "sharetree.migrate",
                    sid=sid, path=path, src=old_cell, dst=new_cell,
                )
        self.assignment = new_assignment
        if moved_leaves:
            self.migrations += moved_leaves
            self.tree.note_migration(moved_leaves)
            self.rebalances += 1
            self._emit(
                "sharetree.rebalance",
                subtrees=moved_subtrees, leaves=moved_leaves,
            )
        return moved_leaves

    # ------------------------------------------------------------------
    # Aggregation (experiments / benchmarks)
    # ------------------------------------------------------------------
    def attained_us(self) -> dict[int, int]:
        """Cumulative measured CPU (µs) per sid across every cell."""
        totals: dict[int, int] = {}
        for agent in self.agents.values():
            for sid in agent.subjects:
                totals[sid] = agent.cumulative_cpu_of(sid)
        return totals

    def subtree_attained_us(self) -> dict[str, int]:
        """Cumulative measured CPU (µs) per top-level subtree."""
        per_sid = self.attained_us()
        out: dict[str, int] = {}
        for node in self.tree.subtrees():
            out[node.name] = sum(
                per_sid.get(leaf.sid, 0)  # type: ignore[arg-type]
                for leaf in self.tree.leaves(node)
            )
        return out

    def overhead_fraction(self) -> float:
        """All agents' CPU over aggregate machine time (SMP-aware)."""
        elapsed = self.kernel.now * self.cells
        if elapsed <= 0:
            return 0.0
        spent = sum(
            self.kernel.getrusage(proc.pid)
            for proc in self.agent_procs.values()
        )
        return spent / elapsed
