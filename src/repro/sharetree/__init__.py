"""Hierarchical share trees and the sharded multi-cell control plane.

The architectural layer that turns "N processes, N shares" into
"tenants are subtrees" (docs/share_tree.md):

* :class:`ShareTree` / :class:`ShareNode` — recursive proportional
  allocation (Solaris-SRM-style), resolved to exact flat integer
  shares for the unmodified Figure 3 algorithm, with per-subtree
  admission gates;
* :class:`ShardedAlpsPlane` — many concurrent ALPS cells across
  simulated SMP cores, each owning whole subtrees, with a rebalancer
  migrating subtrees between cells as weights change;
* :func:`demo_tree` — the worked example used by the docs chapter and
  ``repro top --tree``;
* :class:`PlaneResilience` / :class:`PlaneResilienceConfig` — the
  plane's fault-tolerance stack (per-cell supervision with re-homing,
  journaled two-phase migrations, epoch-fenced salvage; docs chapter
  "Plane fault tolerance").
"""

from repro.sharetree.plane import ShardedAlpsPlane
from repro.sharetree.resilience import PlaneResilience, PlaneResilienceConfig
from repro.sharetree.tree import ShareNode, ShareTree


def demo_tree() -> ShareTree:
    """The docs chapter's worked example, ready to attach.

    Tenant ``a`` (weight 3) runs a 2:1 pair of workers; tenants ``b``
    (weight 2) and ``c`` (weight 1) run one worker each.  Effective
    shares resolve to ``{0: 6, 1: 3, 2: 6, 3: 3}`` on a scale of 18 —
    half the machine to tenant ``a``, split 2:1 inside it.
    """
    tree = ShareTree()
    tree.group("a", 3)
    tree.leaf("a/a0", sid=0, weight=2)
    tree.leaf("a/a1", sid=1, weight=1)
    tree.group("b", 2)
    tree.leaf("b/b0", sid=2, weight=1)
    tree.group("c", 1)
    tree.leaf("c/c0", sid=3, weight=1)
    return tree


__all__ = [
    "PlaneResilience",
    "PlaneResilienceConfig",
    "ShardedAlpsPlane",
    "ShareNode",
    "ShareTree",
    "demo_tree",
]
