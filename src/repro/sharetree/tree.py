"""Hierarchical share trees: recursive proportional allocation.

ALPS (the paper) manages one *flat* group: N subjects, N integer
shares, proportions ``share_i / S``.  Solaris SRM — Gunther's "Unfair
Advantage" and "UNIX Resource Managers" capacity-planning papers — show
the production-scale generalisation: entitlements form a *tree* (users
→ groups → processes) and each node's fraction of the machine is its
weight relative to its **siblings**, recursively::

    f(node) = f(parent) * weight(node) / sum(weight(sibling))

:class:`ShareTree` resolves that recursion into the flat integer shares
the unmodified :class:`~repro.alps.algorithm.AlpsCore` understands, so
hierarchical policy rides on the exact Figure 3 algorithm.

Effective-share arithmetic (exact, and flat-identical)
------------------------------------------------------
For leaf ℓ let ``N_ℓ`` be the product of weights along its path (root
excluded) and ``D_ℓ`` the product of each ancestor level's
sibling-weight sum, so ``f(ℓ) = N_ℓ / D_ℓ`` exactly.  With
``D = lcm(all D_ℓ)`` the integer

    eff(ℓ) = N_ℓ * D / D_ℓ

preserves every ratio exactly (no floats, no rounding).  The products
are deliberately **unreduced** — mirroring the flat model, which never
rescales shares by their GCD — so a depth-1 tree yields each leaf's raw
weight verbatim: ``D_ℓ = S`` for every leaf, hence ``eff(ℓ) =
weight(ℓ)``.  That identity is what makes attaching a flat-equivalent
tree schedule-invisible (``AlpsCore.set_share`` no-ops on a zero
delta); the differential tests in
``tests/sharetree/test_flat_equivalence.py`` pin it byte-for-byte.

Admission composes per subtree: any group node may carry a bounded
:class:`~repro.overload.admission.AdmissionQueue` (``capacity=``), and
arrivals into that subtree queue FIFO against the subtree's *own*
member count — one noisy tenant's herd cannot consume another tenant's
admission headroom (docs/share_tree.md).
"""

from __future__ import annotations

from fractions import Fraction
from math import lcm
from typing import Iterator, Mapping, Optional, Sequence, Union

from repro.errors import SchedulerConfigError
from repro.overload.admission import AdmissionQueue


class ShareNode:
    """One node of a share tree: a group or (with a ``sid``) a leaf."""

    __slots__ = ("name", "weight", "parent", "children", "sid", "admission")

    def __init__(
        self,
        name: str,
        weight: int,
        parent: Optional["ShareNode"],
        *,
        sid: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> None:
        self.name = name
        self.weight = weight
        self.parent = parent
        #: Insertion-ordered children (determinism: every walk below
        #: iterates in creation order).
        self.children: dict[str, ShareNode] = {}
        #: Scheduling subject id; ``None`` marks a group node.
        self.sid = sid
        #: Per-subtree admission gate; ``None`` admits unboundedly.
        self.admission: Optional[AdmissionQueue] = (
            AdmissionQueue(capacity) if capacity is not None else None
        )

    @property
    def is_leaf(self) -> bool:
        return self.sid is not None

    @property
    def path(self) -> str:
        """Slash-joined path from the root (the root itself is ``""``)."""
        parts: list[str] = []
        node: Optional[ShareNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    @property
    def depth(self) -> int:
        """Edges between this node and the root."""
        d = 0
        node = self.parent
        while node is not None:
            d += 1
            node = node.parent
        return d

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"leaf sid={self.sid}" if self.is_leaf else "group"
        return f"ShareNode({self.path!r}, w={self.weight}, {kind})"


class ShareTree:
    """A weight tree resolving to flat integer shares for ``AlpsCore``.

    Paths are slash-joined names (``"tenants/alice/worker0"``); the
    root is the empty path.  Groups are created with :meth:`group`,
    leaves (the schedulable subjects) with :meth:`leaf`.  All weights
    are positive integers, like the paper's shares.
    """

    def __init__(self) -> None:
        self.root = ShareNode("", 1, None)
        self._by_sid: dict[int, ShareNode] = {}
        #: Group nodes carrying an admission queue (drain sweep set).
        self._gates: list[ShareNode] = []
        #: Leaves moved between cells by a plane rebalance
        #: (:meth:`note_migration`; surfaces as the
        #: ``alps_sharetree_migrations`` bridge counter).
        self.migrations = 0
        #: Weight mutations applied via :meth:`set_weight`.
        self.reweighs = 0

    # ------------------------------------------------------------------
    # Construction / mutation
    # ------------------------------------------------------------------
    def node(self, path: str) -> ShareNode:
        """Resolve ``path`` to its node; raises on a missing segment."""
        node = self.root
        if path:
            for part in path.split("/"):
                child = node.children.get(part)
                if child is None:
                    raise SchedulerConfigError(
                        f"share tree has no node {path!r} (missing {part!r})"
                    )
                node = child
        return node

    def _attach(
        self,
        path: str,
        weight: int,
        *,
        sid: Optional[int] = None,
        capacity: Optional[int] = None,
    ) -> ShareNode:
        if not path:
            raise SchedulerConfigError("cannot re-create the root node")
        if not isinstance(weight, int) or weight <= 0:
            raise SchedulerConfigError(
                f"weight for {path!r} must be a positive integer, got {weight!r}"
            )
        parent_path, _, name = path.rpartition("/")
        parent = self.node(parent_path)
        if parent.is_leaf:
            raise SchedulerConfigError(
                f"cannot attach {path!r} under leaf {parent.path!r}"
            )
        if name in parent.children:
            raise SchedulerConfigError(f"node {path!r} already exists")
        node = ShareNode(name, weight, parent, sid=sid, capacity=capacity)
        parent.children[name] = node
        if node.admission is not None:
            self._gates.append(node)
        return node

    def group(
        self, path: str, weight: int, *, capacity: Optional[int] = None
    ) -> ShareNode:
        """Create an internal group node (a tenant, user, or job class).

        ``capacity`` bounds the subtree's admitted membership with a
        FIFO :class:`AdmissionQueue` (docs/overload.md semantics, scoped
        to this subtree).
        """
        return self._attach(path, weight, capacity=capacity)

    def leaf(self, path: str, *, sid: int, weight: int) -> ShareNode:
        """Create a leaf bound to scheduling subject ``sid``."""
        if sid in self._by_sid:
            raise SchedulerConfigError(
                f"sid {sid} is already bound to {self._by_sid[sid].path!r}"
            )
        node = self._attach(path, weight, sid=sid)
        self._by_sid[sid] = node
        return node

    def set_weight(self, path: str, weight: int) -> None:
        """Reweight a node; every descendant leaf's fraction follows."""
        if not isinstance(weight, int) or weight <= 0:
            raise SchedulerConfigError(
                f"weight for {path!r} must be a positive integer, got {weight!r}"
            )
        node = self.node(path)
        if node is self.root:
            raise SchedulerConfigError("the root carries no weight")
        if node.weight != weight:
            node.weight = weight
            self.reweighs += 1

    def remove(self, path: str) -> ShareNode:
        """Prune a node (and its whole subtree) from the tree."""
        node = self.node(path)
        if node is self.root:
            raise SchedulerConfigError("cannot remove the root")
        assert node.parent is not None
        del node.parent.children[node.name]
        for n in self._walk(node):
            if n.sid is not None:
                del self._by_sid[n.sid]
            if n.admission is not None:
                self._gates.remove(n)
        return node

    def discard_sid(self, sid: int) -> bool:
        """Drop the leaf bound to ``sid`` if present (subject death)."""
        node = self._by_sid.get(sid)
        if node is None:
            return False
        self.remove(node.path)
        return True

    def find_sid(self, sid: int) -> Optional[ShareNode]:
        """The leaf bound to ``sid``, or None."""
        return self._by_sid.get(sid)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def _walk(self, start: Optional[ShareNode] = None) -> Iterator[ShareNode]:
        """Depth-first, creation-order walk (start node included)."""
        stack = [self.root if start is None else start]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(list(node.children.values())))

    def nodes(self) -> list[ShareNode]:
        """Every node below the root, depth-first in creation order."""
        return [n for n in self._walk() if n is not self.root]

    def leaves(self, under: Optional[ShareNode] = None) -> list[ShareNode]:
        """Leaves below ``under`` (default: the whole tree), in order."""
        return [n for n in self._walk(under) if n.is_leaf]

    def subtrees(self) -> list[ShareNode]:
        """The root's children — the sharding unit of the plane."""
        return list(self.root.children.values())

    @property
    def node_count(self) -> int:
        return sum(1 for _ in self._walk()) - 1  # root excluded

    @property
    def leaf_count(self) -> int:
        return len(self._by_sid)

    @property
    def depth(self) -> int:
        """Deepest leaf's distance from the root (0 for an empty tree)."""
        return max((leaf.depth for leaf in self._by_sid.values()), default=0)

    # ------------------------------------------------------------------
    # Effective shares (the heart of the module)
    # ------------------------------------------------------------------
    def _terms(self, node: ShareNode) -> tuple[int, int]:
        """Unreduced path products ``(N, D)`` with ``f(node) = N/D``."""
        n = d = 1
        while node.parent is not None:
            n *= node.weight
            d *= sum(c.weight for c in node.parent.children.values())
            node = node.parent
        return n, d

    def _scale(self) -> int:
        """``lcm`` of every leaf's unreduced denominator (1 if empty)."""
        denoms = [self._terms(leaf)[1] for leaf in self.leaves()]
        return lcm(*denoms) if denoms else 1

    def fraction_of(self, path: str) -> Fraction:
        """A node's exact machine fraction under full contention."""
        n, d = self._terms(self.node(path))
        return Fraction(n, d)

    def effective_shares(self) -> dict[int, int]:
        """Flat integer shares, one per leaf sid, preserving all ratios.

        Depth-1 trees return each leaf's raw weight verbatim (see the
        module docstring) — the flat-equivalence identity.
        """
        scale = self._scale()
        shares: dict[int, int] = {}
        for leaf in self.leaves():
            n, d = self._terms(leaf)
            shares[leaf.sid] = n * (scale // d)  # type: ignore[index]
        return shares

    def effective_weight(self, path: str) -> int:
        """Any node's effective integer share on the leaves' scale.

        ``D(node)`` divides every descendant leaf's ``D_ℓ`` and hence
        the lcm, so this is always exact; children's effective weights
        sum to their parent's (the conservation property the Hypothesis
        tests pin at every level).
        """
        n, d = self._terms(self.node(path))
        return n * (self._scale() // d)

    # ------------------------------------------------------------------
    # Admission (per-subtree gates)
    # ------------------------------------------------------------------
    def admission_for(self, node: ShareNode) -> Optional[ShareNode]:
        """Nearest ancestor-or-self carrying an admission queue."""
        cur: Optional[ShareNode] = node
        while cur is not None:
            if cur.admission is not None:
                return cur
            cur = cur.parent
        return None

    def gates(self) -> list[ShareNode]:
        """Group nodes carrying an admission queue, in creation order."""
        return list(self._gates)

    @property
    def pending_admissions(self) -> int:
        """Entries waiting in any subtree's admission queue."""
        if not self._gates:
            return 0
        return sum(g.admission.depth for g in self._gates)  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # Bookkeeping hooks
    # ------------------------------------------------------------------
    def note_migration(self, count: int = 1) -> None:
        """Record leaves moved between cells (plane rebalancer hook)."""
        self.migrations += count

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def flat(
        cls, shares: Union[Sequence[int], Mapping[int, int]]
    ) -> "ShareTree":
        """The flat model as a depth-1 tree: leaf ``p{sid}`` per share.

        A sequence maps position to sid; a mapping uses its keys as
        sids directly (the ``HostAlps`` form, where sids are pids).
        ``ShareTree.flat(shares).effective_shares()`` reproduces the
        input exactly — attaching it to an agent is a schedule no-op.
        """
        tree = cls()
        items = (
            shares.items()
            if isinstance(shares, Mapping)
            else enumerate(shares)
        )
        for sid, share in items:
            tree.leaf(f"p{sid}", sid=sid, weight=share)
        return tree

    def check_conservation(self) -> None:
        """Assert children's effective weights sum to their parent's.

        Cheap enough for tests and the chaos-style invariants; raises
        :class:`SchedulerConfigError` on the first violation.
        """
        for node in self._walk():
            if not node.children:
                continue
            parent_eff = (
                sum(self.effective_shares().values())
                if node is self.root
                else self.effective_weight(node.path)
            )
            child_sum = sum(
                self.effective_weight(c.path) for c in node.children.values()
            )
            if child_sum != parent_eff:
                raise SchedulerConfigError(
                    f"conservation violated at {node.path!r}: "
                    f"children sum {child_sum} != parent {parent_eff}"
                )
