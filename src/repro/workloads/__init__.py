"""Workload generators used by the paper's evaluation.

* :mod:`~repro.workloads.shares` — the Table 2 share distributions
  (linear / equal / skewed over 5, 10, 20 processes).
* :mod:`~repro.workloads.spinner` — compute-bound processes.
* :mod:`~repro.workloads.io_pattern` — the Section 3.3 compute/sleep
  I/O simulation.
* :mod:`~repro.workloads.scenarios` — assembled scenarios: one ALPS
  over one workload, the Section 4.1 phased multi-ALPS experiment, and
  the Section 4.2 scalability sweep configuration.
"""

from repro.workloads.io_pattern import compute_sleep_behavior
from repro.workloads.shares import (
    DISTRIBUTIONS,
    ShareDistribution,
    equal_shares,
    linear_shares,
    normalize_shares,
    skewed_shares,
    workload_shares,
)
from repro.workloads.spinner import spinner_behavior
from repro.workloads.scenarios import (
    ControlledWorkload,
    build_controlled_workload,
    MultiAlpsScenario,
    build_multi_alps_scenario,
)

__all__ = [
    "DISTRIBUTIONS",
    "ControlledWorkload",
    "MultiAlpsScenario",
    "ShareDistribution",
    "build_controlled_workload",
    "build_multi_alps_scenario",
    "compute_sleep_behavior",
    "equal_shares",
    "linear_shares",
    "normalize_shares",
    "skewed_shares",
    "spinner_behavior",
    "workload_shares",
]
