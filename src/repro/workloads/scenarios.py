"""Assembled simulation scenarios.

``build_controlled_workload`` wires the common case — one kernel, one
ALPS, N compute-bound processes with given shares — and is the basis of
the Figure 4/5/8/9 experiments.  ``build_multi_alps_scenario`` builds
the Section 4.1 three-application phased experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.alps.agent import AlpsAgent, spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.kernel import make_kernel
from repro.kernel.behaviors import Behavior
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process
from repro.sim.engine import Engine
from repro.sim.trace import Tracer
from repro.workloads.spinner import spinner_behavior

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer
    from repro.overload.guard import OverloadGuard
    from repro.perf.counters import PerfCounters
    from repro.resilience.journal import MemoryJournal
    from repro.resilience.supervisor import Supervisor
    from repro.sharetree.tree import ShareTree


@dataclass(slots=True)
class ControlledWorkload:
    """One ALPS controlling one group of processes."""

    engine: Engine
    kernel: Kernel
    alps_proc: Process
    agent: AlpsAgent
    workers: list[Process]
    shares: list[int]
    #: Present when the workload runs under a fault plan.
    injector: Optional[FaultInjector] = None
    #: Present when the workload was built with an observability handle
    #: (``build_controlled_workload(observer=...)``).
    observer: Optional["Observer"] = None
    #: Present when the agent journals its state (crash safety).
    journal: Optional["MemoryJournal"] = None
    #: Present when the agent runs under a supervision wrapper.
    supervisor: Optional["Supervisor"] = None
    #: Present when the agent runs with overload protection
    #: (``build_controlled_workload(overload=...)``).
    overload: Optional["OverloadGuard"] = None
    #: Present when the agent resolves shares from a hierarchical share
    #: tree (``build_controlled_workload(sharetree=...)``).
    sharetree: Optional["ShareTree"] = None

    @property
    def total_shares(self) -> int:
        """Sum of the group's shares."""
        return sum(self.shares)

    def overhead_fraction(self, *, since: int = 0) -> float:
        """ALPS CPU time / wall time, the paper's overhead metric."""
        elapsed = self.kernel.now - since
        if elapsed <= 0:
            return 0.0
        return self.kernel.getrusage(self.alps_proc.pid) / elapsed


KernelFactory = Callable[[Engine, KernelConfig], Kernel]


def build_controlled_workload(
    shares: Sequence[int],
    alps_config: AlpsConfig,
    *,
    seed: int = 0,
    kernel_config: KernelConfig = DEFAULT_CONFIG,
    behaviors: Optional[Sequence[Behavior]] = None,
    alps_start_delay: int = 0,
    kernel_factory: KernelFactory = make_kernel,
    fault_plan: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    counters: Optional["PerfCounters"] = None,
    observer: Optional["Observer"] = None,
    journal: Optional["MemoryJournal"] = None,
    supervisor: Optional["Supervisor"] = None,
    overload: Optional["OverloadGuard"] = None,
    sharetree: Optional["ShareTree"] = None,
) -> ControlledWorkload:
    """Create a kernel with N workers under one ALPS.

    ``behaviors`` overrides the default all-spinner workload (used by
    the I/O experiment to make one process block periodically);
    ``kernel_factory`` selects the kernel policy (e.g.
    :class:`~repro.kernel.cfs.CfsKernel` for the portability study) —
    the default dispatches on ``kernel_config.backend`` through
    :func:`repro.kernel.make_kernel`, so ``backend="batch"`` selects
    the struct-of-arrays batch kernel with no other changes.
    ``fault_plan`` runs the whole workload under deterministic fault
    injection (docs/fault_model.md); a null/omitted plan is the exact
    clean path.  ``tracer`` attaches an event tracer to the engine (the
    differential equivalence harness compares its output byte-for-byte
    between kernel fast paths); ``counters`` attaches perf counters.
    ``observer`` attaches a :class:`repro.obs.Observer` to every layer —
    engine run accounting, kernel context-switch/signal events, and the
    agent's quantum/eligibility/cycle events and cost spans — without
    perturbing the schedule (docs/observability.md).  ``journal``
    attaches a write-ahead state journal to the agent (crash safety,
    docs/resilience.md; the injector's journal-write faults are wired as
    its fault hook when both are present); ``supervisor`` hosts the
    agent behind the supervision wrapper (heartbeats, backoff restarts,
    degraded-mode stand-down), which subsumes the plain fault wrapper.
    ``overload`` arms the overload-protection layer — admission control,
    starvation detection, and the graceful-degradation ladder
    (docs/overload.md); the injector's arrival storms and nice bombs
    require it to be meaningful but do not require it.
    ``sharetree`` attaches a hierarchical :class:`ShareTree` whose
    leaves carry the same sids as the built subjects; the agent resolves
    each subject's effective share from the tree (docs/share_tree.md).
    A flat one-level tree built from the same shares is schedule
    invisible — the tree resolves to the raw shares verbatim.
    """
    engine = Engine(seed=seed, tracer=tracer, counters=counters, observer=observer)
    kernel = kernel_factory(engine, kernel_config)
    if observer is not None:
        kernel.attach_observer(observer)
    workers: list[Process] = []
    for i, share in enumerate(shares):
        beh = behaviors[i] if behaviors is not None else spinner_behavior()
        workers.append(kernel.spawn(f"w{i}", beh, uid=100 + i))
    subjects = [
        ProcessSubject(sid=i, share=share, pid=workers[i].pid)
        for i, share in enumerate(shares)
    ]
    injector: Optional[FaultInjector] = None
    if fault_plan is not None:
        injector = FaultInjector(fault_plan, engine, kernel)
        injector.arm([w.pid for w in workers])
    if journal is not None and injector is not None and journal.fault_hook is None:
        journal.fault_hook = injector.fault_journal_append
    alps_proc, agent = spawn_alps(
        kernel,
        subjects,
        alps_config,
        start_delay=alps_start_delay,
        injector=injector,
        journal=journal,
        supervisor=supervisor,
        overload=overload,
        sharetree=sharetree,
    )
    if injector is not None:
        injector.arm_agent(agent, alps_proc.pid)
    return ControlledWorkload(
        engine=engine,
        kernel=kernel,
        alps_proc=alps_proc,
        agent=agent,
        workers=workers,
        shares=list(shares),
        injector=injector,
        observer=observer,
        journal=journal,
        supervisor=supervisor,
        overload=overload,
        sharetree=sharetree,
    )


@dataclass(slots=True)
class MultiAlpsScenario:
    """Section 4.1: several independent ALPSs on one kernel."""

    engine: Engine
    kernel: Kernel
    groups: list[ControlledWorkloadGroup] = field(default_factory=list)


@dataclass(slots=True)
class ControlledWorkloadGroup:
    """One application (ALPS + workers) within a multi-ALPS scenario."""

    label: str
    alps_proc: Process
    agent: AlpsAgent
    workers: list[Process]
    shares: list[int]
    start_time: int


def build_multi_alps_scenario(
    group_specs: Sequence[tuple[str, Sequence[int], int]],
    alps_config: AlpsConfig,
    *,
    seed: int = 0,
    kernel_config: KernelConfig = DEFAULT_CONFIG,
) -> MultiAlpsScenario:
    """Build several (label, shares, start_time_us) groups, each with its
    own ALPS process, all contending under one kernel scheduler."""
    engine = Engine(seed=seed)
    kernel = make_kernel(engine, kernel_config)
    scenario = MultiAlpsScenario(engine=engine, kernel=kernel)
    for label, shares, start in group_specs:
        workers = [
            kernel.spawn(
                f"{label}{i}", spinner_behavior(), uid=0, start_delay=start
            )
            for i in range(len(shares))
        ]
        subjects = [
            ProcessSubject(sid=i, share=share, pid=workers[i].pid)
            for i, share in enumerate(shares)
        ]
        alps_proc, agent = spawn_alps(
            kernel,
            subjects,
            alps_config,
            name=f"alps-{label}",
            start_delay=start,
        )
        scenario.groups.append(
            ControlledWorkloadGroup(
                label=label,
                alps_proc=alps_proc,
                agent=agent,
                workers=workers,
                shares=list(shares),
                start_time=start,
            )
        )
    return scenario
