"""Share distributions of the paper's evaluation (Table 2).

Workloads have 5, 10, or 20 processes with n² total shares:

* linear — odd numbers {1, 3, 5, ...}
* equal — n shares each
* skewed — all but one process hold 1 share; the last holds the rest

The evaluation deliberately does **not** rescale shares by their GCD.
"""

from __future__ import annotations

import enum

from repro.errors import SchedulerConfigError


class ShareDistribution(enum.Enum):
    """Distribution models from Table 2."""

    LINEAR = "linear"
    EQUAL = "equal"
    SKEWED = "skewed"


#: All three distribution models in paper order.
DISTRIBUTIONS = (
    ShareDistribution.SKEWED,
    ShareDistribution.LINEAR,
    ShareDistribution.EQUAL,
)


def linear_shares(n: int) -> list[int]:
    """Linear model: the first n odd numbers (sums to n²)."""
    _check(n)
    return [2 * i + 1 for i in range(n)]


def equal_shares(n: int, per_process: int | None = None) -> list[int]:
    """Equal model: ``per_process`` shares each (default n, summing to n²).

    The Section 4.2 scalability experiment uses ``per_process=5``.
    """
    _check(n)
    per = n if per_process is None else per_process
    if per <= 0:
        raise SchedulerConfigError(f"per_process must be positive, got {per}")
    return [per] * n

def skewed_shares(n: int) -> list[int]:
    """Skewed model: n-1 single shares plus one holding the remainder of n²."""
    _check(n)
    if n == 1:
        return [1]
    return [1] * (n - 1) + [n * n - (n - 1)]


def workload_shares(model: ShareDistribution, n: int) -> list[int]:
    """Shares for a Table 2 workload of ``n`` processes."""
    if model is ShareDistribution.LINEAR:
        return linear_shares(n)
    if model is ShareDistribution.EQUAL:
        return equal_shares(n)
    if model is ShareDistribution.SKEWED:
        return skewed_shares(n)
    raise SchedulerConfigError(f"unknown distribution {model!r}")


def normalize_shares(weights: list[int]) -> list[int]:
    """Scale integer weights by their GCD.

    The paper defines the cycle length assuming "the shares have been
    scaled by their greatest common divisor"; applications with large
    raw weights (cell counts, bytes, request rates) should normalise so
    cycles — and therefore the fairness horizon — stay short.
    """
    import math

    if not weights:
        raise SchedulerConfigError("need at least one weight")
    if any(w <= 0 for w in weights):
        raise SchedulerConfigError(f"weights must be positive, got {weights}")
    g = math.gcd(*weights)
    return [w // g for w in weights]


def _check(n: int) -> None:
    if n < 1:
        raise SchedulerConfigError(f"workload needs >= 1 process, got {n}")
