"""Compute-bound workload processes.

The paper's accuracy/overhead experiments use synthetic compute-bound
processes (a loop counter).  The behavior requests CPU in large chunks;
chunk size only bounds event frequency, not semantics, because the
kernel preempts freely within a chunk.
"""

from __future__ import annotations

from repro.kernel.actions import Compute
from repro.kernel.behaviors import GeneratorBehavior
from repro.units import SEC


def spinner_behavior(chunk_us: int = 10 * SEC) -> GeneratorBehavior:
    """An endless CPU burner requesting ``chunk_us`` of CPU at a time."""

    def run(proc, kapi):
        while True:
            yield Compute(chunk_us)

    return GeneratorBehavior(run)
