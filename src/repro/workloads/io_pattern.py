"""The Section 3.3 I/O workload: alternate computing and sleeping.

Process B in the paper's I/O experiment "simulat[es] I/O requests by
sleeping for 240 milliseconds after every 80 milliseconds of execution
time", starting only after an initial warm-up of pure computation.
"""

from __future__ import annotations

from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior
from repro.units import ms


def compute_sleep_behavior(
    compute_us: int = ms(80),
    sleep_us: int = ms(240),
    *,
    warmup_cpu_us: int = 0,
    channel: str = "bio",
) -> GeneratorBehavior:
    """Compute ``compute_us`` of CPU, then sleep ``sleep_us``, forever.

    ``warmup_cpu_us`` of pure computation runs first, reproducing the
    paper's "after waiting for the processes to reach a steady state"
    protocol.  The sleep channel is kvm-visible, so ALPS's blocked
    detection sees the process waiting on I/O.
    """

    def run(proc, kapi):
        if warmup_cpu_us > 0:
            yield Compute(warmup_cpu_us)
        while True:
            yield Compute(compute_us)
            yield Sleep(sleep_us, channel=channel)

    return GeneratorBehavior(run)
