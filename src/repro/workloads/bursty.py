"""Bursty (on/off) workload processes.

The paper evaluates compute-bound processes and one deterministic
compute/sleep pattern.  Real services are burstier; this behavior
alternates exponentially-distributed CPU bursts with exponentially-
distributed idle (blocked) periods, giving a Markov-modulated demand
stream for robustness experiments beyond the paper's evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SchedulerConfigError
from repro.kernel.actions import Compute, Sleep
from repro.kernel.behaviors import GeneratorBehavior


def bursty_behavior(
    rng: np.random.Generator,
    *,
    mean_burst_us: int,
    mean_idle_us: int,
    channel: str = "netio",
) -> GeneratorBehavior:
    """Alternate exp(mean_burst) CPU with exp(mean_idle) blocked time.

    The long-run *demand* fraction is
    ``mean_burst / (mean_burst + mean_idle)`` of one CPU; whether the
    process achieves it depends on the scheduler and its share.
    """
    if mean_burst_us <= 0 or mean_idle_us < 0:
        raise SchedulerConfigError(
            f"need mean_burst_us > 0 and mean_idle_us >= 0, got "
            f"{mean_burst_us}, {mean_idle_us}"
        )

    def run(proc, kapi):
        while True:
            burst = max(1, int(rng.exponential(mean_burst_us)))
            yield Compute(burst)
            if mean_idle_us > 0:
                idle = max(1, int(rng.exponential(mean_idle_us)))
                yield Sleep(idle, channel=channel)

    return GeneratorBehavior(run)
