"""Performance instrumentation for the simulation substrate.

Three concerns, kept deliberately separate:

* :mod:`repro.perf.counters` — cheap named counters/timers that hot
  components account into at call granularity (never per event);
* :mod:`repro.perf.profiler` — cProfile and wall-clock helpers for
  ad-hoc investigation of the hot path;
* :mod:`repro.perf.differential` — the equivalence harness that runs
  the same workload over the strict (eager) and optimized (lazy)
  kernel paths and asserts byte-identical schedules;
* :mod:`repro.perf.report` — collection and rendering of a run's
  counter snapshot (the ``repro perf report`` CLI subcommand).

See docs/performance.md for the methodology.
"""

from repro.perf.counters import PerfCounters

__all__ = ["PerfCounters"]
