"""Collect and render a run's performance counters.

``collect_workload_counters`` folds the substrate's own statistics —
engine run-loop accounting, kernel scheduler activity, agent overhead
counters — into one :class:`PerfCounters`, and ``render_report`` turns
a counter snapshot into the aligned text the ``repro perf report`` CLI
subcommand prints.  Collection reads statistics the components already
keep; it adds no hot-path cost.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.perf.counters import PerfCounters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.scenarios import ControlledWorkload


def collect_workload_counters(
    workload: "ControlledWorkload",
    *,
    into: PerfCounters | None = None,
) -> PerfCounters:
    """Snapshot a finished workload's substrate statistics.

    When the workload's engine was built with counters attached (see
    ``build_controlled_workload(counters=...)``), pass them as ``into``
    so the engine's wall-time accounting and the component statistics
    land in one place.
    """
    counters = into if into is not None else PerfCounters()
    engine = workload.engine
    kernel = workload.kernel
    agent = workload.agent
    counters.incr("engine.events_total", engine.events_processed)
    counters.incr("engine.final_now_us", engine.now)
    for name, value in kernel.perf_snapshot().items():
        counters.incr(name, value)
    counters.incr("kernel.exits", kernel.exit_count)
    counters.incr("agent.invocations", agent.invocations)
    counters.incr("agent.reads", agent.reads)
    counters.incr("agent.signals_sent", agent.signals_sent)
    counters.incr("agent.signal_retries", agent.signal_retries)
    counters.incr("agent.heals", agent.heals)
    counters.incr("agent.missed_boundaries", agent.missed_boundaries)
    counters.incr("agent.cycles", len(agent.cycle_log))
    return counters


def render_report(counters: PerfCounters) -> str:
    """Aligned text rendering of a counter snapshot.

    Counts first, then timers with derived events/sec when both the
    engine event count and run_until wall time are present.
    """
    lines: list[str] = []
    snap = counters.snapshot()
    counts = snap["counts"]
    times = snap["times"]
    if counts:
        width = max(len(k) for k in counts)
        lines.append("counters:")
        for name in sorted(counts):
            lines.append(f"  {name.ljust(width)}  {counts[name]:>14,}")
    if times:
        width = max(len(k) for k in times)
        lines.append("wall time:")
        for name in sorted(times):
            lines.append(f"  {name.ljust(width)}  {times[name]:>12.6f} s")
    rate = counters.rate("engine.events", "engine.run_until")
    if rate > 0:
        lines.append(f"throughput: {rate:,.0f} events/sec (run_until)")
    return "\n".join(lines)
