"""Named performance counters and timers.

A :class:`PerfCounters` instance is a passive sink: components that
were handed one add to it, components that were not pay nothing.  The
engine accounts per *run call* (wall time + events processed), never
per event, so attaching counters does not perturb the hot loop being
measured.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping


class PerfCounters:
    """Accumulates named event counts and named wall-time totals.

    Counts and times live in separate namespaces: ``incr("x")`` and
    ``add_time("x", dt)`` do not collide.
    """

    __slots__ = ("counts", "times")

    def __init__(self) -> None:
        #: name -> accumulated integer count.
        self.counts: dict[str, int] = {}
        #: name -> accumulated wall seconds.
        self.times: dict[str, float] = {}

    def incr(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (creating it at 0)."""
        self.counts[name] = self.counts.get(name, 0) + n

    def add_time(self, name: str, dt: float) -> None:
        """Add ``dt`` wall seconds to the timer ``name``."""
        self.times[name] = self.times.get(name, 0.0) + dt

    @contextmanager
    def time_block(self, name: str) -> Iterator[None]:
        """Context manager accounting the enclosed block's wall time."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - start)

    def merge(self, other: "PerfCounters") -> None:
        """Fold another instance's totals into this one."""
        for name, n in other.counts.items():
            self.incr(name, n)
        for name, dt in other.times.items():
            self.add_time(name, dt)

    def snapshot(self) -> dict[str, Mapping[str, float]]:
        """Immutable-ish copy: ``{"counts": {...}, "times": {...}}``."""
        return {"counts": dict(self.counts), "times": dict(self.times)}

    def rate(self, count_name: str, time_name: str) -> float:
        """``counts[count_name] / times[time_name]`` or 0.0 if unmeasured."""
        dt = self.times.get(time_name, 0.0)
        if dt <= 0.0:
            return 0.0
        return self.counts.get(count_name, 0) / dt

    def clear(self) -> None:
        """Reset all counters and timers."""
        self.counts.clear()
        self.times.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PerfCounters(counts={self.counts!r}, times={self.times!r})"
