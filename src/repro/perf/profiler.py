"""cProfile and wall-clock helpers for hot-path investigation.

These wrap the stdlib so experiments and the CLI can profile a run
without each call site repeating the Profile/Stats boilerplate.  They
are tooling, not instrumentation: nothing here belongs on a hot path.
"""

from __future__ import annotations

import cProfile
import io
import pstats
import time
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of :func:`profile_call`."""

    #: Whatever the profiled callable returned.
    result: Any
    #: Rendered ``pstats`` table (sorted, truncated).
    report: str
    #: Total profiled wall time in seconds.
    total_seconds: float


def profile_call(
    fn: Callable[..., Any],
    *args: Any,
    sort: str = "tottime",
    top: int = 25,
    **kwargs: Any,
) -> ProfileResult:
    """Run ``fn(*args, **kwargs)`` under cProfile and render the stats.

    ``sort`` is any ``pstats`` sort key (``tottime``, ``cumulative``,
    ``calls``, ...); ``top`` bounds the rendered rows.
    """
    profile = cProfile.Profile()
    profile.enable()
    try:
        result = fn(*args, **kwargs)
    finally:
        profile.disable()
    buf = io.StringIO()
    stats = pstats.Stats(profile, stream=buf)
    stats.sort_stats(sort).print_stats(top)
    return ProfileResult(
        result=result,
        report=buf.getvalue(),
        total_seconds=stats.total_tt,
    )


class WallTimer:
    """Minimal wall-clock stopwatch (context manager).

    >>> with WallTimer() as t:
    ...     work()
    >>> t.elapsed  # seconds
    """

    __slots__ = ("start", "elapsed")

    def __init__(self) -> None:
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "WallTimer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start
