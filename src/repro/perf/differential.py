"""Strict-vs-optimized differential equivalence harness.

Every fast path added to the simulation substrate must be *schedule
invisible*: for equal seeds, a workload must produce exactly the same
schedule whether the kernel runs its original eager bookkeeping
(``KernelConfig(strict=True)``) or the optimized lazy path (the
default).  This module makes that claim executable:

* :func:`fingerprint_run` runs one Table 2 workload to a horizon with
  full event tracing on and serializes everything observable — the
  per-cycle consumption log, the event trace, the event count and the
  final clock — into one byte string;
* :func:`differential_check` sweeps the Table 2 workload matrix times
  a seed set and compares the strict and optimized fingerprints
  byte-for-byte.

A mismatch fails loudly with the first differing workload cell; the
golden tests in ``tests/perf/test_differential_goldens.py`` keep the
sweep in CI.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from repro.alps.config import AlpsConfig
from repro.alps.instrumentation import CycleLog
from repro.kernel.kconfig import KernelConfig
from repro.sim.trace import Tracer
from repro.units import ms, sec
from repro.workloads.shares import DISTRIBUTIONS, ShareDistribution, workload_shares
from repro.workloads.scenarios import build_controlled_workload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults.plan import FaultPlan

#: Workload sizes of the Table 2 matrix.
TABLE2_SIZES = (5, 10, 20)

#: Default simulated horizon of one differential cell.
DEFAULT_HORIZON_US = sec(5)


def serialize_cycle_log(log: CycleLog) -> bytes:
    """Stable byte serialization of a cycle log.

    One line per cycle; mappings are emitted in sorted key order so the
    bytes do not depend on dict insertion history.
    """
    lines = []
    for rec in log:
        consumed = ",".join(f"{k}:{v}" for k, v in sorted(rec.consumed.items()))
        blocked = ",".join(
            f"{k}:{v}" for k, v in sorted(rec.blocked_quanta.items())
        )
        shares = ",".join(f"{k}:{v}" for k, v in sorted(rec.shares.items()))
        lines.append(
            f"{rec.index} {rec.end_time} q={rec.quantum_us} "
            f"consumed[{consumed}] blocked[{blocked}] shares[{shares}]"
        )
    return "\n".join(lines).encode()


@dataclass(frozen=True)
class RunFingerprint:
    """Everything observable about one simulated run."""

    cycle_log: bytes
    trace: bytes
    events: int
    final_now: int

    def digest(self) -> str:
        """Short hex digest over the whole fingerprint (for reporting)."""
        h = hashlib.sha256()
        h.update(self.cycle_log)
        h.update(b"\x00")
        h.update(self.trace)
        h.update(f"\x00{self.events}\x00{self.final_now}".encode())
        return h.hexdigest()[:16]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RunFingerprint):
            return NotImplemented
        return (
            self.cycle_log == other.cycle_log
            and self.trace == other.trace
            and self.events == other.events
            and self.final_now == other.final_now
        )

    def __hash__(self) -> int:
        return hash((self.cycle_log, self.trace, self.events, self.final_now))


def fingerprint_run(
    shares: Sequence[int],
    *,
    seed: int = 0,
    strict: bool = False,
    backend: Optional[str] = None,
    quantum_us: int = ms(10),
    horizon_us: int = DEFAULT_HORIZON_US,
    resilience: bool = False,
    overload: bool = False,
    obs: bool = False,
    sharetree: bool = False,
    fault_plan: Optional["FaultPlan"] = None,
) -> RunFingerprint:
    """Run one controlled workload and fingerprint its schedule.

    ``strict=True`` selects the kernel's original eager bookkeeping;
    ``strict=False`` the optimized lazy path.  ``backend`` names a
    concrete kernel backend (``"strict"``/``"optimized"``/``"batch"``,
    see :data:`repro.kernel.KERNEL_BACKENDS`) and overrides ``strict``
    when given.  Everything else is held identical, so any fingerprint
    difference is a fast-path bug.

    ``resilience=True`` additionally attaches the crash-safety stack —
    a state journal and a supervision wrapper (no fault plan, so
    neither ever acts) — which must *also* be schedule-invisible: the
    fingerprint with the stack on must equal the fingerprint with it
    off, byte for byte (docs/resilience.md).

    ``overload=True`` attaches an armed :class:`OverloadGuard` with the
    default config.  Table 2 workloads never push the ladder off NORMAL,
    so the guarded fingerprint must equal the bare one byte for byte —
    the overload layer's schedule-invisibility claim (docs/overload.md).

    ``obs=True`` attaches a live :class:`repro.obs.Observer` to every
    layer — already proven schedule-invisible in isolation; here it
    stacks with the backend sweep.

    ``sharetree=True`` attaches a flat one-level
    :class:`repro.sharetree.ShareTree` built from the same shares.  The
    tree resolves each leaf's effective share to the raw weight verbatim
    (unreduced path-product arithmetic, docs/share_tree.md), so the
    treed fingerprint must equal the bare one byte for byte — the share
    tree's flat-equivalence claim.

    ``fault_plan`` runs the workload under deterministic fault
    injection.  Faulted runs are *not* expected to match clean runs;
    they must match each other across backends — the injector wraps the
    kapi, hiding the batched-measurement surface, so every backend
    replays the identical per-call fault RNG draw sequence.  The
    injector's realized fault trace is appended to the fingerprint's
    trace bytes so a divergence in fault realization fails the
    comparison even if the schedule happens to agree.
    """
    tracer = Tracer(enabled=True)
    journal = supervisor = guard = observer = None
    if resilience:
        from repro.resilience.journal import MemoryJournal
        from repro.resilience.supervisor import RestartPolicy, Supervisor

        journal = MemoryJournal()
        supervisor = Supervisor(RestartPolicy(), quantum_us=quantum_us)
    if overload:
        from repro.overload import OverloadGuard

        guard = OverloadGuard()
    if obs:
        from repro.obs import Observer

        observer = Observer()
    tree = None
    if sharetree:
        from repro.sharetree import ShareTree

        tree = ShareTree.flat(shares)
    if backend is None:
        kernel_config = KernelConfig(strict=strict)
    else:
        kernel_config = KernelConfig(strict=strict, backend=backend)
    cw = build_controlled_workload(
        shares,
        AlpsConfig(quantum_us=quantum_us),
        seed=seed,
        kernel_config=kernel_config,
        tracer=tracer,
        journal=journal,
        supervisor=supervisor,
        overload=guard,
        observer=observer,
        sharetree=tree,
        fault_plan=fault_plan,
    )
    cw.engine.run_until(horizon_us)
    trace = "\n".join(tracer.lines()).encode()
    if cw.injector is not None:
        trace += b"\n--faults--\n" + "\n".join(
            cw.injector.trace_lines()
        ).encode()
    return RunFingerprint(
        cycle_log=serialize_cycle_log(cw.agent.cycle_log),
        trace=trace,
        events=cw.engine.events_processed,
        final_now=cw.engine.now,
    )


@dataclass(frozen=True)
class CellComparison:
    """Strict-vs-challenger outcome for one (model, n, seed) cell.

    The challenger is ``optimized`` by default; ``compare_cell``'s
    ``backend`` parameter swaps in any registered kernel backend (the
    ``optimized_digest`` field name is kept for report compatibility).
    """

    model: ShareDistribution
    n: int
    seed: int
    matches: bool
    strict_digest: str
    optimized_digest: str
    #: Human-oriented description of the first observed difference.
    detail: str = ""
    #: Fingerprint section holding the first diverging byte
    #: (``"cycle_log"`` or ``"trace"``; ``""`` when the divergence is
    #: in the scalar fields only).
    diverged_section: str = ""
    #: Offset of the first diverging byte within that section
    #: (-1 when no byte section diverges).
    diverged_byte: int = -1


def compare_cell(
    model: ShareDistribution,
    n: int,
    seed: int,
    *,
    quantum_us: int = ms(10),
    horizon_us: int = DEFAULT_HORIZON_US,
    backend: str = "optimized",
) -> CellComparison:
    """Fingerprint one workload cell under both paths and diff them.

    ``backend`` names the challenger compared against strict —
    ``optimized`` (the default fast path) or ``batch``.
    """
    shares = workload_shares(model, n)
    strict = fingerprint_run(
        shares,
        seed=seed,
        strict=True,
        quantum_us=quantum_us,
        horizon_us=horizon_us,
    )
    fast = fingerprint_run(
        shares,
        seed=seed,
        strict=False,
        backend=None if backend == "optimized" else backend,
        quantum_us=quantum_us,
        horizon_us=horizon_us,
    )
    detail = ""
    section, offset = "", -1
    if strict != fast:
        detail = describe_difference(strict, fast, right=backend)
        section, offset = first_divergent_byte(strict, fast)
    return CellComparison(
        model=model,
        n=n,
        seed=seed,
        matches=strict == fast,
        strict_digest=strict.digest(),
        optimized_digest=fast.digest(),
        detail=detail,
        diverged_section=section,
        diverged_byte=offset,
    )


def differential_check(
    *,
    models: Iterable[ShareDistribution] = DISTRIBUTIONS,
    sizes: Iterable[int] = TABLE2_SIZES,
    seeds: Iterable[int] = (0, 1, 2),
    quantum_us: int = ms(10),
    horizon_us: int = DEFAULT_HORIZON_US,
    backend: str = "optimized",
) -> list[CellComparison]:
    """Sweep the Table 2 matrix × seeds; return one comparison per cell."""
    return [
        compare_cell(
            model,
            n,
            seed,
            quantum_us=quantum_us,
            horizon_us=horizon_us,
            backend=backend,
        )
        for model in models
        for n in sizes
        for seed in seeds
    ]


def describe_difference(
    a: RunFingerprint,
    b: RunFingerprint,
    *,
    left: str = "strict",
    right: str = "optimized",
) -> str:
    """Locate the first diverging line between two fingerprints.

    ``left``/``right`` label the two runs in the message (backend
    names in the backend-matrix tests, strict/optimized here).
    """
    if a.events != b.events:
        return f"event counts differ: {left}={a.events} {right}={b.events}"
    if a.final_now != b.final_now:
        return f"final clocks differ: {left}={a.final_now} {right}={b.final_now}"
    for name, lbytes, rbytes in (
        ("cycle_log", a.cycle_log, b.cycle_log),
        ("trace", a.trace, b.trace),
    ):
        if lbytes == rbytes:
            continue
        for i, (la, lb) in enumerate(
            zip(lbytes.splitlines(), rbytes.splitlines())
        ):
            if la != lb:
                return (
                    f"{name} line {i}: {left}={la.decode()!r} "
                    f"{right}={lb.decode()!r}"
                )
        return f"{name} lengths differ: {len(lbytes)} vs {len(rbytes)} bytes"
    return "fingerprints differ"  # pragma: no cover - covered above


def first_divergent_byte(
    a: RunFingerprint, b: RunFingerprint
) -> tuple[str, int]:
    """Locate the first diverging *byte* between two fingerprints.

    Returns ``(section, offset)`` where ``section`` is ``"cycle_log"``
    or ``"trace"`` (checked in that order) and ``offset`` is the index
    of the first byte that differs; when one serialization is a strict
    prefix of the other, the offset is the shorter length.  Returns
    ``("", -1)`` when both byte sections agree — i.e. the fingerprints
    differ only in the scalar event count / final clock fields.
    """
    for name, lbytes, rbytes in (
        ("cycle_log", a.cycle_log, b.cycle_log),
        ("trace", a.trace, b.trace),
    ):
        if lbytes == rbytes:
            continue
        n = min(len(lbytes), len(rbytes))
        for i in range(n):
            if lbytes[i] != rbytes[i]:
                return name, i
        return name, n
    return "", -1


_first_difference = describe_difference
