"""Actions a simulated process can take.

A :class:`~repro.kernel.behaviors.Behavior` yields these to the kernel's
process trampoline.  ``Compute`` consumes CPU (and is where the process
is preemptible), ``Sleep``/``SleepOn`` block voluntarily, and ``Exit``
terminates the process.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import KernelError


@dataclass(slots=True, frozen=True)
class Compute:
    """Consume ``duration_us`` of CPU time before the next action."""

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise KernelError(f"Compute duration must be >= 0, got {self.duration_us}")


@dataclass(slots=True, frozen=True)
class Sleep:
    """Block for ``duration_us`` of real (virtual wall-clock) time.

    ``channel`` names what the process is waiting on; it is visible to
    user-level observers the way a wait channel is via kvm on BSD.
    """

    duration_us: int
    channel: str = "timer"

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise KernelError(f"Sleep duration must be >= 0, got {self.duration_us}")


@dataclass(slots=True, frozen=True)
class SleepOn:
    """Block indefinitely on ``channel`` until someone calls ``wakeup``."""

    channel: str


@dataclass(slots=True, frozen=True)
class Exit:
    """Terminate the process."""

    status: int = 0


Action = Compute | Sleep | SleepOn | Exit
