"""Kernel tuning constants (FreeBSD 4.x defaults).

The values mirror the scheduler parameters of the paper's host OS
(FreeBSD 4.8): hz = stathz = 100 (10 ms ticks), a 100 ms round-robin
slice, per-second ``schedcpu`` decay, and the classic BSD priority
formula ``p_usrpri = PUSER + p_estcpu / 4 + 2 * p_nice``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import MSEC, SEC

#: Valid values of :attr:`KernelConfig.backend` besides ``"auto"``.
KERNEL_BACKENDS = frozenset({"strict", "optimized", "batch", "resident"})


@dataclass(slots=True, frozen=True)
class KernelConfig:
    """Tunable parameters of the simulated kernel.

    Attributes:
        tick_us: statclock/hardclock period; ``estcpu`` is charged one
            unit per tick of CPU consumed.
        slice_us: ``roundrobin()`` period — how often the kernel forces a
            switch among runnable processes of equal priority.
        schedclock_us: how often the *running* process's priority is
            recomputed from its accrued ``estcpu`` (FreeBSD recomputes
            every 4 statclock ticks).
        schedcpu_us: period of the per-second decay filter.
        ctx_switch_us: time lost to a context switch (charged to neither
            process).
        sleep_priority: kernel priority granted to a process waking from
            a voluntary sleep (tsleep); it holds until first dispatch,
            letting woken processes preempt user-mode work immediately —
            the mechanism that makes a low-usage ALPS prompt.
        puser: base user-mode priority.
        maxpri: worst (numerically largest) priority.
        estcpu_weight: divisor in the priority formula (4 in BSD).
        nice_weight: multiplier for nice in the priority formula (2 in BSD).
        loadavg_interval_us: how often the load average EWMA is updated.
        loadavg_tau_us: EWMA time constant (one minute, as in loadavg[0]).
    """

    #: Number of CPUs.  The paper's testbed is a uniprocessor; values
    #: above 1 enable the SMP extension.
    ncpus: int = 1
    tick_us: int = 10 * MSEC
    #: Timer-callout resolution: sleep deadlines round up to this grid.
    callout_resolution_us: int = 1 * MSEC
    slice_us: int = 100 * MSEC
    schedclock_us: int = 40 * MSEC
    schedcpu_us: int = 1 * SEC
    ctx_switch_us: int = 5
    sleep_priority: int = 30
    puser: int = 50
    maxpri: int = 127
    estcpu_weight: int = 4
    nice_weight: int = 2
    loadavg_interval_us: int = 5 * SEC
    loadavg_tau_us: int = 60 * SEC
    #: Disable the schedule-invisible fast paths (lazy estcpu decay for
    #: sleepers, idle housekeeping skip) and run the original eager
    #: per-second loop instead.  The differential test harness runs both
    #: paths and asserts byte-identical schedules; production runs leave
    #: this False.
    strict: bool = False
    #: Scheduler backend: ``"auto"`` resolves to ``"strict"`` or
    #: ``"optimized"`` from :attr:`strict`; ``"batch"`` selects the
    #: struct-of-arrays :class:`~repro.kernel.batch.BatchKernel`
    #: (vectorized decay, batched priority recomputation, fused
    #: same-instant event stepping); ``"resident"`` selects
    #: :class:`~repro.kernel.resident.ResidentKernel`, where the arrays
    #: are the *authoritative* state and PCBs are thin views onto their
    #: row (no per-pass gather/scatter).  Every backend must produce
    #: byte-identical schedules — tests/perf/test_backend_matrix.py is
    #: the contract.
    backend: str = "auto"

    def resolve_backend(self) -> str:
        """The concrete backend name this config selects.

        ``"auto"`` defers to the legacy :attr:`strict` flag so existing
        call sites keep their exact behavior; any explicit name wins
        over ``strict``.
        """
        if self.backend == "auto":
            return "strict" if self.strict else "optimized"
        if self.backend not in KERNEL_BACKENDS:
            raise ValueError(
                f"unknown kernel backend {self.backend!r}; "
                f"expected one of {sorted(KERNEL_BACKENDS)}"
            )
        return self.backend

    @property
    def estcpu_limit(self) -> float:
        """Clamp on ``estcpu`` so priority never exceeds :attr:`maxpri`."""
        return float((self.maxpri - self.puser) * self.estcpu_weight)


#: Default kernel configuration (FreeBSD 4.x-like).
DEFAULT_CONFIG = KernelConfig()
