"""Resident-array kernel backend: arrays as the authoritative state.

:class:`ResidentKernel` is the ``backend="resident"`` implementation
selected through :func:`repro.kernel.make_kernel`.  It inverts the
batch backend's state ownership: where :class:`~repro.kernel.batch.
BatchKernel` gathers PCB fields into struct-of-arrays form for each
vectorized pass and scatters results back, the resident backend keeps
the arrays (:class:`ResidentStore`) as the *single source of truth*
for per-process scheduler state.  :class:`ResidentProcess` PCBs are
thin views — properties reading and writing their row — so:

* the per-``schedcpu`` gather/scatter round trip (~0.5 µs/row, the
  floor the batch backend hit at paper scale) disappears entirely:
  the decay pass masks, decays, and writes back *in place*;
* :meth:`ResidentKernel.measure_many` answers the agent's whole
  per-quantum read set with fancy-indexed array reads instead of a
  per-pid Python loop;
* run-queue membership is mirrored into a boolean column
  (:class:`_RunqMembership`) as it changes, so the decay pass needs no
  membership set lookups at all.

The columns are dual-natured, and that is the load-bearing trick.
Scalar kernel paths (dispatch, charging, sleep/wakeup) touch one
process at a time, and indexing a *numpy* array scalar-wise costs
~200 ns — 5× a ``__slots__`` read, enough to hand back everything the
in-place decay pass wins.  So each column is a :class:`array.array`
buffer: Python-level indexing returns native scalars in ~50 ns, while
the batch passes wrap the same memory in zero-copy numpy views
(:meth:`ResidentStore.np_view` via ``np.frombuffer``) — mutations on
either side are immediately visible on the other, because there is
only one buffer.

Everything else — dispatch, sleep/wakeup, signals, the event loop —
is the inherited scalar machinery running *through* the view
properties, which is exactly what pins byte-identity: every scalar
path performs the same IEEE-754 float64 operations on the same values
in the same order, merely loading and storing them in shared buffers
instead of ``__slots__``.  The backend matrix
(tests/perf/test_backend_matrix.py) holds resident to the same
byte-identical contract as optimized and batch, bare and stacked,
with no golden refresh; view/array coherence itself is pinned by
Hypothesis in tests/kernel/test_resident_view.py.

Like the batch backend, resident runs **eager** (strict-equivalent)
bookkeeping and fused same-instant event stepping.  ``array.array``
reads return plain Python ``int``/``float`` and the vectorized passes
convert results with ``.tolist()``, so numpy scalar types never leak
into traces, cycle logs, or arithmetic.

See docs/performance.md ("The resident backend") for measurements and
the compiled-dispatch story (:mod:`repro.sim.fastloop`).
"""

from __future__ import annotations

from array import array
from typing import Optional, Sequence

import numpy as np

from repro.kernel.batch import (
    _CODE_TO_STATE,
    NO_VALUE,
    STATE_CODES,
    ArrayRunQueue,
    BatchKernel,
    BatchKernelAPI,
    batched_decay,
    batched_user_priority,
)
from repro.errors import KernelError, SimulationError
from repro.kernel.actions import Action, Compute, Exit, Sleep, SleepOn
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.kernel import (
    _EVPRI_BURST,
    _EVPRI_HOUSEKEEPING,
    _EVPRI_START,
    _MAX_IMMEDIATE_ACTIONS,
)
from repro.kernel.priorities import user_priority, wakeup_decay
from repro.kernel.runqueue import NQS, PPQ
from repro.kernel.process import Process, ProcState
from repro.sim.engine import Engine

_ZOMBIE_CODE = STATE_CODES[ProcState.ZOMBIE]
_RUNNING_CODE = STATE_CODES[ProcState.RUNNING]
_SLEEPING_CODE = STATE_CODES[ProcState.SLEEPING]

_INITIAL_CAPACITY = 128

#: Column name -> (array.array typecode, numpy view dtype).  ``q`` is
#: a signed 64-bit int and ``d`` an IEEE-754 float64 — the exact
#: dtypes the batch backend's SoA passes use, so the vectorized
#: arithmetic is bit-identical.  Boolean columns are one byte and
#: viewed as ``np.bool_`` (0/1 values only, written via int 0/1).
_COLUMNS: dict[str, tuple[str, type]] = {
    "pids": ("q", np.int64),
    "estcpu": ("d", np.float64),
    "priority": ("q", np.int64),
    "nice": ("q", np.int64),
    "slptime": ("q", np.int64),
    "cpu_time": ("q", np.int64),
    "run_start": ("q", np.int64),
    "pending_burst": ("q", np.int64),
    "state": ("q", np.int64),
    "stopped": ("b", np.bool_),
    "has_channel": ("b", np.bool_),
    "boost": ("q", np.int64),
    "on_runq": ("b", np.bool_),
}


class ResidentStore:
    """Authoritative struct-of-arrays process table.

    One row per process, allocated at spawn in pid order and never
    freed (zombies keep their row, exactly as they keep their PCB in
    ``Kernel.procs``) — so row order *is* table order, which is what
    lets the decay pass requeue in ascending row index and match the
    scalar loop's dict-order requeues.

    Columns are ``array.array`` buffers (see the module docstring for
    why) mirroring the scheduler-owned fields of :class:`Process`;
    ``wait_channel`` (a string or None) lives in a plain list with a
    ``has_channel`` mirror so blocked-detection stays vectorizable.
    Buffers grow by doubling, which *replaces* them — numpy views from
    :meth:`np_view` must therefore be taken fresh per pass, never
    cached across an allocation.
    """

    __slots__ = ("capacity", "n", "wait_channel", "slot_of", "views") + tuple(
        _COLUMNS
    )

    def __init__(self, capacity: int = _INITIAL_CAPACITY) -> None:
        self.capacity = capacity
        self.n = 0
        for name, (typecode, _) in _COLUMNS.items():
            fill = NO_VALUE if name == "boost" else 0
            setattr(self, name, array(typecode, [fill]) * capacity)
        #: Wait-channel strings (row-indexed; None unless sleeping).
        self.wait_channel: list[Optional[str]] = []
        #: pid -> row index.
        self.slot_of: dict[int, int] = {}
        #: Row-indexed view PCBs (the requeue loop needs the objects).
        self.views: list["ResidentProcess"] = []

    def __len__(self) -> int:
        return self.n

    def np_view(self, name: str) -> np.ndarray:
        """Zero-copy numpy view of a column's first ``n`` rows.

        Writable and shared: mutations through the view are visible to
        scalar ``array.array`` reads instantly and vice versa.  Views
        go stale when the store grows — take them fresh per pass.
        """
        return np.frombuffer(
            getattr(self, name), dtype=_COLUMNS[name][1], count=self.n
        )

    def alloc(self, pid: int) -> int:
        """Allocate the next row for ``pid`` and return its index."""
        row = self.n
        if row == self.capacity:
            self._grow()
        self.n = row + 1
        self.pids[row] = pid
        self.wait_channel.append(None)
        self.slot_of[pid] = row
        return row

    def _grow(self) -> None:
        new_cap = self.capacity * 2
        for name, (typecode, _) in _COLUMNS.items():
            fill = NO_VALUE if name == "boost" else 0
            old = getattr(self, name)
            new = array(typecode, [fill]) * new_cap
            new[: self.n] = old[: self.n]
            setattr(self, name, new)
        self.capacity = new_cap


class ResidentProcess(Process):
    """A PCB whose scheduler state lives in a :class:`ResidentStore` row.

    The scheduler-owned fields are class-level properties shadowing the
    parent dataclass's slot descriptors: every read and write — whether
    from kernel code, behaviors, or tests — goes straight to the array
    row.  There is no shadow copy to go stale; interleaved view writes
    and direct array mutations observe each other exactly (pinned by
    Hypothesis in tests/kernel/test_resident_view.py).

    ``array.array`` indexing returns native Python scalars, so no
    conversion happens on read (booleans excepted) and numpy types
    never escape into traces or downstream arithmetic.  Structure
    fields (behavior, event handles, tags, cpu_index, …) stay ordinary
    slots from the parent class.
    """

    __slots__ = ("_store", "_row", "_qbucket", "_qpos")

    @classmethod
    def attach(
        cls,
        store: ResidentStore,
        *,
        pid: int,
        name: str,
        uid: int,
        nice: int,
        behavior,
    ) -> "ResidentProcess":
        """Allocate a row for ``pid`` and construct its view PCB.

        Deliberately bypasses the dataclass ``__init__``: the freshly
        allocated row already holds every array-backed default (zeroed
        columns; ``STATE_CODES[RUNNABLE] == 0``; boost pre-filled with
        :data:`NO_VALUE`; wait channel None), so routing eleven default
        assignments through the property setters per spawn would be
        pure overhead — only ``nice`` actually needs an array write.
        The plain structure slots are set directly, mirroring the
        parent's field defaults (tests/kernel/test_resident_view.py
        pins a fresh view against a fresh plain Process field by
        field).
        """
        # Inlined store.alloc(pid) — spawn-storm hot path.
        row = store.n
        if row == store.capacity:
            store._grow()
        store.n = row + 1
        store.pids[row] = pid
        store.wait_channel.append(None)
        store.slot_of[pid] = row
        self = object.__new__(cls)
        self._store = store
        self._row = row
        store.views.append(self)
        if nice:
            store.nice[row] = nice
        # Plain (non-array) slots, matching Process field defaults.
        self.pid = pid
        self.name = name
        self.uid = uid
        self.behavior = behavior
        self.ready_while_stopped = False
        self.park_epoch = None
        self.vruntime = 0.0
        self.cpu_index = None
        self.preemptions = 0
        self.voluntary_switches = 0
        self.sleep_handle = None
        self.burst_handle = None
        self.tag_burst = ""
        self.tag_wake = ""
        self.exit_status = 0
        return self

    # -- scheduler state (array-backed) ---------------------------------
    @property
    def estcpu(self) -> float:
        return self._store.estcpu[self._row]

    @estcpu.setter
    def estcpu(self, value: float) -> None:
        self._store.estcpu[self._row] = value

    @property
    def priority(self) -> int:
        return self._store.priority[self._row]

    @priority.setter
    def priority(self, value: int) -> None:
        self._store.priority[self._row] = value

    @property
    def nice(self) -> int:
        return self._store.nice[self._row]

    @nice.setter
    def nice(self, value: int) -> None:
        self._store.nice[self._row] = value

    @property
    def slptime(self) -> int:
        return self._store.slptime[self._row]

    @slptime.setter
    def slptime(self, value: int) -> None:
        self._store.slptime[self._row] = value

    @property
    def cpu_time(self) -> int:
        return self._store.cpu_time[self._row]

    @cpu_time.setter
    def cpu_time(self, value: int) -> None:
        self._store.cpu_time[self._row] = value

    @property
    def run_start(self) -> int:
        return self._store.run_start[self._row]

    @run_start.setter
    def run_start(self, value: int) -> None:
        self._store.run_start[self._row] = value

    @property
    def pending_burst_us(self) -> int:
        return self._store.pending_burst[self._row]

    @pending_burst_us.setter
    def pending_burst_us(self, value: int) -> None:
        self._store.pending_burst[self._row] = value

    @property
    def state(self) -> ProcState:
        return _CODE_TO_STATE[self._store.state[self._row]]

    @state.setter
    def state(self, value: ProcState) -> None:
        self._store.state[self._row] = STATE_CODES[value]

    @property
    def stopped(self) -> bool:
        return self._store.stopped[self._row] != 0

    @stopped.setter
    def stopped(self, value: bool) -> None:
        self._store.stopped[self._row] = 1 if value else 0

    @property
    def boost_priority(self) -> Optional[int]:
        boost = self._store.boost[self._row]
        return None if boost == NO_VALUE else boost

    @boost_priority.setter
    def boost_priority(self, value: Optional[int]) -> None:
        self._store.boost[self._row] = NO_VALUE if value is None else value

    @property
    def wait_channel(self) -> Optional[str]:
        return self._store.wait_channel[self._row]

    @wait_channel.setter
    def wait_channel(self, value: Optional[str]) -> None:
        store = self._store
        row = self._row
        store.wait_channel[row] = value
        store.has_channel[row] = 0 if value is None else 1


class ResidentRunQueue(ArrayRunQueue):
    """Bucketed run queue with O(1) removal via recorded positions.

    :class:`~repro.kernel.batch.ArrayRunQueue` removes by scanning the
    bucket for the process — O(bucket).  At paper scale that scan is
    the decay pass's dominant cost: a requeue inside a 3 000-process
    bucket walks ~3 000 identity checks.  Here every insert records the
    process's bucket and index on the view PCB (``_qbucket``/``_qpos``
    — positions are stable because buckets only append at the tail and
    consume from the head), so removal tombstones the slot in place.
    Pops and head peeks skip tombstones; per-bucket live counts decide
    when a bucket is really empty.

    FIFO order within a bucket — the round-robin contract the
    byte-identity battery pins — is unchanged: a tombstone is just a
    skipped slot, and remove-plus-reinsert lands at the tail exactly as
    the scanning queue's ``del`` + append does.
    """

    __slots__ = ("_live",)

    def __init__(self) -> None:
        super().__init__()
        self._live = [0] * NQS

    def insert(self, proc: Process) -> None:
        priority = proc.priority
        if priority < 0 or priority >= NQS * PPQ:
            raise KernelError(
                f"priority {priority} out of range 0..{NQS * PPQ - 1}"
            )
        qi = priority >> 2
        bucket = self._buckets[qi]
        proc._qbucket = qi
        proc._qpos = len(bucket)
        bucket.append(proc)
        self._nonempty |= 1 << qi
        self._count += 1
        self._live[qi] += 1

    def insert_head(self, proc: Process) -> None:
        qi = self._qindex(proc.priority)
        bucket = self._buckets[qi]
        head = self._heads[qi]
        if head > 0:
            head -= 1
            self._heads[qi] = head
            bucket[head] = proc
            proc._qpos = head
        else:
            bucket.insert(0, proc)
            proc._qpos = 0
            for other in bucket[1:]:
                if other is not None:
                    other._qpos += 1
        proc._qbucket = qi
        self._nonempty |= 1 << qi
        self._count += 1
        self._live[qi] += 1

    def remove(self, proc: Process) -> None:
        qi = proc._qbucket
        bucket = self._buckets[qi]
        pos = proc._qpos
        if pos >= len(bucket) or bucket[pos] is not proc:
            raise KernelError(f"pid {proc.pid} not on any run queue")
        bucket[pos] = None  # type: ignore[call-overload]  # tombstone
        self._count -= 1
        live = self._live[qi] - 1
        self._live[qi] = live
        if live == 0:
            bucket.clear()
            self._heads[qi] = 0
            self._nonempty &= ~(1 << qi)

    def best_priority(self) -> Optional[int]:
        bits = self._nonempty
        if not bits:
            return None
        qi = (bits & -bits).bit_length() - 1
        bucket = self._buckets[qi]
        head = self._heads[qi]
        proc = bucket[head]
        while proc is None:
            head += 1
            proc = bucket[head]
        self._heads[qi] = head
        return proc.priority

    def pop_best(self) -> Optional[Process]:
        bits = self._nonempty
        if not bits:
            return None
        qi = (bits & -bits).bit_length() - 1
        bucket = self._buckets[qi]
        head = self._heads[qi]
        proc = bucket[head]
        while proc is None:
            head += 1
            proc = bucket[head]
        bucket[head] = None  # type: ignore[call-overload]  # drop the reference
        self._heads[qi] = head + 1
        self._count -= 1
        live = self._live[qi] - 1
        self._live[qi] = live
        if live == 0:
            bucket.clear()
            self._heads[qi] = 0
            self._nonempty &= ~(1 << qi)
        return proc


class _RunqMembership(set):
    """The kernel's ``_on_runq`` pid set, mirrored into an array column.

    Only :meth:`add` and :meth:`discard` mutate run-queue membership
    anywhere in the kernel (kernel.py and cfs.py), so mirroring those
    two keeps ``store.on_runq`` exact at every instant — the decay
    pass reads the column instead of probing the set per row.
    """

    def __init__(self, store: ResidentStore) -> None:
        super().__init__()
        self._store = store

    def add(self, pid: int) -> None:
        set.add(self, pid)
        store = self._store
        row = store.slot_of.get(pid)
        if row is not None:
            store.on_runq[row] = 1

    def discard(self, pid: int) -> None:
        set.discard(self, pid)
        store = self._store
        row = store.slot_of.get(pid)
        if row is not None:
            store.on_runq[row] = 0


class ResidentKernelAPI(BatchKernelAPI):
    """Batch API surface over the resident kernel.

    ``measure_many`` delegates to the kernel's vectorized
    implementation — one fancy-indexed pass instead of a per-pid loop.
    The delegation (vs. the batch facade's inlining) is deliberate:
    the whole read set is one call per quantum either way, and the
    vectorized body is not worth duplicating.  Fault wrappers still
    hide this method, so a faulted agent walks the classic per-pid
    loop with its original RNG draw order (pinned by
    tests/kernel/test_resident_view.py).
    """

    __slots__ = ()

    def measure_many(
        self, pids: Sequence[int]
    ) -> list[tuple[int, Optional[int], bool, bool]]:
        return self._kernel.measure_many(pids)


class ResidentKernel(BatchKernel):
    """Array-resident struct-of-arrays kernel (``backend="resident"``)."""

    def __init__(
        self,
        engine: Engine,
        config: KernelConfig = DEFAULT_CONFIG,
    ) -> None:
        super().__init__(engine, config)
        self.store = ResidentStore()
        self.runq = ResidentRunQueue()  # type: ignore[assignment]  # same surface
        # Replace the plain pid set installed by Kernel.__init__ with
        # the mirroring set (empty at this point; no process exists yet).
        self._on_runq = _RunqMembership(self.store)
        self.kapi = ResidentKernelAPI(self)

    def _make_process(self, pid, name, uid, nice, behavior) -> Process:
        return ResidentProcess.attach(
            self.store, pid=pid, name=name, uid=uid, nice=nice, behavior=behavior
        )

    # ------------------------------------------------------------------
    # Row-direct scalar hot paths
    # ------------------------------------------------------------------
    # The methods below are operation-for-operation copies of the base
    # kernel's (see each original's docstring for semantics) with one
    # change: they fetch ``store``/``proc._row`` once and index the
    # column buffers directly instead of going through the view
    # properties.  A property access costs a descriptor call plus two
    # attribute loads per field; on the spawn/start storm — the scalar-
    # dominated regime the resident gate cell measures — that tax is
    # most of the backend's overhead.  Byte-identity with the originals
    # is held by the backend matrix; keep any change here mirrored in
    # kernel.py (and vice versa).

    def spawn(
        self,
        name: str,
        behavior,
        *,
        uid: int = 0,
        nice: int = 0,
        start_delay: int = 0,
    ) -> Process:
        pid = self._next_pid
        self._next_pid += 1
        store = self.store
        proc = ResidentProcess.attach(
            store, pid=pid, name=name, uid=uid, nice=nice, behavior=behavior
        )
        row = proc._row
        # Inlined user_priority(cfg, 0.0, nice) over the hoisted scalars.
        pri = self._puser + 0.0 / self._estcpu_weight + self._nice_weight * nice
        if pri < 0:
            pri = 0
        elif pri > self._maxpri:
            pri = self._maxpri
        else:
            pri = int(pri)
        store.priority[row] = pri
        store.state[row] = _SLEEPING_CODE  # embryonic until started
        store.wait_channel[row] = "fork"
        store.has_channel[row] = 1
        proc.tag_burst = f"burst:{name}"
        proc.tag_wake = f"wake:{name}"
        self.procs[pid] = proc
        # _park(proc) elided: the batch family runs eager bookkeeping
        # (_lazy is False), so parking never records an epoch.
        # Inlined engine.after (validation included; the handle is not
        # retained, matching the base spawn).
        if start_delay < 0:
            raise SimulationError(f"negative delay: {start_delay}")
        self._equeue_schedule(
            self._clock._now + start_delay,
            self._on_start,
            _EVPRI_START,
            proc,
            f"start:{name}",
        )
        return proc

    def _on_start(self, event) -> None:
        proc: ResidentProcess = event.payload
        store = self.store
        row = proc._row
        if store.state[row] == _ZOMBIE_CODE:
            return
        store.wait_channel[row] = None
        store.has_channel[row] = 0
        store.state[row] = 0  # STATE_CODES[RUNNABLE]
        # Inlined _advance_guarded(proc, False): the guarded trampoline
        # owns resched deferral, so the guard dance stays intact.
        self._dispatch_depth += 1
        try:
            self._advance(proc, False)
        finally:
            self._dispatch_depth -= 1
        if self._dispatch_depth == 0 and self._resched_pending:
            self._resched_pending = False
            self._resched_now()

    def _setrunnable(self, proc: Process) -> None:
        store = self.store
        row = proc._row
        store.state[row] = 0  # STATE_CODES[RUNNABLE]
        if store.stopped[row]:
            return  # parked until SIGCONT
        # Inlined _unpark: eager bookkeeping never sets park_epoch, so
        # the slot check alone decides (and always fails).
        if proc.park_epoch is not None:
            self._materialize_slptime(proc)
            proc.park_epoch = None
        estcpu = store.estcpu[row]
        nice = store.nice[row]
        slptime = store.slptime[row]
        if slptime >= 1:
            estcpu = wakeup_decay(
                self.cfg, estcpu, nice, self.loadavg.value, slptime
            )
            store.estcpu[row] = estcpu
            store.slptime[row] = 0
        # Inlined user_priority (see kernel.py _charge_proc).
        pri = (
            self._puser
            + estcpu / self._estcpu_weight
            + self._nice_weight * nice
        )
        if pri < 0:
            pri = 0
        elif pri > self._maxpri:
            pri = self._maxpri
        else:
            pri = int(pri)
        boost = store.boost[row]
        if boost != NO_VALUE and boost < pri:
            pri = boost
        store.priority[row] = pri
        on_runq = self._on_runq
        pid = proc.pid
        if pid not in on_runq:
            # Inlined ArrayRunQueue.insert + _RunqMembership.add: ``pri``
            # is already clamped to [0, maxpri] so the queue's range
            # check cannot fire, and ``row`` is already in hand so the
            # membership mirror needs no slot_of lookup.
            runq = self.runq
            qi = pri >> 2
            bucket = runq._buckets[qi]
            proc._qbucket = qi
            proc._qpos = len(bucket)
            bucket.append(proc)
            runq._nonempty |= 1 << qi
            runq._count += 1
            runq._live[qi] += 1
            set.add(on_runq, pid)
            store.on_runq[row] = 1
        # Inlined _request_resched.
        if self._dispatch_depth > 0:
            self._resched_pending = True
        else:
            self._resched_now()

    def _advance(self, proc: Process, on_cpu: bool) -> None:
        store = self.store
        row = proc._row
        state = store.state
        kapi = self.kapi
        for _ in range(_MAX_IMMEDIATE_ACTIONS):
            action: Action = proc.behavior.next_action(proc, kapi)
            if state[row] == _ZOMBIE_CODE:
                return  # behavior side effect killed the process
            if isinstance(action, Compute):
                if action.duration_us == 0:
                    continue
                store.pending_burst[row] = action.duration_us
                if on_cpu:
                    self._schedule_burst(proc, restart=True)
                else:
                    self._setrunnable(proc)
                return
            if isinstance(action, (Sleep, SleepOn)):
                timeout = action.duration_us if isinstance(action, Sleep) else None
                self._sleep(proc, action.channel, timeout, on_cpu)
                return
            if isinstance(action, Exit):
                self._do_exit(proc, status=action.status)
                return
            raise KernelError(f"behavior returned unknown action {action!r}")
        raise KernelError(
            f"pid {proc.pid} issued {_MAX_IMMEDIATE_ACTIONS} zero-length "
            "actions in a row; behavior is likely stuck"
        )

    def _resched_now(self) -> None:
        cpus = self.cpus
        if len(cpus) == 1:
            # Uniprocessor fast path with best_priority() inlined so the
            # queue head's priority comes from the column buffer instead
            # of a view property read.
            proc = cpus[0]
            if proc is None:
                self._dispatch()
                return
            runq = self.runq
            bits = runq._nonempty
            if not bits:
                return
            qi = (bits & -bits).bit_length() - 1
            bucket = runq._buckets[qi]
            hd = runq._heads[qi]
            head = bucket[hd]
            while head is None:
                hd += 1
                head = bucket[hd]
            runq._heads[qi] = hd
            store = self.store
            best = store.priority[head._row]
            # Inlined _inst_priority(proc).
            prow = proc._row
            inflight = self._clock._now - store.run_start[prow]
            if inflight < 0:
                inflight = 0
            est = store.estcpu[prow] + inflight / self._tick_us
            limit = self._estcpu_limit
            if est > limit:
                est = limit
            pri = (
                self._puser
                + est / self._estcpu_weight
                + self._nice_weight * store.nice[prow]
            )
            if pri < 0:
                pri = 0
            elif pri > self._maxpri:
                pri = self._maxpri
            else:
                pri = int(pri)
            if best < pri:
                self._preempt_cpu(0)
                self._dispatch()
            return
        super()._resched_now()

    def _inst_priority(self, proc: Process) -> int:
        store = self.store
        row = proc._row
        inflight = self._clock._now - store.run_start[row]
        if inflight < 0:
            inflight = 0
        est = store.estcpu[row] + inflight / self._tick_us
        limit = self._estcpu_limit
        if est > limit:
            est = limit
        pri = (
            self._puser
            + est / self._estcpu_weight
            + self._nice_weight * store.nice[row]
        )
        if pri < 0:
            return 0
        if pri > self._maxpri:
            return self._maxpri
        return int(pri)

    def _charge_proc(self, proc: Process) -> None:
        store = self.store
        row = proc._row
        now = self._clock._now
        consumed = now - store.run_start[row]
        if consumed <= 0:
            return
        store.cpu_time[row] += consumed
        pending = store.pending_burst[row] - consumed
        store.pending_burst[row] = pending if pending > 0 else 0
        est = store.estcpu[row] + consumed / self._tick_us
        limit = self._estcpu_limit
        if est > limit:
            est = limit
        store.estcpu[row] = est
        pri = (
            self._puser
            + est / self._estcpu_weight
            + self._nice_weight * store.nice[row]
        )
        if pri < 0:
            store.priority[row] = 0
        elif pri > self._maxpri:
            store.priority[row] = self._maxpri
        else:
            store.priority[row] = int(pri)
        store.run_start[row] = now
        self.total_busy_us += consumed

    def _on_burst_complete(self, event) -> None:
        proc: ResidentProcess = event.payload
        store = self.store
        row = proc._row
        ci = proc.cpu_index
        if (
            store.state[row] != _RUNNING_CODE
            or ci is None
            or self.cpus[ci] is not proc
        ):
            return  # stale event (should have been cancelled)
        proc.burst_handle = None
        self._charge_proc(proc)
        # Inlined _advance_guarded(proc, True).
        self._dispatch_depth += 1
        try:
            self._advance(proc, True)
        finally:
            self._dispatch_depth -= 1
        if self._dispatch_depth == 0 and self._resched_pending:
            self._resched_pending = False
            self._resched_now()

    def _dispatch(self) -> None:
        cpus = self.cpus
        if len(cpus) == 1 and cpus[0] is not None:
            return  # uniprocessor, busy: nothing to fill
        store = self.store
        on_runq = self._on_runq
        for i, occupant in enumerate(cpus):
            if occupant is not None:
                continue
            proc = self.runq.pop_best()
            if proc is None:
                return
            row = proc._row
            pid = proc.pid
            set.discard(on_runq, pid)
            store.on_runq[row] = 0
            boost = store.boost[row]
            if boost != NO_VALUE:
                # Wakeup boost consumed at dispatch (inlined
                # user_priority, see kernel.py _charge_proc).
                store.boost[row] = NO_VALUE
                pri = (
                    self._puser
                    + store.estcpu[row] / self._estcpu_weight
                    + self._nice_weight * store.nice[row]
                )
                if pri < 0:
                    store.priority[row] = 0
                elif pri > self._maxpri:
                    store.priority[row] = self._maxpri
                else:
                    store.priority[row] = int(pri)
            store.state[row] = _RUNNING_CODE
            proc.cpu_index = i
            cpus[i] = proc
            self._oncpu += 1
            self.context_switches += 1
            obs = self._obs
            if obs is not None and obs.enabled:
                obs.events.emit(self._clock._now, "kernel.ctxsw", pid=pid, cpu=i)
            now = self._clock._now
            run_start = now + self._ctx_switch_us
            store.run_start[row] = run_start
            # Inlined _schedule_burst(proc, restart=False).
            done_at = run_start + store.pending_burst[row]
            if done_at < now:
                done_at = now
            proc.burst_handle = self._equeue_schedule(
                done_at, self._on_burst_complete, _EVPRI_BURST, proc, proc.tag_burst
            )

    def _preempt_cpu(self, index: int) -> None:
        proc = self.cpus[index]
        if proc is None:
            return
        if proc.burst_handle is not None:
            proc.burst_handle.cancel()
            proc.burst_handle = None
        self._charge_proc(proc)
        store = self.store
        row = proc._row
        store.state[row] = 0  # STATE_CODES[RUNNABLE]
        proc.preemptions += 1
        proc.cpu_index = None
        self.cpus[index] = None
        self._oncpu -= 1
        if not store.stopped[row]:
            # Inlined runq.insert + membership add (priority is stored
            # clamped, so the queue's range check cannot fire).
            pri = store.priority[row]
            runq = self.runq
            qi = pri >> 2
            bucket = runq._buckets[qi]
            proc._qbucket = qi
            proc._qpos = len(bucket)
            bucket.append(proc)
            runq._nonempty |= 1 << qi
            runq._count += 1
            runq._live[qi] += 1
            set.add(self._on_runq, proc.pid)
            store.on_runq[row] = 1

    def _on_schedclock(self, event) -> None:
        now = self._clock._now
        store = self.store
        runq = self.runq
        run_start = store.run_start
        priority = store.priority
        for i, proc in enumerate(self.cpus):
            if proc is None or now <= run_start[proc._row]:
                continue
            self._charge_proc(proc)
            bits = runq._nonempty
            if bits:
                qi = (bits & -bits).bit_length() - 1
                bucket = runq._buckets[qi]
                hd = runq._heads[qi]
                head = bucket[hd]
                while head is None:
                    hd += 1
                    head = bucket[hd]
                runq._heads[qi] = hd
                if priority[head._row] < priority[proc._row]:
                    self._preempt_cpu(i)
                    self._dispatch()
        self.engine.after(
            self.cfg.schedclock_us,
            self._on_schedclock,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedclock",
        )

    def _on_roundrobin(self, event) -> None:
        now = self._clock._now
        store = self.store
        runq = self.runq
        run_start = store.run_start
        priority = store.priority
        for i, proc in enumerate(self.cpus):
            if proc is None or not runq._count or now <= run_start[proc._row]:
                continue
            self._charge_proc(proc)
            bits = runq._nonempty
            if bits:
                # The best bucket index *is* best_priority >> 2, which
                # is all the BSD bucket comparison needs.
                qi = (bits & -bits).bit_length() - 1
                if qi <= priority[proc._row] >> 2:
                    self._preempt_cpu(i)
                    self._dispatch()
        self.engine.after(
            self.cfg.slice_us,
            self._on_roundrobin,
            priority=_EVPRI_HOUSEKEEPING,
            tag="roundrobin",
        )

    # ------------------------------------------------------------------
    # Vectorized measurement (no per-pid loop)
    # ------------------------------------------------------------------
    def measure_many(
        self, pids: Sequence[int]
    ) -> list[tuple[int, Optional[int], bool, bool]]:
        """Fancy-indexed READ-PROGRESS over the resident arrays.

        Behaviorally identical to the per-pid kapi calls and to the
        batch backend's loop: same usage arithmetic including the
        in-flight run interval, dead pids reported as ``usage=None``.
        ``.tolist()`` materialises plain Python ints/bools so numpy
        scalars never reach the agent's cycle log.
        """
        store = self.store
        count = len(pids)
        if count == 0 or store.n == 0:
            rows_out = [(pid, None, False, False) for pid in pids]
            self.perf_batch_rows += len(rows_out)
            return rows_out
        slot_of = store.slot_of
        rows = np.fromiter(
            (slot_of.get(pid, -1) for pid in pids), dtype=np.int64, count=count
        )
        safe = np.where(rows >= 0, rows, 0)
        state = store.np_view("state")[safe]
        alive = (rows >= 0) & (state != _ZOMBIE_CODE)
        cpu = store.np_view("cpu_time")[safe]
        now = self._clock._now
        inflight = now - store.np_view("run_start")[safe]
        charge = (state == _RUNNING_CODE) & (inflight > 0)
        usage = np.where(charge, cpu + inflight, cpu).tolist()
        blocked = (
            alive
            & (state == _SLEEPING_CODE)
            & store.np_view("has_channel")[safe]
        ).tolist()
        stopped = (alive & store.np_view("stopped")[safe]).tolist()
        alive_list = alive.tolist()
        out: list[tuple[int, Optional[int], bool, bool]] = []
        append = out.append
        for i, pid in enumerate(pids):
            if alive_list[i]:
                append((pid, usage[i], blocked[i], stopped[i]))
            else:
                append((pid, None, False, False))
        self.perf_batch_rows += len(out)
        return out

    # ------------------------------------------------------------------
    # In-place vectorized per-second decay (no gather, no scatter)
    # ------------------------------------------------------------------
    def _on_schedcpu(self, event) -> None:
        """Eager schedcpu over the resident arrays, fully in place.

        Same semantics as the strict scalar loop and the batch gather
        pass (:meth:`BatchKernel._on_schedcpu`), but the arrays *are*
        the state: sleeper aging is one masked increment, decay and
        priority recompute run over column views, and write-back is a
        masked ``np.copyto`` — zero per-row Python work except the
        (rare) run-queue requeues, performed in ascending row order,
        which is table order, matching every other backend.
        """
        self._charge_current()
        load = self.loadavg.value
        self.perf_schedcpu_passes += 1
        self.perf_batch_passes += 1
        store = self.store
        if store.n:
            state = store.np_view("state")
            est = store.np_view("estcpu")
            nice = store.np_view("nice")
            slpt = store.np_view("slptime")
            live = state != _ZOMBIE_CODE
            parked = live & (
                (state == _SLEEPING_CODE) | store.np_view("stopped")
            )
            if parked.any():
                slpt[parked] += 1
            # Aged sleepers having slept more than one full pass are
            # left to updatepri on wakeup, exactly like the eager loop.
            targets = live & (~parked | (slpt <= 1))
            if targets.any():
                new_est = batched_decay(est, nice, load, self._estcpu_limit)
                new_pri = batched_user_priority(self.cfg, new_est, nice)
                boost = store.np_view("boost")
                has_boost = boost != NO_VALUE
                if has_boost.any():
                    new_pri = np.where(
                        has_boost, np.minimum(new_pri, boost), new_pri
                    )
                changed = targets & (new_est != est)
                if changed.any():
                    pri = store.np_view("priority")
                    pri_changed = changed & (new_pri != pri)
                    np.copyto(est, new_est, where=changed)
                    on_runq = store.np_view("on_runq")
                    requeue = pri_changed & on_runq
                    # Off-queue rows take the new priority directly …
                    np.copyto(pri, new_pri, where=pri_changed & ~on_runq)
                    # … queued rows are requeued one by one (remove at
                    # the old priority, reinsert at the new) in table
                    # order, as the scalar and batch loops do.
                    if requeue.any():
                        runq = self.runq
                        views = store.views
                        new_pri_items = new_pri.tolist()
                        for i in np.nonzero(requeue)[0].tolist():
                            proc = views[i]
                            runq.remove(proc)
                            pri[i] = new_pri_items[i]
                            runq.insert(proc)
        self._request_resched()
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )
