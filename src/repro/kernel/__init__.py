"""Simulated UNIX kernel substrate.

This package models the parts of a 4.4BSD/FreeBSD-4.x kernel that the
ALPS paper's behaviour depends on:

* a decay-usage scheduler (``estcpu`` charged per statclock tick while
  running, decayed once per second by a load-dependent filter, priority
  recomputed as ``PUSER + estcpu/4 + 2*nice``),
* 100 ms round-robin among equal-priority processes,
* sleep/wakeup with wait channels (visible to user level, as via kvm),
* job-control signals (SIGSTOP/SIGCONT) — the mechanism ALPS uses to
  make processes ineligible/eligible,
* per-process CPU-time accounting (getrusage), and
* a one-minute load average.

The kernel runs on top of :class:`repro.sim.Engine`; simulated processes
express their work as :class:`~repro.kernel.behaviors.Behavior` objects
that emit :mod:`~repro.kernel.actions`.
"""

from repro.kernel.actions import Compute, Exit, Sleep, SleepOn
from repro.kernel.behaviors import Behavior, GeneratorBehavior, behavior
from repro.kernel.cfs import CfsKernel
from repro.kernel.kapi import KernelAPI
from repro.kernel.kconfig import KERNEL_BACKENDS, KernelConfig
from repro.kernel.kernel import Kernel
from repro.kernel.process import Process, ProcState
from repro.kernel.signals import SIGCONT, SIGKILL, SIGSTOP


def make_kernel(engine, config: KernelConfig = None) -> Kernel:
    """Build the kernel implementation selected by ``config.backend``.

    ``"strict"`` and ``"optimized"`` both map to :class:`Kernel` (with
    the matching eager/lazy bookkeeping); ``"batch"`` maps to the
    struct-of-arrays :class:`repro.kernel.batch.BatchKernel`;
    ``"resident"`` maps to :class:`repro.kernel.resident.ResidentKernel`
    (arrays as the authoritative state, PCBs as views).  The batch and
    resident modules are imported lazily so workloads that never select
    them do not pay the numpy import.
    """
    from dataclasses import replace

    from repro.kernel.kconfig import DEFAULT_CONFIG

    if config is None:
        config = DEFAULT_CONFIG
    backend = config.resolve_backend()
    if backend == "batch":
        from repro.kernel.batch import BatchKernel

        return BatchKernel(engine, config)
    if backend == "resident":
        from repro.kernel.resident import ResidentKernel

        return ResidentKernel(engine, config)
    if backend == "strict" and not config.strict:
        config = replace(config, strict=True)
    elif backend == "optimized" and config.strict:
        config = replace(config, strict=False)
    return Kernel(engine, config)


__all__ = [
    "Behavior",
    "CfsKernel",
    "Compute",
    "Exit",
    "GeneratorBehavior",
    "KERNEL_BACKENDS",
    "Kernel",
    "KernelAPI",
    "KernelConfig",
    "Process",
    "ProcState",
    "SIGCONT",
    "SIGKILL",
    "SIGSTOP",
    "Sleep",
    "SleepOn",
    "behavior",
    "make_kernel",
]
