"""Behavior protocol: how simulated processes express their work.

A behavior is asked for its next :mod:`action <repro.kernel.actions>`
each time the previous one completes (compute finished, sleep expired,
or the process was just created).  Behaviors may perform side effects
(send signals, wake channels, record statistics) inside
:meth:`Behavior.next_action` — the call happens at exactly the virtual
time the previous action completed.

Most workloads are most naturally written as generators; wrap those with
:class:`GeneratorBehavior` or the :func:`behavior` decorator.  Complex
agents (like the ALPS scheduler process) implement the protocol
directly as state machines.
"""

from __future__ import annotations

import functools
from typing import TYPE_CHECKING, Callable, Generator, Optional, Protocol, runtime_checkable

from repro.kernel.actions import Action, Exit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kapi import KernelAPI
    from repro.kernel.process import Process


@runtime_checkable
class Behavior(Protocol):
    """Supplies successive actions for one simulated process."""

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        """Return the next action.  Called when the previous completed."""
        ...


BehaviorGenerator = Generator[Action, None, None]
BehaviorFactory = Callable[["Process", "KernelAPI"], BehaviorGenerator]


class GeneratorBehavior:
    """Adapts a generator function to the :class:`Behavior` protocol.

    The generator receives ``(proc, kapi)`` and yields actions; when it
    returns (or raises ``StopIteration``) the process exits.
    """

    def __init__(self, factory: BehaviorFactory) -> None:
        self._factory = factory
        self._gen: Optional[BehaviorGenerator] = None

    def next_action(self, proc: "Process", kapi: "KernelAPI") -> Action:
        if self._gen is None:
            self._gen = self._factory(proc, kapi)
        try:
            return next(self._gen)
        except StopIteration:
            return Exit()


def behavior(factory: BehaviorFactory) -> Callable[[], GeneratorBehavior]:
    """Decorator turning a generator function into a behavior factory.

    Usage::

        @behavior
        def spinner(proc, kapi):
            while True:
                yield Compute(ms(100))

        kernel.spawn("worker", spinner())
    """

    @functools.wraps(factory)
    def make() -> GeneratorBehavior:
        return GeneratorBehavior(factory)

    return make
