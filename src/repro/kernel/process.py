"""Process control block and process states."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.behaviors import Behavior
    from repro.sim.event_queue import EventHandle


class ProcState(enum.Enum):
    """Lifecycle states of a simulated process.

    ``STOPPED`` (job control) is modelled as an orthogonal flag on the
    PCB rather than a state, matching UNIX where a process can be
    simultaneously sleeping and stopped; this enum covers the scheduling
    dimension only.
    """

    RUNNABLE = "runnable"
    RUNNING = "running"
    SLEEPING = "sleeping"
    ZOMBIE = "zombie"


@dataclass(slots=True)
class Process:
    """Process control block.

    Time fields are integer microseconds of virtual time.  ``estcpu``
    follows the BSD convention: one unit per statclock tick of CPU
    consumed, decayed once per second.
    """

    pid: int
    name: str
    uid: int
    nice: int
    behavior: "Behavior"
    state: ProcState = ProcState.RUNNABLE
    #: Job-control stop flag (SIGSTOP/SIGCONT), orthogonal to state.
    stopped: bool = False
    #: Set when a stopped process's sleep expired; it becomes runnable
    #: immediately upon SIGCONT.
    ready_while_stopped: bool = False

    # -- scheduler state ------------------------------------------------
    estcpu: float = 0.0
    priority: int = 0
    #: Kernel wakeup-priority boost; set when waking from a voluntary
    #: sleep, consumed at first dispatch (4.4BSD tsleep priority).
    boost_priority: Optional[int] = None
    #: Seconds spent sleeping/stopped (drives wakeup decay).  Under the
    #: lazy-decay fast path this is materialised on demand from
    #: :attr:`park_epoch`; read it through ``Kernel.slptime_of``.
    slptime: int = 0
    #: ``schedcpu`` epoch at which this process entered the
    #: sleeping-or-stopped set (lazy-decay bookkeeping; None while the
    #: process is directly scheduled or the kernel runs strict/eager).
    park_epoch: Optional[int] = None
    #: Virtual runtime (used by the CFS-like policy only).
    vruntime: float = 0.0

    # -- accounting -----------------------------------------------------
    #: Total CPU time consumed (µs), excluding any in-flight run interval.
    cpu_time: int = 0
    #: Virtual time the current on-CPU interval began (valid iff RUNNING).
    run_start: int = 0
    #: Index of the CPU this process occupies (valid iff RUNNING).
    cpu_index: Optional[int] = None
    #: Number of involuntary context switches (preemptions).
    preemptions: int = 0
    #: Number of voluntary context switches (sleeps).
    voluntary_switches: int = 0

    # -- dispatch bookkeeping --------------------------------------------
    #: CPU demand (µs) remaining in the current Compute action.
    pending_burst_us: int = 0
    #: Wait channel name while SLEEPING (kvm-visible).
    wait_channel: Optional[str] = None
    #: Pending sleep-timeout event (cancelled on external wakeup).
    sleep_handle: Optional["EventHandle"] = field(default=None, repr=False)
    #: Pending burst-completion event while RUNNING.
    burst_handle: Optional["EventHandle"] = field(default=None, repr=False)
    #: Precomputed trace tags (avoids per-event f-string allocation on
    #: the dispatch hot path; set once at spawn).
    tag_burst: str = ""
    tag_wake: str = ""
    #: Exit status (valid once ZOMBIE).
    exit_status: int = 0

    @property
    def alive(self) -> bool:
        """True until the process exits."""
        return self.state is not ProcState.ZOMBIE

    @property
    def runnable(self) -> bool:
        """True if the process may be placed on a run queue."""
        return self.state is ProcState.RUNNABLE and not self.stopped

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "T" if self.stopped else ""
        return (
            f"Process(pid={self.pid}, name={self.name!r}, state={self.state.value}"
            f"{'+' + flags if flags else ''}, pri={self.priority}, "
            f"cpu={self.cpu_time})"
        )
