"""User-level view of the kernel: the "system call" facade.

Behaviors and user-level schedulers (ALPS agents) interact with the
kernel exclusively through this object.  It exposes only operations an
unprivileged UNIX process has: reading time, process accounting
(getrusage / kvm-style process inspection), sending signals, spawning
processes, and waking wait channels (the moral equivalent of writing to
a pipe another process sleeps on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import NoSuchProcessError
from repro.kernel.process import ProcState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.behaviors import Behavior
    from repro.kernel.process import Process

_ZOMBIE = ProcState.ZOMBIE
_RUNNING = ProcState.RUNNING
_SLEEPING = ProcState.SLEEPING


class KernelAPI:
    """Unprivileged system-call surface of a :class:`~repro.kernel.kernel.Kernel`.

    The read-only inspection calls (``getrusage``, ``is_blocked``,
    ``is_stopped``, ``pid_exists``) are inlined copies of the matching
    :class:`Kernel` methods rather than delegations: an ALPS agent makes
    one of these per controlled pid per quantum, and the extra call
    frame is the single largest cost of the facade.  They must stay
    behaviorally identical to the kernel-side originals.
    """

    __slots__ = ("_kernel", "_clock", "_procs")

    def __init__(self, kernel) -> None:
        self._kernel = kernel
        self._clock = kernel.engine.clock
        self._procs = kernel.procs

    @property
    def now(self) -> int:
        """Current time (µs) — gettimeofday."""
        return self._clock._now

    @property
    def observer(self):
        """The kernel's attached :class:`repro.obs.Observer` (or None).

        User-level schedulers pick their observability handle up here —
        the moral equivalent of a tracing fd inherited from the
        environment — so agent construction needs no extra plumbing.
        """
        return self._kernel._obs

    def getrusage(self, pid: int) -> int:
        """CPU time consumed by ``pid`` (µs) — getrusage/kvm_getprocs."""
        proc = self._procs.get(pid)
        if proc is None or proc.state is _ZOMBIE:
            raise NoSuchProcessError(pid)
        cpu = proc.cpu_time
        if proc.state is _RUNNING:
            now = self._clock._now
            if now > proc.run_start:
                cpu += now - proc.run_start
        return cpu

    def wait_channel_of(self, pid: int) -> Optional[str]:
        """Wait channel if ``pid`` is blocked, else None — kvm inspection."""
        return self._kernel.wait_channel_of(pid)

    def is_blocked(self, pid: int) -> bool:
        """True if ``pid`` is currently sleeping on some channel."""
        proc = self._procs.get(pid)
        if proc is None or proc.state is _ZOMBIE:
            raise NoSuchProcessError(pid)
        return proc.state is _SLEEPING and proc.wait_channel is not None

    def is_stopped(self, pid: int) -> bool:
        """True if ``pid`` is job-control stopped (``T`` in ps/kvm).

        An unprivileged scheduler uses this to audit its own
        SIGSTOP/SIGCONT bookkeeping against kernel truth (e.g. after a
        crash-restart invalidated its internal state).
        """
        proc = self._procs.get(pid)
        if proc is None or proc.state is _ZOMBIE:
            raise NoSuchProcessError(pid)
        return proc.stopped

    def kill(self, pid: int, signo: int) -> None:
        """Send a signal — kill(2)."""
        self._kernel.kill(pid, signo)

    def spawn(
        self,
        name: str,
        behavior: "Behavior",
        *,
        uid: int = 0,
        nice: int = 0,
        start_delay: int = 0,
    ) -> "Process":
        """Create a new process — fork/exec."""
        return self._kernel.spawn(
            name, behavior, uid=uid, nice=nice, start_delay=start_delay
        )

    def pids_of_uid(self, uid: int) -> list[int]:
        """All live pids owned by ``uid`` — kvm_getprocs(KERN_PROC_UID)."""
        return self._kernel.pids_of_uid(uid)

    def pid_exists(self, pid: int) -> bool:
        """True if ``pid`` names a live process."""
        proc = self._procs.get(pid)
        return proc is not None and proc.state is not _ZOMBIE

    def exit_count(self) -> int:
        """Total processes exited since boot — a sysctl-style global
        accounting counter.  Monotone; an unchanged value guarantees no
        process died since the previous read, letting a user-level
        scheduler skip its per-quantum liveness sweep."""
        return self._kernel.exit_count

    def wakeup(self, channel: str) -> int:
        """Wake sleepers on ``channel`` (e.g. producer/consumer handoff)."""
        return self._kernel.wakeup(channel)

    def wakeup_one(self, channel: str) -> bool:
        """Wake a single sleeper on ``channel`` (no thundering herd)."""
        return self._kernel.wakeup_one(channel)
