"""User-level view of the kernel: the "system call" facade.

Behaviors and user-level schedulers (ALPS agents) interact with the
kernel exclusively through this object.  It exposes only operations an
unprivileged UNIX process has: reading time, process accounting
(getrusage / kvm-style process inspection), sending signals, spawning
processes, and waking wait channels (the moral equivalent of writing to
a pipe another process sleeps on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.behaviors import Behavior
    from repro.kernel.process import Process


class KernelAPI:
    """Unprivileged system-call surface of a :class:`~repro.kernel.kernel.Kernel`."""

    __slots__ = ("_kernel",)

    def __init__(self, kernel) -> None:
        self._kernel = kernel

    @property
    def now(self) -> int:
        """Current time (µs) — gettimeofday."""
        return self._kernel.now

    def getrusage(self, pid: int) -> int:
        """CPU time consumed by ``pid`` (µs) — getrusage/kvm_getprocs."""
        return self._kernel.getrusage(pid)

    def wait_channel_of(self, pid: int) -> Optional[str]:
        """Wait channel if ``pid`` is blocked, else None — kvm inspection."""
        return self._kernel.wait_channel_of(pid)

    def is_blocked(self, pid: int) -> bool:
        """True if ``pid`` is currently sleeping on some channel."""
        return self._kernel.wait_channel_of(pid) is not None

    def is_stopped(self, pid: int) -> bool:
        """True if ``pid`` is job-control stopped (``T`` in ps/kvm).

        An unprivileged scheduler uses this to audit its own
        SIGSTOP/SIGCONT bookkeeping against kernel truth (e.g. after a
        crash-restart invalidated its internal state).
        """
        return self._kernel.is_stopped(pid)

    def kill(self, pid: int, signo: int) -> None:
        """Send a signal — kill(2)."""
        self._kernel.kill(pid, signo)

    def spawn(
        self,
        name: str,
        behavior: "Behavior",
        *,
        uid: int = 0,
        nice: int = 0,
        start_delay: int = 0,
    ) -> "Process":
        """Create a new process — fork/exec."""
        return self._kernel.spawn(
            name, behavior, uid=uid, nice=nice, start_delay=start_delay
        )

    def pids_of_uid(self, uid: int) -> list[int]:
        """All live pids owned by ``uid`` — kvm_getprocs(KERN_PROC_UID)."""
        return self._kernel.pids_of_uid(uid)

    def pid_exists(self, pid: int) -> bool:
        """True if ``pid`` names a live process."""
        try:
            self._kernel.lookup(pid)
            return True
        except Exception:
            return False

    def wakeup(self, channel: str) -> int:
        """Wake sleepers on ``channel`` (e.g. producer/consumer handoff)."""
        return self._kernel.wakeup(channel)

    def wakeup_one(self, channel: str) -> bool:
        """Wake a single sleeper on ``channel`` (no thundering herd)."""
        return self._kernel.wakeup_one(channel)
