"""4.4BSD-style run queues.

BSD hashes the 0..127 priority space into 32 FIFO queues of 4 levels
each (``qindex = priority >> 2``).  Selection scans for the lowest
non-empty queue and takes its head; insertion appends at the tail, which
yields round-robin behaviour among processes whose priorities fall in
the same bucket.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.errors import KernelError
from repro.kernel.process import Process

#: Number of priority levels hashed into one queue (BSD's PPQ).
PPQ = 4
#: Number of queues covering priorities 0..127.
NQS = 32


class RunQueue:
    """Priority-bucketed FIFO ready queues with an occupancy bitmap."""

    def __init__(self) -> None:
        self._queues: list[deque[Process]] = [deque() for _ in range(NQS)]
        self._nonempty: int = 0  # bitmap of occupied queues
        self._count = 0

    def __len__(self) -> int:
        """Number of enqueued processes."""
        return self._count

    @staticmethod
    def _qindex(priority: int) -> int:
        if priority < 0 or priority >= NQS * PPQ:
            raise KernelError(f"priority {priority} out of range 0..{NQS * PPQ - 1}")
        return priority >> 2

    def insert(self, proc: Process) -> None:
        """Append ``proc`` to the tail of its priority bucket."""
        priority = proc.priority  # inlined _qindex: insert is hot
        if priority < 0 or priority >= NQS * PPQ:
            raise KernelError(f"priority {priority} out of range 0..{NQS * PPQ - 1}")
        qi = priority >> 2
        self._queues[qi].append(proc)
        self._nonempty |= 1 << qi
        self._count += 1

    def insert_head(self, proc: Process) -> None:
        """Prepend ``proc`` (used when a preempted process keeps its turn)."""
        qi = self._qindex(proc.priority)
        self._queues[qi].appendleft(proc)
        self._nonempty |= 1 << qi
        self._count += 1

    def remove(self, proc: Process) -> None:
        """Remove ``proc`` from whichever bucket holds it."""
        qi = self._qindex(proc.priority)
        queue = self._queues[qi]
        try:
            queue.remove(proc)
        except ValueError:
            # Priority may have been recomputed since insertion; fall back
            # to a full scan so callers need not track the stale value.
            for other_qi in range(NQS):
                if other_qi == qi:
                    continue
                other = self._queues[other_qi]
                if proc in other:
                    other.remove(proc)
                    if not other:
                        self._nonempty &= ~(1 << other_qi)
                    self._count -= 1
                    return
            raise KernelError(f"pid {proc.pid} not on any run queue") from None
        if not queue:
            self._nonempty &= ~(1 << qi)
        self._count -= 1

    def best_priority(self) -> Optional[int]:
        """Priority bucket floor of the best queued process, or None."""
        if not self._nonempty:
            return None
        qi = (self._nonempty & -self._nonempty).bit_length() - 1
        return self._queues[qi][0].priority

    def pop_best(self) -> Optional[Process]:
        """Remove and return the head of the lowest non-empty queue."""
        if not self._nonempty:
            return None
        qi = (self._nonempty & -self._nonempty).bit_length() - 1
        queue = self._queues[qi]
        proc = queue.popleft()
        if not queue:
            self._nonempty &= ~(1 << qi)
        self._count -= 1
        return proc

    def __contains__(self, proc: Process) -> bool:
        return any(proc in q for q in self._queues)
