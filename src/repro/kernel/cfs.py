"""A CFS-like kernel scheduler (fair virtual-runtime policy).

ALPS's portability claim is that it runs *on top of* whatever the
kernel scheduler does — it only needs progress sampling and
SIGSTOP/SIGCONT.  This module provides a second, very different kernel
policy (modelled on Linux's Completely Fair Scheduler: per-process
virtual runtime weighted by nice, minimum-vruntime dispatch, wakeup
placement, granularity-bounded preemption) behind the same
:class:`~repro.kernel.kernel.Kernel` interface, so the same ALPS agent
can be evaluated on both.

Only the policy differs: the process model, sleep/wakeup, signals,
accounting, and the behavior trampoline are inherited unchanged.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import KernelError
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.kernel import _EVPRI_HOUSEKEEPING, Kernel
from repro.kernel.process import Process, ProcState
from repro.sim.engine import Engine
from repro.units import MSEC

#: Weight of a nice-0 process (Linux convention).
NICE0_WEIGHT = 1024
#: Multiplicative step per nice level (~10 % CPU per nice).
WEIGHT_STEP = 1.25
#: Wakeup placement bonus: sleepers resume at min_vruntime minus this
#: (µs of virtual time), bounding how much credit sleeping earns.
WAKEUP_BONUS_US = 12 * MSEC
#: Virtual-time margin a waiter must be ahead by before it preempts
#: (CFS's wakeup granularity); bounds thrashing between near-ties.
PREEMPT_MARGIN_US = 1 * MSEC
#: How often the policy re-checks the running processes.
CFS_TICK_US = 10 * MSEC


def nice_weight(nice: int) -> float:
    """Load weight for a nice level (1024 at nice 0, ×1.25 per level)."""
    return NICE0_WEIGHT * (WEIGHT_STEP ** (-nice))


class CfsRunQueue:
    """Min-vruntime ready queue with the RunQueue duck-type interface.

    A sorted list stands in for CFS's red-black tree; workloads here
    are tens of processes, where bisection is plenty.
    """

    def __init__(self) -> None:
        self._procs: list[Process] = []  # kept sorted by (vruntime, pid)

    def __len__(self) -> int:
        return len(self._procs)

    def _key(self, proc: Process) -> tuple[float, int]:
        return (proc.vruntime, proc.pid)

    def insert(self, proc: Process) -> None:
        key = self._key(proc)
        lo, hi = 0, len(self._procs)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._key(self._procs[mid]) < key:
                lo = mid + 1
            else:
                hi = mid
        self._procs.insert(lo, proc)

    insert_head = insert  # position is determined by vruntime anyway

    def remove(self, proc: Process) -> None:
        try:
            self._procs.remove(proc)
        except ValueError:
            raise KernelError(f"pid {proc.pid} not on the CFS run queue") from None

    def pop_best(self) -> Optional[Process]:
        if not self._procs:
            return None
        return self._procs.pop(0)

    def best_priority(self) -> Optional[int]:
        """Rank surrogate for generic callers (vruntime in ms, clamped)."""
        if not self._procs:
            return None
        return min(127, max(0, int(self._procs[0].vruntime // MSEC)))

    def min_vruntime(self) -> Optional[float]:
        """Virtual runtime of the leftmost (next-to-run) process."""
        if not self._procs:
            return None
        return self._procs[0].vruntime

    def __contains__(self, proc: Process) -> bool:
        return proc in self._procs


class CfsKernel(Kernel):
    """Kernel with a CFS-like policy instead of 4.4BSD decay usage."""

    def __init__(
        self, engine: Engine, config: KernelConfig = DEFAULT_CONFIG
    ) -> None:
        super().__init__(engine, config)
        self.runq = CfsRunQueue()
        #: Monotone floor for wakeup placement.
        self._min_vruntime = 0.0
        # CFS does its own eager slptime aging (_on_slptime_tick); the
        # base kernel's lazy-decay fast path must stay off.
        self._lazy = False

    # ------------------------------------------------------------------
    # Policy: charging
    # ------------------------------------------------------------------
    def _charge_proc(self, proc: Process) -> None:
        consumed = self.now - proc.run_start
        if consumed <= 0:
            return
        proc.cpu_time += consumed
        proc.pending_burst_us = max(0, proc.pending_burst_us - consumed)
        proc.vruntime += consumed * NICE0_WEIGHT / nice_weight(proc.nice)
        self._min_vruntime = max(self._min_vruntime, proc.vruntime)
        proc.run_start = self.now
        self.total_busy_us += consumed

    def _inst_vruntime(self, proc: Process) -> float:
        inflight = max(0, self.now - proc.run_start)
        return proc.vruntime + inflight * NICE0_WEIGHT / nice_weight(proc.nice)

    # ------------------------------------------------------------------
    # Policy: enqueue / wakeup placement
    # ------------------------------------------------------------------
    def _setrunnable(self, proc: Process) -> None:
        proc.state = ProcState.RUNNABLE
        if proc.stopped:
            return
        # Wakeup/fork placement: newcomers and sleepers may not bank
        # unbounded credit, but get a small head start over the pack.
        floor = self._min_vruntime - WAKEUP_BONUS_US
        proc.vruntime = max(proc.vruntime, floor)
        proc.slptime = 0
        proc.boost_priority = None
        if proc.pid not in self._on_runq:
            self.runq.insert(proc)
            self._on_runq.add(proc.pid)
        self._request_resched()

    # ------------------------------------------------------------------
    # Policy: preemption decisions
    # ------------------------------------------------------------------
    def _resched_now(self) -> None:
        # Fill idle CPUs first.
        if any(c is None for c in self.cpus):
            self._dispatch()
            return
        queued = self.runq.min_vruntime()
        if queued is None:
            return
        # Preempt the running process with the largest vruntime if the
        # queued one is ahead by more than the preemption margin.
        worst_i, worst_v = None, None
        for i, proc in enumerate(self.cpus):
            assert proc is not None
            v = self._inst_vruntime(proc)
            if worst_v is None or v > worst_v:
                worst_i, worst_v = i, v
        if (
            worst_i is not None
            and worst_v is not None
            and queued + PREEMPT_MARGIN_US < worst_v
        ):
            self._preempt_cpu(worst_i)
            self._dispatch()

    # ------------------------------------------------------------------
    # Policy: periodic work
    # ------------------------------------------------------------------
    def _start_housekeeping(self) -> None:
        self.engine.after(
            CFS_TICK_US,
            self._on_cfs_tick,
            priority=_EVPRI_HOUSEKEEPING,
            tag="cfstick",
        )
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_slptime_tick,
            priority=_EVPRI_HOUSEKEEPING,
            tag="slptime",
        )
        self.engine.after(
            self.cfg.loadavg_interval_us,
            self._on_loadavg,
            priority=_EVPRI_HOUSEKEEPING,
            tag="loadavg",
        )

    def _on_cfs_tick(self, event) -> None:
        for i, proc in enumerate(self.cpus):
            if proc is None or self.now <= proc.run_start:
                continue
            self._charge_proc(proc)
        # One preemption opportunity per tick (need_resched semantics).
        self._request_resched()
        self.engine.after(
            CFS_TICK_US,
            self._on_cfs_tick,
            priority=_EVPRI_HOUSEKEEPING,
            tag="cfstick",
        )

    def _on_slptime_tick(self, event) -> None:
        for proc in self.procs.values():
            if proc.state is ProcState.SLEEPING or proc.stopped:
                proc.slptime += 1
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_slptime_tick,
            priority=_EVPRI_HOUSEKEEPING,
            tag="slptime",
        )
