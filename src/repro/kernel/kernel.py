"""The simulated kernel: dispatch, preemption, sleep/wakeup, signals.

Single-CPU, event-driven model of a 4.4BSD/FreeBSD-4.x kernel.  The
scheduler machinery consists of three periodic activities plus
event-driven rescheduling:

* ``schedclock`` (every 40 ms): materialise the running process's CPU
  charge, recompute its priority, preempt if a better process waits.
* ``roundrobin`` (every 100 ms): rotate among processes whose priorities
  fall in the same run-queue bucket.
* ``schedcpu`` (every 1 s): decay every process's ``estcpu`` with the
  load-dependent filter, age sleepers' ``slptime``, update the load
  average.
* ``wakeup``/``SIGCONT``: a newly-runnable process preempts the current
  one if its priority is strictly better.

Design notes
------------
CPU charging is *analytic*: rather than simulating statclock ticks, the
kernel charges ``ran_us / tick_us`` of estcpu whenever a run interval is
materialised (burst completion, preemption, schedclock).  This is
equivalent at the granularity that matters and keeps the event count
low — the "compute less" optimization the HPC guides start from.

Rescheduling triggered from inside an event handler (e.g. a behavior
sending SIGCONT, making a high-priority process runnable) is deferred to
the end of the handler via a dispatch-depth guard, so kernel state is
always consistent when a context switch is performed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import (
    InvalidProcessStateError,
    KernelError,
    NoSuchProcessError,
)
from repro.kernel.behaviors import Behavior
from repro.kernel.actions import Action, Compute, Exit, Sleep, SleepOn
from repro.kernel.kapi import KernelAPI
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.loadavg import LoadAverage
from repro.kernel.priorities import (
    charge_estcpu,
    decay_estcpu,
    user_priority,
    wakeup_decay,
)
from repro.kernel.process import Process, ProcState
from repro.kernel.runqueue import RunQueue
from repro.kernel.signals import SIGCONT, SIGKILL, SIGSTOP, signal_name
from repro.sim.engine import Engine

# Event priorities (lower fires first at equal times).
_EVPRI_START = 0
_EVPRI_BURST = 1
_EVPRI_SLEEP = 2
_EVPRI_HOUSEKEEPING = 3

# Safety bound on consecutive zero-length actions from one behavior.
_MAX_IMMEDIATE_ACTIONS = 64


class Kernel:
    """A single-CPU simulated UNIX kernel scheduling :class:`Process` es."""

    def __init__(
        self,
        engine: Engine,
        config: KernelConfig = DEFAULT_CONFIG,
    ) -> None:
        self.engine = engine
        self.cfg = config
        self.procs: dict[int, Process] = {}
        self.runq = RunQueue()
        #: Per-CPU running process (None = idle).  The paper's testbed
        #: is a uniprocessor (ncpus=1, the default); SMP is an
        #: extension for studying ALPS beyond the paper's setting.
        self.cpus: list[Optional[Process]] = [None] * config.ncpus
        self.loadavg = LoadAverage(config)
        self.kapi = KernelAPI(self)
        self._next_pid = 1
        self._channels: dict[str, list[Process]] = {}
        self._on_runq: set[int] = set()
        self._dispatch_depth = 0
        self._resched_pending = False
        self.total_busy_us = 0
        self.context_switches = 0
        self._exit_hooks: list[Callable[[Process], None]] = []
        self._start_housekeeping()

    # ------------------------------------------------------------------
    # Public API (mirrored by KernelAPI)
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time (µs)."""
        return self.engine.now

    @property
    def current(self) -> Optional[Process]:
        """The process on CPU 0 (uniprocessor convenience accessor)."""
        return self.cpus[0]

    def running_processes(self) -> list[Process]:
        """Processes currently on a CPU."""
        return [p for p in self.cpus if p is not None]

    def spawn(
        self,
        name: str,
        behavior: Behavior,
        *,
        uid: int = 0,
        nice: int = 0,
        start_delay: int = 0,
    ) -> Process:
        """Create a process; its behavior's first action fires after
        ``start_delay`` µs."""
        pid = self._next_pid
        self._next_pid += 1
        proc = Process(pid=pid, name=name, uid=uid, nice=nice, behavior=behavior)
        proc.priority = user_priority(self.cfg, 0.0, nice)
        proc.state = ProcState.SLEEPING  # embryonic until started
        proc.wait_channel = "fork"
        self.procs[pid] = proc
        self.engine.after(
            start_delay,
            self._on_start,
            priority=_EVPRI_START,
            payload=proc,
            tag=f"start:{name}",
        )
        return proc

    def lookup(self, pid: int) -> Process:
        """Return the live process with ``pid`` (raises if absent/zombie)."""
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        return proc

    def getrusage(self, pid: int) -> int:
        """Total CPU time consumed by ``pid`` in µs, including any
        in-flight run interval (like reading kernel accounting live)."""
        proc = self.lookup(pid)
        cpu = proc.cpu_time
        if proc.state is ProcState.RUNNING and self.now > proc.run_start:
            cpu += self.now - proc.run_start
        return cpu

    def wait_channel_of(self, pid: int) -> Optional[str]:
        """The wait channel of ``pid`` (None unless sleeping) — the
        kvm-style introspection ALPS uses to detect blocked processes."""
        proc = self.lookup(pid)
        if proc.state is ProcState.SLEEPING:
            return proc.wait_channel
        return None

    def is_stopped(self, pid: int) -> bool:
        """True if ``pid`` is job-control stopped (the ``T`` state a
        ``ps``/kvm scan would report)."""
        return self.lookup(pid).stopped

    def pids_of_uid(self, uid: int) -> list[int]:
        """All live pids owned by ``uid`` (kvm_getprocs equivalent)."""
        return [
            p.pid
            for p in self.procs.values()
            if p.uid == uid and p.state is not ProcState.ZOMBIE
        ]

    def live_processes(self) -> Iterable[Process]:
        """Iterate over all live processes."""
        return (p for p in self.procs.values() if p.state is not ProcState.ZOMBIE)

    def add_exit_hook(self, hook: Callable[[Process], None]) -> None:
        """Register a callback invoked whenever a process exits."""
        self._exit_hooks.append(hook)

    def kill(self, pid: int, signo: int) -> None:
        """Deliver a signal.  Only SIGSTOP/SIGCONT/SIGKILL are modelled."""
        proc = self.lookup(pid)
        if signo == SIGSTOP:
            self._do_stop(proc)
        elif signo == SIGCONT:
            self._do_cont(proc)
        elif signo == SIGKILL:
            self._do_exit(proc, status=-SIGKILL)
        else:
            raise KernelError(f"unsupported signal {signal_name(signo)}")

    def wakeup(self, channel: str) -> int:
        """Wake every process sleeping on ``channel``; returns the count."""
        sleepers = self._channels.pop(channel, [])
        for proc in sleepers:
            if proc.sleep_handle is not None:
                proc.sleep_handle.cancel()
                proc.sleep_handle = None
            self._finish_sleep(proc)
        self._request_resched()
        return len(sleepers)

    def wakeup_one(self, channel: str) -> bool:
        """Wake the longest-waiting sleeper on ``channel`` (wakeup_one).

        Returns True if someone was woken.  Used by producer/consumer
        handoffs (e.g. a connection arriving at an accept queue) to
        avoid thundering herds.
        """
        sleepers = self._channels.get(channel)
        if not sleepers:
            return False
        proc = sleepers.pop(0)
        if not sleepers:
            self._channels.pop(channel, None)
        if proc.sleep_handle is not None:
            proc.sleep_handle.cancel()
            proc.sleep_handle = None
        self._finish_sleep(proc)
        self._request_resched()
        return True

    def runnable_count(self) -> int:
        """Instantaneous count of runnable + running processes."""
        return len(self.runq) + sum(1 for p in self.cpus if p is not None)

    # ------------------------------------------------------------------
    # Process start / trampoline
    # ------------------------------------------------------------------
    def _on_start(self, event) -> None:
        proc: Process = event.payload
        if proc.state is ProcState.ZOMBIE:
            return
        proc.wait_channel = None
        proc.state = ProcState.RUNNABLE
        self._with_dispatch_guard(self._advance, proc, False)

    def _advance(self, proc: Process, on_cpu: bool) -> None:
        """Ask the behavior for actions until one takes time.

        ``on_cpu`` is True when ``proc`` just completed a burst while
        running; a follow-on Compute then continues without a context
        switch.
        """
        for _ in range(_MAX_IMMEDIATE_ACTIONS):
            action: Action = proc.behavior.next_action(proc, self.kapi)
            if proc.state is ProcState.ZOMBIE:
                return  # behavior side effect killed the process
            if isinstance(action, Compute):
                if action.duration_us == 0:
                    continue
                proc.pending_burst_us = action.duration_us
                if on_cpu:
                    self._schedule_burst(proc, restart=True)
                else:
                    self._setrunnable(proc)
                return
            if isinstance(action, (Sleep, SleepOn)):
                timeout = action.duration_us if isinstance(action, Sleep) else None
                self._sleep(proc, action.channel, timeout, on_cpu)
                return
            if isinstance(action, Exit):
                self._do_exit(proc, status=action.status)
                return
            raise KernelError(f"behavior returned unknown action {action!r}")
        raise KernelError(
            f"pid {proc.pid} issued {_MAX_IMMEDIATE_ACTIONS} zero-length "
            "actions in a row; behavior is likely stuck"
        )

    # ------------------------------------------------------------------
    # CPU dispatch
    # ------------------------------------------------------------------
    def _schedule_burst(self, proc: Process, *, restart: bool) -> None:
        """(Re)arm the burst-completion event for the running ``proc``."""
        if restart:
            proc.run_start = self.now
        done_at = proc.run_start + proc.pending_burst_us
        proc.burst_handle = self.engine.at(
            max(done_at, self.now),
            self._on_burst_complete,
            priority=_EVPRI_BURST,
            payload=proc,
            tag=f"burst:{proc.name}",
        )

    def _on_burst_complete(self, event) -> None:
        proc: Process = event.payload
        if (
            proc.state is not ProcState.RUNNING
            or proc.cpu_index is None
            or self.cpus[proc.cpu_index] is not proc
        ):
            return  # stale event (should have been cancelled)
        proc.burst_handle = None
        self._charge_proc(proc)
        self._with_dispatch_guard(self._advance, proc, True)

    def _charge_proc(self, proc: Process) -> None:
        """Account one running process's in-flight CPU consumption."""
        consumed = self.now - proc.run_start
        if consumed <= 0:
            return
        proc.cpu_time += consumed
        proc.pending_burst_us = max(0, proc.pending_burst_us - consumed)
        proc.estcpu = charge_estcpu(self.cfg, proc.estcpu, consumed)
        proc.priority = user_priority(self.cfg, proc.estcpu, proc.nice)
        proc.run_start = self.now
        self.total_busy_us += consumed

    def _charge_current(self) -> None:
        """Materialise the in-flight charges of every running process."""
        for proc in self.cpus:
            if proc is not None:
                self._charge_proc(proc)

    def _dispatch(self) -> None:
        """Fill idle CPUs with the best runnable processes."""
        for i, occupant in enumerate(self.cpus):
            if occupant is not None:
                continue
            proc = self.runq.pop_best()
            if proc is None:
                return
            self._on_runq.discard(proc.pid)
            if proc.boost_priority is not None:
                # The wakeup boost is consumed at dispatch; user-mode
                # work proceeds at the ordinary decay-usage priority.
                proc.boost_priority = None
                proc.priority = user_priority(self.cfg, proc.estcpu, proc.nice)
            proc.state = ProcState.RUNNING
            proc.cpu_index = i
            self.cpus[i] = proc
            self.context_switches += 1
            proc.run_start = self.now + self.cfg.ctx_switch_us
            self._schedule_burst(proc, restart=False)

    def _preempt_cpu(self, index: int) -> None:
        """Take the process on CPU ``index`` off and requeue it."""
        proc = self.cpus[index]
        if proc is None:
            return
        if proc.burst_handle is not None:
            proc.burst_handle.cancel()
            proc.burst_handle = None
        self._charge_proc(proc)
        proc.state = ProcState.RUNNABLE
        proc.preemptions += 1
        proc.cpu_index = None
        self.cpus[index] = None
        if not proc.stopped:
            self.runq.insert(proc)
            self._on_runq.add(proc.pid)

    def _setrunnable(self, proc: Process) -> None:
        """Make ``proc`` eligible for dispatch (unless stopped)."""
        proc.state = ProcState.RUNNABLE
        if proc.stopped:
            return  # parked until SIGCONT
        if proc.slptime >= 1:
            proc.estcpu = wakeup_decay(
                self.cfg, proc.estcpu, proc.nice, self.loadavg.value, proc.slptime
            )
            proc.slptime = 0
        proc.priority = user_priority(self.cfg, proc.estcpu, proc.nice)
        if proc.boost_priority is not None:
            proc.priority = min(proc.priority, proc.boost_priority)
        if proc.pid not in self._on_runq:
            self.runq.insert(proc)
            self._on_runq.add(proc.pid)
        self._request_resched()

    def _inst_priority(self, proc: Process) -> int:
        """A running process's priority including in-flight CPU usage."""
        inflight = max(0, self.now - proc.run_start)
        est = charge_estcpu(self.cfg, proc.estcpu, inflight)
        return user_priority(self.cfg, est, proc.nice)

    def _worst_cpu(self) -> Optional[tuple[int, int]]:
        """(index, instantaneous priority) of the worst-priority running
        process, or None if some CPU is idle."""
        worst: Optional[tuple[int, int]] = None
        for i, proc in enumerate(self.cpus):
            if proc is None:
                return None
            pri = self._inst_priority(proc)
            if worst is None or pri > worst[1]:
                worst = (i, pri)
        return worst

    # ------------------------------------------------------------------
    # Deferred rescheduling
    # ------------------------------------------------------------------
    def _with_dispatch_guard(self, fn, *args) -> None:
        self._dispatch_depth += 1
        try:
            fn(*args)
        finally:
            self._dispatch_depth -= 1
        if self._dispatch_depth == 0 and self._resched_pending:
            self._resched_pending = False
            self._resched_now()

    def _request_resched(self) -> None:
        if self._dispatch_depth > 0:
            self._resched_pending = True
        else:
            self._resched_now()

    def _resched_now(self) -> None:
        worst = self._worst_cpu()
        if worst is None:  # at least one idle CPU
            self._dispatch()
            return
        best = self.runq.best_priority()
        if best is not None and best < worst[1]:
            self._preempt_cpu(worst[0])
            self._dispatch()

    # ------------------------------------------------------------------
    # Sleep / wakeup
    # ------------------------------------------------------------------
    def _sleep(
        self, proc: Process, channel: str, timeout: Optional[int], on_cpu: bool
    ) -> None:
        if on_cpu:
            if proc.cpu_index is None or self.cpus[proc.cpu_index] is not proc:
                raise InvalidProcessStateError(
                    f"pid {proc.pid} sleeping on-cpu but is not running"
                )
            proc.voluntary_switches += 1
            self.cpus[proc.cpu_index] = None
            proc.cpu_index = None
        if timeout == 0:
            # Zero-length sleep: yield the CPU but wake immediately.
            proc.state = ProcState.RUNNABLE
            self._setrunnable(proc)
            self._request_resched()
            return
        proc.state = ProcState.SLEEPING
        proc.wait_channel = channel
        self._channels.setdefault(channel, []).append(proc)
        if timeout is not None:
            # Timeout expiries are quantized to the callout resolution,
            # as tsleep/nanosleep/setitimer are on real kernels: the
            # callout fires at the first timer edge at or after the
            # nominal deadline.
            deadline = self.now + timeout
            res = self.cfg.callout_resolution_us
            deadline = ((deadline + res - 1) // res) * res
            proc.sleep_handle = self.engine.at(
                deadline,
                self._on_sleep_timeout,
                priority=_EVPRI_SLEEP,
                payload=proc,
                tag=f"wake:{proc.name}",
            )
        self._request_resched()

    def _on_sleep_timeout(self, event) -> None:
        proc: Process = event.payload
        if proc.state is not ProcState.SLEEPING:
            return  # stale
        proc.sleep_handle = None
        waiters = self._channels.get(proc.wait_channel or "")
        if waiters and proc in waiters:
            waiters.remove(proc)
            if not waiters:
                self._channels.pop(proc.wait_channel or "", None)
        self._finish_sleep(proc)
        self._request_resched()

    def _finish_sleep(self, proc: Process) -> None:
        """Complete a sleep: ask the behavior what to do next.

        The process receives the tsleep wakeup-priority boost, so if it
        becomes runnable it preempts user-mode work immediately (as a
        process returning from a kernel sleep does on BSD).
        """
        proc.wait_channel = None
        proc.state = ProcState.RUNNABLE
        proc.boost_priority = self.cfg.sleep_priority
        self._with_dispatch_guard(self._advance, proc, False)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _do_stop(self, proc: Process) -> None:
        if proc.stopped:
            return
        proc.stopped = True
        if proc.state is ProcState.RUNNING and proc.cpu_index is not None:
            # Target is on a CPU: take it off without requeueing.
            self._preempt_cpu(proc.cpu_index)
            self._request_resched()
        elif proc.pid in self._on_runq:
            self.runq.remove(proc)
            self._on_runq.discard(proc.pid)
        # SLEEPING: stays asleep; slptime keeps accruing while stopped.

    def _do_cont(self, proc: Process) -> None:
        if not proc.stopped:
            return
        proc.stopped = False
        if proc.state is ProcState.RUNNABLE:
            self._setrunnable(proc)
        # SLEEPING: resumes waiting; nothing to do.

    def _do_exit(self, proc: Process, *, status: int) -> None:
        if proc.state is ProcState.ZOMBIE:
            return
        if proc.state is ProcState.RUNNING and proc.cpu_index is not None:
            if proc.burst_handle is not None:
                proc.burst_handle.cancel()
                proc.burst_handle = None
            self._charge_proc(proc)
            self.cpus[proc.cpu_index] = None
            proc.cpu_index = None
            self._request_resched()
        if proc.pid in self._on_runq:
            self.runq.remove(proc)
            self._on_runq.discard(proc.pid)
        if proc.sleep_handle is not None:
            proc.sleep_handle.cancel()
            proc.sleep_handle = None
        if proc.wait_channel is not None:
            waiters = self._channels.get(proc.wait_channel)
            if waiters and proc in waiters:
                waiters.remove(proc)
            proc.wait_channel = None
        proc.state = ProcState.ZOMBIE
        proc.exit_status = status
        for hook in self._exit_hooks:
            hook(proc)
        self._request_resched()

    # ------------------------------------------------------------------
    # Periodic scheduler housekeeping
    # ------------------------------------------------------------------
    def _start_housekeeping(self) -> None:
        self.engine.after(
            self.cfg.schedclock_us,
            self._on_schedclock,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedclock",
        )
        self.engine.after(
            self.cfg.slice_us,
            self._on_roundrobin,
            priority=_EVPRI_HOUSEKEEPING,
            tag="roundrobin",
        )
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )
        self.engine.after(
            self.cfg.loadavg_interval_us,
            self._on_loadavg,
            priority=_EVPRI_HOUSEKEEPING,
            tag="loadavg",
        )

    def _on_schedclock(self, event) -> None:
        # Never rotate out a process that was dispatched this very
        # instant (e.g. a wakeup coinciding with the housekeeping grid):
        # on real hardware the wakeup and the clock tick resolve in one
        # dispatch decision, not two.
        for i, proc in enumerate(self.cpus):
            if proc is None or self.now <= proc.run_start:
                continue
            self._charge_proc(proc)
            best = self.runq.best_priority()
            if best is not None and best < proc.priority:
                self._preempt_cpu(i)
                self._dispatch()
        self.engine.after(
            self.cfg.schedclock_us,
            self._on_schedclock,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedclock",
        )

    def _on_roundrobin(self, event) -> None:
        for i, proc in enumerate(self.cpus):
            if proc is None or not self.runq or self.now <= proc.run_start:
                continue
            self._charge_proc(proc)
            best = self.runq.best_priority()
            # Rotate if the best waiter is in the same or a better
            # priority bucket (BSD compares run-queue indexes).
            if best is not None and (best >> 2) <= (proc.priority >> 2):
                self._preempt_cpu(i)
                self._dispatch()
        self.engine.after(
            self.cfg.slice_us,
            self._on_roundrobin,
            priority=_EVPRI_HOUSEKEEPING,
            tag="roundrobin",
        )

    def _on_schedcpu(self, event) -> None:
        self._charge_current()
        load = self.loadavg.value
        for proc in self.procs.values():
            if proc.state is ProcState.ZOMBIE:
                continue
            if proc.state is ProcState.SLEEPING or proc.stopped:
                proc.slptime += 1
                if proc.slptime > 1:
                    continue  # updatepri handles long sleepers on wakeup
            new_est = decay_estcpu(self.cfg, proc.estcpu, proc.nice, load)
            if new_est != proc.estcpu:
                proc.estcpu = new_est
                new_pri = user_priority(self.cfg, proc.estcpu, proc.nice)
                if proc.boost_priority is not None:
                    new_pri = min(new_pri, proc.boost_priority)
                if new_pri != proc.priority:
                    if proc.pid in self._on_runq:
                        self.runq.remove(proc)
                        proc.priority = new_pri
                        self.runq.insert(proc)
                    else:
                        proc.priority = new_pri
        self._request_resched()
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )

    def _on_loadavg(self, event) -> None:
        self.loadavg.sample(self.runnable_count())
        self.engine.after(
            self.cfg.loadavg_interval_us,
            self._on_loadavg,
            priority=_EVPRI_HOUSEKEEPING,
            tag="loadavg",
        )
