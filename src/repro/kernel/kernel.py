"""The simulated kernel: dispatch, preemption, sleep/wakeup, signals.

Single-CPU, event-driven model of a 4.4BSD/FreeBSD-4.x kernel.  The
scheduler machinery consists of three periodic activities plus
event-driven rescheduling:

* ``schedclock`` (every 40 ms): materialise the running process's CPU
  charge, recompute its priority, preempt if a better process waits.
* ``roundrobin`` (every 100 ms): rotate among processes whose priorities
  fall in the same run-queue bucket.
* ``schedcpu`` (every 1 s): decay every process's ``estcpu`` with the
  load-dependent filter, age sleepers' ``slptime``, update the load
  average.
* ``wakeup``/``SIGCONT``: a newly-runnable process preempts the current
  one if its priority is strictly better.

Design notes
------------
CPU charging is *analytic*: rather than simulating statclock ticks, the
kernel charges ``ran_us / tick_us`` of estcpu whenever a run interval is
materialised (burst completion, preemption, schedclock).  This is
equivalent at the granularity that matters and keeps the event count
low — the "compute less" optimization the HPC guides start from.

Rescheduling triggered from inside an event handler (e.g. a behavior
sending SIGCONT, making a high-priority process runnable) is deferred to
the end of the handler via a dispatch-depth guard, so kernel state is
always consistent when a context switch is performed.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.errors import (
    InvalidProcessStateError,
    KernelError,
    NoSuchProcessError,
)
from repro.kernel.behaviors import Behavior
from repro.kernel.actions import Action, Compute, Exit, Sleep, SleepOn
from repro.kernel.kapi import KernelAPI
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.loadavg import LoadAverage
from repro.kernel.priorities import (
    charge_estcpu,
    decay_estcpu,
    user_priority,
    wakeup_decay,
)
from repro.kernel.process import Process, ProcState
from repro.kernel.runqueue import RunQueue
from repro.kernel.signals import SIGCONT, SIGKILL, SIGSTOP, signal_name
from repro.sim.engine import Engine

# Event priorities (lower fires first at equal times).
_EVPRI_START = 0
_EVPRI_BURST = 1
_EVPRI_SLEEP = 2
_EVPRI_HOUSEKEEPING = 3

# Safety bound on consecutive zero-length actions from one behavior.
_MAX_IMMEDIATE_ACTIONS = 64


class Kernel:
    """A single-CPU simulated UNIX kernel scheduling :class:`Process` es."""

    def __init__(
        self,
        engine: Engine,
        config: KernelConfig = DEFAULT_CONFIG,
    ) -> None:
        self.engine = engine
        #: Direct clock reference: ``self._clock._now`` is the hot-path
        #: spelling of ``self.now`` (two property hops fewer).
        self._clock = engine.clock
        self.cfg = config
        self.procs: dict[int, Process] = {}
        self.runq = RunQueue()
        #: Per-CPU running process (None = idle).  The paper's testbed
        #: is a uniprocessor (ncpus=1, the default); SMP is an
        #: extension for studying ALPS beyond the paper's setting.
        self.cpus: list[Optional[Process]] = [None] * config.ncpus
        self.loadavg = LoadAverage(config)
        self.kapi = KernelAPI(self)
        self._next_pid = 1
        self._channels: dict[str, list[Process]] = {}
        self._on_runq: set[int] = set()
        self._dispatch_depth = 0
        self._resched_pending = False
        self.total_busy_us = 0
        self.context_switches = 0
        #: Total processes that have exited since boot (monotone).  The
        #: moral equivalent of a sysctl/procfs global accounting counter:
        #: user-level schedulers poll it to skip liveness sweeps when no
        #: process can possibly have died since the last look.
        self.exit_count = 0
        self._exit_hooks: list[Callable[[Process], None]] = []
        #: Optional observability handle (repro.obs).  ``None`` keeps
        #: every instrumentation point at one attribute read, the same
        #: off-path discipline as the engine's tracer short-circuit.
        self._obs = None
        # -- fast-path state (see docs/performance.md) -----------------
        #: Lazy estcpu decay for sleepers (4.4BSD ``updatepri`` style).
        #: ``config.strict`` re-enables the original eager per-second
        #: loop; subclasses with their own aging (CFS) opt out too.
        self._lazy = not config.strict
        #: Number of completed ``schedcpu`` passes.
        self._schedcpu_epoch = 0
        #: Load average used at each pass (``[k-1]`` = load at pass k),
        #: so deferred first-pass decay replays the exact eager inputs.
        self._load_history: list[float] = []
        #: Count of occupied CPUs (O(1) ``runnable_count``).
        self._oncpu = 0
        # Hoisted config scalars for the inlined charge/priority math.
        self._tick_us = config.tick_us
        self._estcpu_limit = config.estcpu_limit
        self._puser = config.puser
        self._estcpu_weight = config.estcpu_weight
        self._nice_weight = config.nice_weight
        self._maxpri = config.maxpri
        self._ctx_switch_us = config.ctx_switch_us
        self._callout_res_us = config.callout_resolution_us
        #: Direct queue insertion for kernel-internal events whose times
        #: are provably >= now (burst completions, sleep timeouts) — the
        #: past-scheduling guard in ``Engine.at`` can never fire for
        #: them, so it is skipped.
        self._equeue_schedule = engine.queue.schedule
        # Perf counters (cheap ints; snapshotted by repro.perf).
        self.perf_schedcpu_passes = 0
        self.perf_schedcpu_idle_skips = 0
        self.perf_lazy_materializations = 0
        self._start_housekeeping()

    # ------------------------------------------------------------------
    # Public API (mirrored by KernelAPI)
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current virtual time (µs)."""
        return self.engine.now

    @property
    def current(self) -> Optional[Process]:
        """The process on CPU 0 (uniprocessor convenience accessor)."""
        return self.cpus[0]

    def running_processes(self) -> list[Process]:
        """Processes currently on a CPU."""
        return [p for p in self.cpus if p is not None]

    def spawn(
        self,
        name: str,
        behavior: Behavior,
        *,
        uid: int = 0,
        nice: int = 0,
        start_delay: int = 0,
    ) -> Process:
        """Create a process; its behavior's first action fires after
        ``start_delay`` µs."""
        pid = self._next_pid
        self._next_pid += 1
        proc = self._make_process(pid, name, uid, nice, behavior)
        proc.priority = user_priority(self.cfg, 0.0, nice)
        proc.state = ProcState.SLEEPING  # embryonic until started
        proc.wait_channel = "fork"
        proc.tag_burst = f"burst:{name}"
        proc.tag_wake = f"wake:{name}"
        self.procs[pid] = proc
        self._park(proc)
        self.engine.after(
            start_delay,
            self._on_start,
            priority=_EVPRI_START,
            payload=proc,
            tag=f"start:{name}",
        )
        return proc

    def _make_process(
        self, pid: int, name: str, uid: int, nice: int, behavior: Behavior
    ) -> Process:
        """PCB construction hook for :meth:`spawn`.

        The resident backend overrides this to allocate a row in its
        authoritative array store and return a view-PCB bound to it;
        every other backend gets a plain :class:`Process`.
        """
        return Process(pid=pid, name=name, uid=uid, nice=nice, behavior=behavior)

    def lookup(self, pid: int) -> Process:
        """Return the live process with ``pid`` (raises if absent/zombie)."""
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        return proc

    def getrusage(self, pid: int) -> int:
        """Total CPU time consumed by ``pid`` in µs, including any
        in-flight run interval (like reading kernel accounting live)."""
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        cpu = proc.cpu_time
        if proc.state is ProcState.RUNNING:
            now = self._clock._now
            if now > proc.run_start:
                cpu += now - proc.run_start
        return cpu

    def wait_channel_of(self, pid: int) -> Optional[str]:
        """The wait channel of ``pid`` (None unless sleeping) — the
        kvm-style introspection ALPS uses to detect blocked processes."""
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        if proc.state is ProcState.SLEEPING:
            return proc.wait_channel
        return None

    def is_stopped(self, pid: int) -> bool:
        """True if ``pid`` is job-control stopped (the ``T`` state a
        ``ps``/kvm scan would report)."""
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        return proc.stopped

    def pids_of_uid(self, uid: int) -> list[int]:
        """All live pids owned by ``uid`` (kvm_getprocs equivalent)."""
        return [
            p.pid
            for p in self.procs.values()
            if p.uid == uid and p.state is not ProcState.ZOMBIE
        ]

    def live_processes(self) -> Iterable[Process]:
        """Iterate over all live processes."""
        return (p for p in self.procs.values() if p.state is not ProcState.ZOMBIE)

    def add_exit_hook(self, hook: Callable[[Process], None]) -> None:
        """Register a callback invoked whenever a process exits."""
        self._exit_hooks.append(hook)

    def kill(self, pid: int, signo: int) -> None:
        """Deliver a signal.  Only SIGSTOP/SIGCONT/SIGKILL are modelled."""
        proc = self.procs.get(pid)  # inlined lookup() — hot via the agent
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(
                self._clock._now, "signal.sent",
                pid=pid, signo=signal_name(signo),
            )
        if signo == SIGSTOP:
            self._do_stop(proc)
        elif signo == SIGCONT:
            self._do_cont(proc)
        elif signo == SIGKILL:
            self._do_exit(proc, status=-SIGKILL)
        else:
            raise KernelError(f"unsupported signal {signal_name(signo)}")

    def renice(self, pid: int, nice: int) -> int:
        """setpriority(2): change a live process's nice value.

        Returns the previous nice.  The priority is recomputed from the
        current estcpu immediately — a running process first materialises
        its in-flight consumption, and a runnable one is requeued at its
        new priority so the change takes effect at the next dispatch,
        not at the next charge.  This is a privileged kernel-side
        operation (deliberately absent from :class:`KernelAPI`): the
        fault injector uses it to model an administrator nice-bombing
        the agent (docs/fault_model.md).
        """
        proc = self.procs.get(pid)
        if proc is None or proc.state is ProcState.ZOMBIE:
            raise NoSuchProcessError(pid)
        old = proc.nice
        if nice == old:
            return old
        if proc.state is ProcState.RUNNING:
            self._charge_proc(proc)
        proc.nice = nice
        obs = self._obs
        if obs is not None and obs.enabled:
            obs.events.emit(
                self._clock._now, "kernel.renice", pid=pid, nice=nice
            )
        on_runq = pid in self._on_runq
        if on_runq:
            self.runq.remove(proc)
            self._on_runq.discard(pid)
        # Inlined user_priority (see _charge_proc).
        pri = (
            self._puser
            + proc.estcpu / self._estcpu_weight
            + self._nice_weight * nice
        )
        if pri < 0:
            proc.priority = 0
        elif pri > self._maxpri:
            proc.priority = self._maxpri
        else:
            proc.priority = int(pri)
        if on_runq:
            self.runq.insert(proc)
            self._on_runq.add(pid)
        self._request_resched()
        return old

    def wakeup(self, channel: str) -> int:
        """Wake every process sleeping on ``channel``; returns the count."""
        sleepers = self._channels.pop(channel, [])
        for proc in sleepers:
            if proc.sleep_handle is not None:
                proc.sleep_handle.cancel()
                proc.sleep_handle = None
            self._finish_sleep(proc)
        self._request_resched()
        return len(sleepers)

    def wakeup_one(self, channel: str) -> bool:
        """Wake the longest-waiting sleeper on ``channel`` (wakeup_one).

        Returns True if someone was woken.  Used by producer/consumer
        handoffs (e.g. a connection arriving at an accept queue) to
        avoid thundering herds.
        """
        sleepers = self._channels.get(channel)
        if not sleepers:
            return False
        proc = sleepers.pop(0)
        if not sleepers:
            self._channels.pop(channel, None)
        if proc.sleep_handle is not None:
            proc.sleep_handle.cancel()
            proc.sleep_handle = None
        self._finish_sleep(proc)
        self._request_resched()
        return True

    def runnable_count(self) -> int:
        """Instantaneous count of runnable + running processes."""
        return len(self.runq) + self._oncpu

    def slptime_of(self, pid: int) -> int:
        """Seconds ``pid`` has spent sleeping/stopped, materialising any
        lazily-deferred accrual first (the value the eager path would
        hold right now)."""
        proc = self.procs.get(pid)
        if proc is None:
            raise NoSuchProcessError(pid)
        self._materialize_slptime(proc)
        return proc.slptime

    def flush_lazy_decay(self) -> None:
        """Materialise deferred slptime/decay for every parked process.

        Idempotent and schedule-invisible: after this call the full
        per-process scheduler state (estcpu, slptime, priority) matches
        what the strict/eager path would hold at this instant.  Used by
        the equivalence tests and state-dump tooling.
        """
        for proc in self.procs.values():
            self._materialize_slptime(proc)

    def attach_observer(self, observer) -> None:
        """Attach a :class:`repro.obs.Observer` to kernel + syscall layer.

        Observation is read-only: events record context switches and
        delivered signals, but nothing about dispatch changes, so an
        attached observer is schedule-invisible (pinned by
        tests/obs/test_observer_differential.py).
        """
        self._obs = observer

    def perf_snapshot(self) -> dict[str, int]:
        """Cheap scheduler-internal perf counters (see repro.perf)."""
        return {
            "kernel.schedcpu_passes": self.perf_schedcpu_passes,
            "kernel.schedcpu_idle_skips": self.perf_schedcpu_idle_skips,
            "kernel.lazy_materializations": self.perf_lazy_materializations,
            "kernel.context_switches": self.context_switches,
        }

    # ------------------------------------------------------------------
    # Lazy slptime/decay bookkeeping (fast path)
    # ------------------------------------------------------------------
    # A process that is sleeping or stopped ("parked") cannot influence
    # scheduling until it next becomes runnable, so the eager per-second
    # work on it — slptime aging plus the single first-pass decay that
    # 4.4BSD's schedcpu applies before updatepri takes over — is
    # deferred and replayed, with the recorded pass-time load, the
    # moment the process re-enters the scheduled world.
    def _park(self, proc: Process) -> None:
        if self._lazy and proc.park_epoch is None:
            proc.park_epoch = self._schedcpu_epoch

    def _materialize_slptime(self, proc: Process) -> None:
        epoch = proc.park_epoch
        if epoch is None:
            return
        elapsed = self._schedcpu_epoch - epoch
        if elapsed <= 0:
            return
        if proc.slptime == 0:
            # Replay the one eager decay applied at the first pass after
            # parking (pass epoch+1, whose load is _load_history[epoch]).
            new_est = decay_estcpu(
                self.cfg, proc.estcpu, proc.nice, self._load_history[epoch]
            )
            if new_est != proc.estcpu:
                proc.estcpu = new_est
                new_pri = user_priority(self.cfg, new_est, proc.nice)
                if proc.boost_priority is not None:
                    new_pri = min(new_pri, proc.boost_priority)
                proc.priority = new_pri  # parked, never on the run queue
        proc.slptime += elapsed
        proc.park_epoch = self._schedcpu_epoch
        self.perf_lazy_materializations += 1

    def _unpark(self, proc: Process) -> None:
        if proc.park_epoch is not None:
            self._materialize_slptime(proc)
            proc.park_epoch = None

    # ------------------------------------------------------------------
    # Process start / trampoline
    # ------------------------------------------------------------------
    def _on_start(self, event) -> None:
        proc: Process = event.payload
        if proc.state is ProcState.ZOMBIE:
            return
        proc.wait_channel = None
        proc.state = ProcState.RUNNABLE
        self._advance_guarded(proc, False)

    def _advance(self, proc: Process, on_cpu: bool) -> None:
        """Ask the behavior for actions until one takes time.

        ``on_cpu`` is True when ``proc`` just completed a burst while
        running; a follow-on Compute then continues without a context
        switch.
        """
        for _ in range(_MAX_IMMEDIATE_ACTIONS):
            action: Action = proc.behavior.next_action(proc, self.kapi)
            if proc.state is ProcState.ZOMBIE:
                return  # behavior side effect killed the process
            if isinstance(action, Compute):
                if action.duration_us == 0:
                    continue
                proc.pending_burst_us = action.duration_us
                if on_cpu:
                    self._schedule_burst(proc, restart=True)
                else:
                    self._setrunnable(proc)
                return
            if isinstance(action, (Sleep, SleepOn)):
                timeout = action.duration_us if isinstance(action, Sleep) else None
                self._sleep(proc, action.channel, timeout, on_cpu)
                return
            if isinstance(action, Exit):
                self._do_exit(proc, status=action.status)
                return
            raise KernelError(f"behavior returned unknown action {action!r}")
        raise KernelError(
            f"pid {proc.pid} issued {_MAX_IMMEDIATE_ACTIONS} zero-length "
            "actions in a row; behavior is likely stuck"
        )

    # ------------------------------------------------------------------
    # CPU dispatch
    # ------------------------------------------------------------------
    def _schedule_burst(self, proc: Process, *, restart: bool) -> None:
        """(Re)arm the burst-completion event for the running ``proc``."""
        now = self._clock._now
        if restart:
            proc.run_start = now
        done_at = proc.run_start + proc.pending_burst_us
        if done_at < now:
            done_at = now
        proc.burst_handle = self._equeue_schedule(
            done_at, self._on_burst_complete, _EVPRI_BURST, proc, proc.tag_burst
        )

    def _on_burst_complete(self, event) -> None:
        proc: Process = event.payload
        if (
            proc.state is not ProcState.RUNNING
            or proc.cpu_index is None
            or self.cpus[proc.cpu_index] is not proc
        ):
            return  # stale event (should have been cancelled)
        proc.burst_handle = None
        self._charge_proc(proc)
        self._advance_guarded(proc, True)

    def _charge_proc(self, proc: Process) -> None:
        """Account one running process's in-flight CPU consumption.

        The estcpu charge and priority recomputation are inlined copies
        of :func:`charge_estcpu` / :func:`user_priority` over config
        scalars hoisted at construction — this runs on every burst
        completion, preemption, and schedclock tick, and the expressions
        must stay operation-for-operation identical to the module
        functions (the strict path and the property tests compare them).
        """
        now = self._clock._now
        consumed = now - proc.run_start
        if consumed <= 0:
            return
        proc.cpu_time += consumed
        pending = proc.pending_burst_us - consumed
        proc.pending_burst_us = pending if pending > 0 else 0
        est = proc.estcpu + consumed / self._tick_us
        limit = self._estcpu_limit
        if est > limit:
            est = limit
        proc.estcpu = est
        pri = self._puser + est / self._estcpu_weight + self._nice_weight * proc.nice
        if pri < 0:
            proc.priority = 0
        elif pri > self._maxpri:
            proc.priority = self._maxpri
        else:
            proc.priority = int(pri)
        proc.run_start = now
        self.total_busy_us += consumed

    def _charge_current(self) -> None:
        """Materialise the in-flight charges of every running process."""
        for proc in self.cpus:
            if proc is not None:
                self._charge_proc(proc)

    def _dispatch(self) -> None:
        """Fill idle CPUs with the best runnable processes."""
        cpus = self.cpus
        if len(cpus) == 1 and cpus[0] is not None:
            return  # uniprocessor, busy: nothing to fill
        for i, occupant in enumerate(cpus):
            if occupant is not None:
                continue
            proc = self.runq.pop_best()
            if proc is None:
                return
            self._on_runq.discard(proc.pid)
            if proc.boost_priority is not None:
                # The wakeup boost is consumed at dispatch; user-mode
                # work proceeds at the ordinary decay-usage priority.
                # (Inlined user_priority, see _charge_proc.)
                proc.boost_priority = None
                pri = (
                    self._puser
                    + proc.estcpu / self._estcpu_weight
                    + self._nice_weight * proc.nice
                )
                if pri < 0:
                    proc.priority = 0
                elif pri > self._maxpri:
                    proc.priority = self._maxpri
                else:
                    proc.priority = int(pri)
            proc.state = ProcState.RUNNING
            proc.cpu_index = i
            self.cpus[i] = proc
            self._oncpu += 1
            self.context_switches += 1
            obs = self._obs
            if obs is not None and obs.enabled:
                obs.events.emit(
                    self._clock._now, "kernel.ctxsw", pid=proc.pid, cpu=i
                )
            proc.run_start = self._clock._now + self._ctx_switch_us
            self._schedule_burst(proc, restart=False)

    def _preempt_cpu(self, index: int) -> None:
        """Take the process on CPU ``index`` off and requeue it."""
        proc = self.cpus[index]
        if proc is None:
            return
        if proc.burst_handle is not None:
            proc.burst_handle.cancel()
            proc.burst_handle = None
        self._charge_proc(proc)
        proc.state = ProcState.RUNNABLE
        proc.preemptions += 1
        proc.cpu_index = None
        self.cpus[index] = None
        self._oncpu -= 1
        if not proc.stopped:
            self.runq.insert(proc)
            self._on_runq.add(proc.pid)

    def _setrunnable(self, proc: Process) -> None:
        """Make ``proc`` eligible for dispatch (unless stopped)."""
        proc.state = ProcState.RUNNABLE
        if proc.stopped:
            return  # parked until SIGCONT
        self._unpark(proc)
        if proc.slptime >= 1:
            proc.estcpu = wakeup_decay(
                self.cfg, proc.estcpu, proc.nice, self.loadavg.value, proc.slptime
            )
            proc.slptime = 0
        # Inlined user_priority (see _charge_proc).
        pri = (
            self._puser
            + proc.estcpu / self._estcpu_weight
            + self._nice_weight * proc.nice
        )
        if pri < 0:
            pri = 0
        elif pri > self._maxpri:
            pri = self._maxpri
        else:
            pri = int(pri)
        boost = proc.boost_priority
        if boost is not None and boost < pri:
            pri = boost
        proc.priority = pri
        if proc.pid not in self._on_runq:
            self.runq.insert(proc)
            self._on_runq.add(proc.pid)
        self._request_resched()

    def _inst_priority(self, proc: Process) -> int:
        """A running process's priority including in-flight CPU usage.

        Inlined charge_estcpu/user_priority (see _charge_proc).
        """
        inflight = self._clock._now - proc.run_start
        if inflight < 0:
            inflight = 0
        est = proc.estcpu + inflight / self._tick_us
        limit = self._estcpu_limit
        if est > limit:
            est = limit
        pri = self._puser + est / self._estcpu_weight + self._nice_weight * proc.nice
        if pri < 0:
            return 0
        if pri > self._maxpri:
            return self._maxpri
        return int(pri)

    def _worst_cpu(self) -> Optional[tuple[int, int]]:
        """(index, instantaneous priority) of the worst-priority running
        process, or None if some CPU is idle."""
        worst: Optional[tuple[int, int]] = None
        for i, proc in enumerate(self.cpus):
            if proc is None:
                return None
            pri = self._inst_priority(proc)
            if worst is None or pri > worst[1]:
                worst = (i, pri)
        return worst

    # ------------------------------------------------------------------
    # Deferred rescheduling
    # ------------------------------------------------------------------
    def _advance_guarded(self, proc: Process, on_cpu: bool) -> None:
        """Run :meth:`_advance` under the dispatch-depth guard.

        Rescheduling requested from inside the behavior callback is
        deferred until the guard unwinds, so kernel state is consistent
        when the context switch happens.  (Specialised for ``_advance``
        — its only caller — to avoid ``*args`` packing on every event.)
        """
        self._dispatch_depth += 1
        try:
            self._advance(proc, on_cpu)
        finally:
            self._dispatch_depth -= 1
        if self._dispatch_depth == 0 and self._resched_pending:
            self._resched_pending = False
            self._resched_now()

    def _request_resched(self) -> None:
        if self._dispatch_depth > 0:
            self._resched_pending = True
        else:
            self._resched_now()

    def _resched_now(self) -> None:
        cpus = self.cpus
        if len(cpus) == 1:
            # Uniprocessor fast path (the paper's testbed): the only CPU
            # is also the worst, so skip the _worst_cpu scan/tuple.
            proc = cpus[0]
            if proc is None:
                self._dispatch()
                return
            best = self.runq.best_priority()
            if best is not None and best < self._inst_priority(proc):
                self._preempt_cpu(0)
                self._dispatch()
            return
        worst = self._worst_cpu()
        if worst is None:  # at least one idle CPU
            self._dispatch()
            return
        best = self.runq.best_priority()
        if best is not None and best < worst[1]:
            self._preempt_cpu(worst[0])
            self._dispatch()

    # ------------------------------------------------------------------
    # Sleep / wakeup
    # ------------------------------------------------------------------
    def _sleep(
        self, proc: Process, channel: str, timeout: Optional[int], on_cpu: bool
    ) -> None:
        if on_cpu:
            if proc.cpu_index is None or self.cpus[proc.cpu_index] is not proc:
                raise InvalidProcessStateError(
                    f"pid {proc.pid} sleeping on-cpu but is not running"
                )
            proc.voluntary_switches += 1
            self.cpus[proc.cpu_index] = None
            self._oncpu -= 1
            proc.cpu_index = None
        if timeout == 0:
            # Zero-length sleep: yield the CPU but wake immediately.
            proc.state = ProcState.RUNNABLE
            self._setrunnable(proc)
            self._request_resched()
            return
        proc.state = ProcState.SLEEPING
        proc.wait_channel = channel
        self._park(proc)
        waiters = self._channels.get(channel)
        if waiters is None:
            self._channels[channel] = [proc]
        else:
            waiters.append(proc)
        if timeout is not None:
            # Timeout expiries are quantized to the callout resolution,
            # as tsleep/nanosleep/setitimer are on real kernels: the
            # callout fires at the first timer edge at or after the
            # nominal deadline.
            deadline = self._clock._now + timeout
            res = self._callout_res_us
            deadline = ((deadline + res - 1) // res) * res
            proc.sleep_handle = self._equeue_schedule(
                deadline, self._on_sleep_timeout, _EVPRI_SLEEP, proc, proc.tag_wake
            )
        self._request_resched()

    def _on_sleep_timeout(self, event) -> None:
        proc: Process = event.payload
        if proc.state is not ProcState.SLEEPING:
            return  # stale
        proc.sleep_handle = None
        waiters = self._channels.get(proc.wait_channel or "")
        if waiters and proc in waiters:
            waiters.remove(proc)
            if not waiters:
                self._channels.pop(proc.wait_channel or "", None)
        self._finish_sleep(proc)
        self._request_resched()

    def _finish_sleep(self, proc: Process) -> None:
        """Complete a sleep: ask the behavior what to do next.

        The process receives the tsleep wakeup-priority boost, so if it
        becomes runnable it preempts user-mode work immediately (as a
        process returning from a kernel sleep does on BSD).
        """
        proc.wait_channel = None
        proc.state = ProcState.RUNNABLE
        proc.boost_priority = self.cfg.sleep_priority
        self._advance_guarded(proc, False)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def _do_stop(self, proc: Process) -> None:
        if proc.stopped:
            return
        proc.stopped = True
        if proc.state is ProcState.RUNNING and proc.cpu_index is not None:
            # Target is on a CPU: take it off without requeueing.
            self._preempt_cpu(proc.cpu_index)
            self._request_resched()
        elif proc.pid in self._on_runq:
            self.runq.remove(proc)
            self._on_runq.discard(proc.pid)
        # SLEEPING: stays asleep; slptime keeps accruing while stopped.
        self._park(proc)

    def _do_cont(self, proc: Process) -> None:
        if not proc.stopped:
            return
        proc.stopped = False
        if proc.state is ProcState.RUNNABLE:
            self._setrunnable(proc)
        # SLEEPING: resumes waiting; nothing to do.

    def _do_exit(self, proc: Process, *, status: int) -> None:
        if proc.state is ProcState.ZOMBIE:
            return
        if proc.state is ProcState.RUNNING and proc.cpu_index is not None:
            if proc.burst_handle is not None:
                proc.burst_handle.cancel()
                proc.burst_handle = None
            self._charge_proc(proc)
            self.cpus[proc.cpu_index] = None
            self._oncpu -= 1
            proc.cpu_index = None
            self._request_resched()
        if proc.pid in self._on_runq:
            self.runq.remove(proc)
            self._on_runq.discard(proc.pid)
        if proc.sleep_handle is not None:
            proc.sleep_handle.cancel()
            proc.sleep_handle = None
        if proc.wait_channel is not None:
            waiters = self._channels.get(proc.wait_channel)
            if waiters and proc in waiters:
                waiters.remove(proc)
            proc.wait_channel = None
        self._unpark(proc)  # zombie keeps the eager-path slptime/estcpu
        proc.state = ProcState.ZOMBIE
        proc.exit_status = status
        self.exit_count += 1
        for hook in self._exit_hooks:
            hook(proc)
        self._request_resched()

    # ------------------------------------------------------------------
    # Periodic scheduler housekeeping
    # ------------------------------------------------------------------
    def _start_housekeeping(self) -> None:
        self.engine.after(
            self.cfg.schedclock_us,
            self._on_schedclock,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedclock",
        )
        self.engine.after(
            self.cfg.slice_us,
            self._on_roundrobin,
            priority=_EVPRI_HOUSEKEEPING,
            tag="roundrobin",
        )
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )
        self.engine.after(
            self.cfg.loadavg_interval_us,
            self._on_loadavg,
            priority=_EVPRI_HOUSEKEEPING,
            tag="loadavg",
        )

    def _on_schedclock(self, event) -> None:
        # Never rotate out a process that was dispatched this very
        # instant (e.g. a wakeup coinciding with the housekeeping grid):
        # on real hardware the wakeup and the clock tick resolve in one
        # dispatch decision, not two.
        now = self._clock._now
        for i, proc in enumerate(self.cpus):
            if proc is None or now <= proc.run_start:
                continue
            self._charge_proc(proc)
            best = self.runq.best_priority()
            if best is not None and best < proc.priority:
                self._preempt_cpu(i)
                self._dispatch()
        self.engine.after(
            self.cfg.schedclock_us,
            self._on_schedclock,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedclock",
        )

    def _on_roundrobin(self, event) -> None:
        now = self._clock._now
        for i, proc in enumerate(self.cpus):
            if proc is None or not self.runq or now <= proc.run_start:
                continue
            self._charge_proc(proc)
            best = self.runq.best_priority()
            # Rotate if the best waiter is in the same or a better
            # priority bucket (BSD compares run-queue indexes).
            if best is not None and (best >> 2) <= (proc.priority >> 2):
                self._preempt_cpu(i)
                self._dispatch()
        self.engine.after(
            self.cfg.slice_us,
            self._on_roundrobin,
            priority=_EVPRI_HOUSEKEEPING,
            tag="roundrobin",
        )

    def _on_schedcpu(self, event) -> None:
        self._charge_current()
        load = self.loadavg.value
        lazy = self._lazy
        self.perf_schedcpu_passes += 1
        if lazy:
            self._schedcpu_epoch += 1
            self._load_history.append(load)
        if lazy and self._oncpu == 0 and not self.runq:
            # Every non-zombie process is parked (sleeping/stopped), so
            # the pass would only age sleepers — deferred to wakeup.
            self.perf_schedcpu_idle_skips += 1
        else:
            for proc in self.procs.values():
                if proc.state is ProcState.ZOMBIE:
                    continue
                if proc.state is ProcState.SLEEPING or proc.stopped:
                    if lazy:
                        # Deferred: slptime aging and the single
                        # first-pass decay replay at _materialize_slptime.
                        continue
                    proc.slptime += 1
                    if proc.slptime > 1:
                        continue  # updatepri handles long sleepers on wakeup
                new_est = decay_estcpu(self.cfg, proc.estcpu, proc.nice, load)
                if new_est != proc.estcpu:
                    proc.estcpu = new_est
                    new_pri = user_priority(self.cfg, proc.estcpu, proc.nice)
                    if proc.boost_priority is not None:
                        new_pri = min(new_pri, proc.boost_priority)
                    if new_pri != proc.priority:
                        if proc.pid in self._on_runq:
                            self.runq.remove(proc)
                            proc.priority = new_pri
                            self.runq.insert(proc)
                        else:
                            proc.priority = new_pri
        self._request_resched()
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )

    def _on_loadavg(self, event) -> None:
        self.loadavg.sample(self.runnable_count())
        self.engine.after(
            self.cfg.loadavg_interval_us,
            self._on_loadavg,
            priority=_EVPRI_HOUSEKEEPING,
            tag="loadavg",
        )
