"""One-minute load average (EWMA of the runnable-process count)."""

from __future__ import annotations

import math

from repro.kernel.kconfig import KernelConfig


class LoadAverage:
    """Exponentially-weighted moving average of runnable process count.

    Mirrors the kernel's ``loadav()``: sampled every few seconds, blended
    with coefficient ``exp(-interval/tau)`` for a one-minute horizon.
    """

    def __init__(self, cfg: KernelConfig) -> None:
        self._coeff = math.exp(-cfg.loadavg_interval_us / cfg.loadavg_tau_us)
        self._value = 0.0

    @property
    def value(self) -> float:
        """Current smoothed load average."""
        return self._value

    def sample(self, runnable_count: int) -> float:
        """Fold one sample of the instantaneous runnable count."""
        if runnable_count < 0:
            raise ValueError("runnable_count must be >= 0")
        self._value = self._coeff * self._value + (1.0 - self._coeff) * runnable_count
        return self._value
