"""Signal numbers understood by the simulated kernel.

Only the job-control signals that ALPS uses (plus SIGKILL for cleanup)
are modelled.  Numeric values match POSIX for familiarity.
"""

from __future__ import annotations

#: Terminate the process immediately.
SIGKILL: int = 9
#: Suspend the process (cannot be caught or ignored).
SIGSTOP: int = 17
#: Resume a stopped process.
SIGCONT: int = 19

ALL_SIGNALS = frozenset({SIGKILL, SIGSTOP, SIGCONT})


def signal_name(signo: int) -> str:
    """Human-readable name for a modelled signal number."""
    return {SIGKILL: "SIGKILL", SIGSTOP: "SIGSTOP", SIGCONT: "SIGCONT"}.get(
        signo, f"SIG#{signo}"
    )
