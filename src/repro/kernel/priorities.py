"""BSD decay-usage priority arithmetic.

Implements the classic 4.4BSD formulas (McKusick et al., ch. 4):

* ``p_usrpri = PUSER + p_estcpu / 4 + 2 * p_nice`` (clamped to MAXPRI)
* once per second: ``p_estcpu = (2*load / (2*load + 1)) * p_estcpu + p_nice``
* on wakeup after sleeping >= 1 s: the decay filter is applied once per
  second slept, approximating the usage the process would have shed.
"""

from __future__ import annotations

from repro.kernel.kconfig import KernelConfig


def user_priority(cfg: KernelConfig, estcpu: float, nice: int) -> int:
    """Compute ``p_usrpri`` from estcpu and nice, clamped to the user range."""
    pri = cfg.puser + estcpu / cfg.estcpu_weight + cfg.nice_weight * nice
    if pri < 0:
        return 0
    if pri > cfg.maxpri:
        return cfg.maxpri
    return int(pri)


def decay_factor(load: float) -> float:
    """The per-second decay filter coefficient ``2L / (2L + 1)``.

    Under higher load the filter forgets more slowly, so accumulated
    usage penalises a process for longer — the property that ultimately
    erodes the ALPS process's scheduling advantage at scale.
    """
    if load < 0:
        raise ValueError(f"load must be >= 0, got {load}")
    return (2.0 * load) / (2.0 * load + 1.0)


def decay_estcpu(cfg: KernelConfig, estcpu: float, nice: int, load: float) -> float:
    """Apply one second's decay to ``estcpu`` (the ``schedcpu`` step)."""
    new = decay_factor(load) * estcpu + nice
    if new < 0.0:
        return 0.0
    return min(new, cfg.estcpu_limit)


def wakeup_decay(cfg: KernelConfig, estcpu: float, nice: int, load: float, slept_seconds: int) -> float:
    """Decay ``estcpu`` for a process that slept ``slept_seconds`` seconds.

    4.4BSD applies the per-second filter once for each second of sleep
    (``updatepri``), so long sleepers return at a much better priority.
    """
    new = estcpu
    for _ in range(min(slept_seconds, 64)):  # filter converges; cap the loop
        new = decay_factor(load) * new + nice
    if new < 0.0:
        return 0.0
    return min(new, cfg.estcpu_limit)


def charge_estcpu(cfg: KernelConfig, estcpu: float, ran_us: int) -> float:
    """Charge estcpu for ``ran_us`` microseconds of CPU consumption.

    BSD increments estcpu by one per statclock tick while running; we
    charge the equivalent amount analytically when the run interval ends
    (fractional ticks included, so short runs are not free).
    """
    new = estcpu + ran_us / cfg.tick_us
    return min(new, cfg.estcpu_limit)
