"""Struct-of-arrays batch-stepped kernel backend.

:class:`BatchKernel` is the ``backend="batch"`` implementation selected
through :func:`repro.kernel.make_kernel`.  It keeps the event-driven
skeleton of :class:`~repro.kernel.kernel.Kernel` (so every event fires
at the same instant, with the same tag, in the same order — the
byte-identity contract of tests/perf/test_backend_matrix.py) and
replaces the per-process Python bookkeeping with batch passes over
struct-of-arrays state:

* **Vectorized one-second decay.**  The ``schedcpu`` pass gathers
  ``estcpu``/``nice``/``slptime`` into numpy arrays, applies the BSD
  decay filter and the priority formula to the whole process table at
  once, and scatters back only what changed.  The arithmetic is
  elementwise float64 — operation-for-operation the same IEEE ops the
  eager scalar loop performs — so the results are bit-identical, not
  merely close (pinned by tests/kernel/test_batch_properties.py).
* **Batched measurement.**  :meth:`BatchKernel.measure_many` answers an
  ALPS agent's whole per-quantum read set (getrusage + blocked +
  stopped for every due pid) in one call over the process table,
  instead of three kapi round-trips per pid.  The agent uses it only
  when the kapi advertises it (:class:`BatchKernelAPI`), so fault
  wrappers — which must see every individual read to keep their RNG
  draw order — transparently fall back to the classic loop.
* **Bitmap run-queue selection.**  :class:`ArrayRunQueue` is a drop-in
  replacement for :class:`~repro.kernel.runqueue.RunQueue` backed by
  flat per-bucket arrays with head offsets and a single occupancy
  bitmap word; pick order is pinned equal to the linked-list queue by
  Hypothesis property tests.
* **Fused same-instant stepping.**  Construction flips the engine into
  fused mode (:meth:`repro.sim.engine.Engine.enable_fused_stepping`):
  all events sharing a timestamp are drained in one pass with a single
  clock write, with an order-preservation guard that falls back to the
  heap whenever a callback schedules or cancels work at the current
  instant.

The batch backend runs the **eager** (strict-equivalent) bookkeeping:
lazy sleeper decay is disabled because the batch pass makes the eager
sweep cheap, and because equivalence against ``strict`` is the
simplest possible contract.  Since ``strict`` and ``optimized`` are
already pinned byte-identical, all three backends agree.

See docs/performance.md ("The batch backend") for the state layout and
the fallback story.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import KernelError
from repro.kernel.kapi import KernelAPI
from repro.kernel.kconfig import DEFAULT_CONFIG, KernelConfig
from repro.kernel.kernel import _EVPRI_HOUSEKEEPING, Kernel
from repro.kernel.priorities import decay_factor
from repro.kernel.process import Process, ProcState
from repro.kernel.runqueue import NQS, PPQ
from repro.sim.engine import Engine

#: Numeric codes for :class:`ProcState` in struct-of-arrays form.
STATE_CODES: dict[ProcState, int] = {
    ProcState.RUNNABLE: 0,
    ProcState.RUNNING: 1,
    ProcState.SLEEPING: 2,
    ProcState.ZOMBIE: 3,
}
_CODE_TO_STATE = {code: state for state, code in STATE_CODES.items()}

_ZOMBIE = ProcState.ZOMBIE
_RUNNING = ProcState.RUNNING
_SLEEPING = ProcState.SLEEPING

#: Sentinel for "no boost" / "no deadline" in integer array columns.
NO_VALUE = -1


class SoaState:
    """Struct-of-arrays snapshot of per-process scheduler state.

    One row per process, in a stable order chosen at gather time (PCB
    table order, i.e. pid insertion order).  The columns cover exactly
    the state the scheduler reads or writes in its batch passes:

    ``pids``, ``estcpu``, ``priority``, ``nice``, ``slptime``,
    ``cpu_time``, ``run_start``, ``pending_burst``, ``state`` (codes
    per :data:`STATE_CODES`), ``stopped``, ``has_channel`` (sleeping on
    a wait channel), ``boost`` (:data:`NO_VALUE` when absent),
    ``on_runq`` (run-queue membership mask), and ``deadline`` (pending
    burst-completion or sleep-timeout firing time, :data:`NO_VALUE`
    when none is armed).

    :meth:`gather` and :meth:`scatter` are exact inverses over the
    scheduler-owned fields — the round-trip property test in
    tests/kernel/test_batch_properties.py pins ``gather → scatter`` as
    the identity.
    """

    __slots__ = (
        "pids",
        "estcpu",
        "priority",
        "nice",
        "slptime",
        "cpu_time",
        "run_start",
        "pending_burst",
        "state",
        "stopped",
        "has_channel",
        "boost",
        "on_runq",
        "deadline",
        "slot_of",
    )

    def __init__(self, n: int) -> None:
        self.pids = np.zeros(n, dtype=np.int64)
        self.estcpu = np.zeros(n, dtype=np.float64)
        self.priority = np.zeros(n, dtype=np.int64)
        self.nice = np.zeros(n, dtype=np.int64)
        self.slptime = np.zeros(n, dtype=np.int64)
        self.cpu_time = np.zeros(n, dtype=np.int64)
        self.run_start = np.zeros(n, dtype=np.int64)
        self.pending_burst = np.zeros(n, dtype=np.int64)
        self.state = np.zeros(n, dtype=np.int64)
        self.stopped = np.zeros(n, dtype=bool)
        self.has_channel = np.zeros(n, dtype=bool)
        self.boost = np.full(n, NO_VALUE, dtype=np.int64)
        self.on_runq = np.zeros(n, dtype=bool)
        self.deadline = np.full(n, NO_VALUE, dtype=np.int64)
        #: pid -> row index (the scatter side of the pid mapping).
        self.slot_of: dict[int, int] = {}

    def __len__(self) -> int:
        return len(self.pids)

    @classmethod
    def gather(
        cls,
        procs: Sequence[Process],
        *,
        on_runq: Optional[set[int]] = None,
    ) -> "SoaState":
        """Build arrays from process control blocks (one pass)."""
        soa = cls(len(procs))
        slot_of = soa.slot_of
        runq_pids = on_runq if on_runq is not None else ()
        for i, proc in enumerate(procs):
            slot_of[proc.pid] = i
            soa.pids[i] = proc.pid
            soa.estcpu[i] = proc.estcpu
            soa.priority[i] = proc.priority
            soa.nice[i] = proc.nice
            soa.slptime[i] = proc.slptime
            soa.cpu_time[i] = proc.cpu_time
            soa.run_start[i] = proc.run_start
            soa.pending_burst[i] = proc.pending_burst_us
            soa.state[i] = STATE_CODES[proc.state]
            soa.stopped[i] = proc.stopped
            soa.has_channel[i] = proc.wait_channel is not None
            if proc.boost_priority is not None:
                soa.boost[i] = proc.boost_priority
            soa.on_runq[i] = proc.pid in runq_pids
            handle = proc.burst_handle or proc.sleep_handle
            if handle is not None and handle.active:
                soa.deadline[i] = handle.time
        return soa

    def scatter(self, procs: Sequence[Process]) -> None:
        """Write the scheduler-owned columns back onto the PCBs.

        Only plain value fields are written (state enums and booleans
        included); event handles and wait-channel strings are kernel
        structure, not row state, and are left untouched.
        """
        if len(procs) != len(self.pids):
            raise KernelError(
                f"scatter row mismatch: {len(procs)} procs vs {len(self.pids)} rows"
            )
        for i, proc in enumerate(procs):
            if proc.pid != int(self.pids[i]):
                raise KernelError(
                    f"scatter pid mismatch at row {i}: "
                    f"{proc.pid} vs {int(self.pids[i])}"
                )
            proc.estcpu = float(self.estcpu[i])
            proc.priority = int(self.priority[i])
            proc.nice = int(self.nice[i])
            proc.slptime = int(self.slptime[i])
            proc.cpu_time = int(self.cpu_time[i])
            proc.run_start = int(self.run_start[i])
            proc.pending_burst_us = int(self.pending_burst[i])
            proc.state = _CODE_TO_STATE[int(self.state[i])]
            proc.stopped = bool(self.stopped[i])
            boost = int(self.boost[i])
            proc.boost_priority = None if boost == NO_VALUE else boost


def batched_decay(
    estcpu: np.ndarray,
    nice: np.ndarray,
    load: float,
    limit: float,
) -> np.ndarray:
    """One second of BSD decay over an estcpu vector.

    Elementwise-identical to
    :func:`repro.kernel.priorities.decay_estcpu`: ``f*e + nice`` as two
    float64 ops (multiply then add, never fused), then the ``< 0 → 0``
    and ``min(·, limit)`` clamps.  The property tests compare this
    against the scalar function value-for-value with ``==``, not with a
    tolerance.
    """
    factor = decay_factor(load)
    new = factor * estcpu + nice
    return np.minimum(np.where(new < 0.0, 0.0, new), limit)


def batched_user_priority(
    cfg: KernelConfig, estcpu: np.ndarray, nice: np.ndarray
) -> np.ndarray:
    """The BSD priority formula over vectors, clamped like the scalar.

    Matches :func:`repro.kernel.priorities.user_priority` exactly:
    ``puser + estcpu/weight + nice_weight*nice`` evaluated left to
    right in float64, negative lanes clamped to 0, overlarge lanes to
    ``maxpri``, the rest truncated toward zero as ``int()`` does.
    """
    pri = cfg.puser + estcpu / cfg.estcpu_weight + cfg.nice_weight * nice
    truncated = pri.astype(np.int64)  # toward zero, like int()
    return np.where(pri < 0, 0, np.where(pri > cfg.maxpri, cfg.maxpri, truncated))


class ArrayRunQueue:
    """Bitmap-selected, array-backed run queues.

    Semantically identical to :class:`~repro.kernel.runqueue.RunQueue`
    (32 FIFO buckets of 4 priority levels, lowest-occupied-bucket
    pick), but each bucket is a flat list with a head offset instead of
    a deque: pops advance the head without shifting storage, and the
    bucket compacts only when the dead prefix outgrows the live tail.
    The single-word occupancy bitmap makes the pick branch-free:
    ``(bits & -bits).bit_length() - 1`` is the best bucket.

    Pick-order equivalence with the linked-list queue under arbitrary
    operation scripts is pinned by Hypothesis tests
    (tests/kernel/test_batch_properties.py).
    """

    __slots__ = ("_buckets", "_heads", "_nonempty", "_count")

    def __init__(self) -> None:
        self._buckets: list[list[Process]] = [[] for _ in range(NQS)]
        self._heads: list[int] = [0] * NQS
        self._nonempty = 0
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @staticmethod
    def _qindex(priority: int) -> int:
        if priority < 0 or priority >= NQS * PPQ:
            raise KernelError(f"priority {priority} out of range 0..{NQS * PPQ - 1}")
        return priority >> 2

    def insert(self, proc: Process) -> None:
        """Append ``proc`` to the tail of its priority bucket."""
        priority = proc.priority
        if priority < 0 or priority >= NQS * PPQ:
            raise KernelError(f"priority {priority} out of range 0..{NQS * PPQ - 1}")
        qi = priority >> 2
        self._buckets[qi].append(proc)
        self._nonempty |= 1 << qi
        self._count += 1

    def insert_head(self, proc: Process) -> None:
        """Prepend ``proc`` (used when a preempted process keeps its turn)."""
        qi = self._qindex(proc.priority)
        head = self._heads[qi]
        if head > 0:
            self._heads[qi] = head - 1
            self._buckets[qi][head - 1] = proc
        else:
            self._buckets[qi].insert(0, proc)
        self._nonempty |= 1 << qi
        self._count += 1

    def _settle(self, qi: int) -> None:
        """Drop an emptied bucket's storage and bitmap bit."""
        bucket = self._buckets[qi]
        head = self._heads[qi]
        if head >= len(bucket):
            bucket.clear()
            self._heads[qi] = 0
            self._nonempty &= ~(1 << qi)

    def remove(self, proc: Process) -> None:
        """Remove ``proc`` from whichever bucket holds it."""
        qi = self._qindex(proc.priority)
        if self._remove_from(qi, proc):
            return
        # Priority may have been recomputed since insertion; fall back
        # to a full scan, like the linked-list queue.
        for other_qi in range(NQS):
            if other_qi != qi and self._remove_from(other_qi, proc):
                return
        raise KernelError(f"pid {proc.pid} not on any run queue")

    def _remove_from(self, qi: int, proc: Process) -> bool:
        bucket = self._buckets[qi]
        head = self._heads[qi]
        for i in range(head, len(bucket)):
            if bucket[i] is proc:
                del bucket[i]
                self._count -= 1
                self._settle(qi)
                return True
        return False

    def best_priority(self) -> Optional[int]:
        """Priority of the head of the best non-empty bucket, or None."""
        bits = self._nonempty
        if not bits:
            return None
        qi = (bits & -bits).bit_length() - 1
        return self._buckets[qi][self._heads[qi]].priority

    def pop_best(self) -> Optional[Process]:
        """Remove and return the head of the lowest non-empty bucket."""
        bits = self._nonempty
        if not bits:
            return None
        qi = (bits & -bits).bit_length() - 1
        bucket = self._buckets[qi]
        head = self._heads[qi]
        proc = bucket[head]
        bucket[head] = None  # type: ignore[call-overload]  # drop the reference
        head += 1
        self._count -= 1
        if head >= len(bucket):
            bucket.clear()
            self._heads[qi] = 0
            self._nonempty &= ~(1 << qi)
        elif head > 32 and head * 2 > len(bucket):
            # Compact: the dead prefix outweighs the live tail.
            del bucket[:head]
            self._heads[qi] = 0
        else:
            self._heads[qi] = head
        return proc

    def __contains__(self, proc: Process) -> bool:
        for qi in range(NQS):
            bucket = self._buckets[qi]
            for i in range(self._heads[qi], len(bucket)):
                if bucket[i] is proc:
                    return True
        return False


class BatchKernelAPI(KernelAPI):
    """Kernel API surface that additionally offers batched reads.

    The agent feature-tests ``measure_many`` with ``getattr``: only
    this class (and deliberate test fakes) expose it.  Fault-injection
    wrappers (:class:`repro.faults.injector.FaultyKernelAPI`) do *not*
    forward it, so a faulted agent always walks the classic per-pid
    loop and the injector sees every read in the original order.
    """

    __slots__ = ()

    def measure_many(
        self, pids: Sequence[int]
    ) -> list[tuple[int, Optional[int], bool, bool]]:
        """Batched READ-PROGRESS: ``(pid, usage, blocked, stopped)`` rows.

        ``usage`` is None when the pid is dead (the per-pid call would
        have raised :class:`~repro.errors.NoSuchProcessError`); blocked
        and stopped are then False.  Row order follows ``pids``.

        Inlined copy of :meth:`BatchKernel.measure_many` over the slot
        references, per the facade's inlining discipline (one call per
        quantum instead of one per pid is the point of the batch read —
        a delegation would give half the win back).  Must stay
        behaviorally identical to the kernel-side original.
        """
        procs = self._procs
        now = self._clock._now
        zombie = _ZOMBIE
        running = _RUNNING
        sleeping = _SLEEPING
        rows: list[tuple[int, Optional[int], bool, bool]] = []
        append = rows.append
        for pid in pids:
            proc = procs.get(pid)
            if proc is None or proc.state is zombie:
                append((pid, None, False, False))
                continue
            state = proc.state
            cpu = proc.cpu_time
            if state is running:
                run_start = proc.run_start
                if now > run_start:
                    cpu += now - run_start
            append(
                (
                    pid,
                    cpu,
                    state is sleeping and proc.wait_channel is not None,
                    proc.stopped,
                )
            )
        self._kernel.perf_batch_rows += len(rows)
        return rows


class BatchKernel(Kernel):
    """Struct-of-arrays batch-stepped kernel (``backend="batch"``)."""

    def __init__(
        self,
        engine: Engine,
        config: KernelConfig = DEFAULT_CONFIG,
    ) -> None:
        super().__init__(engine, config)
        # Eager (strict-equivalent) bookkeeping: the vectorized pass
        # makes the per-second sweep cheap, and eager state means the
        # arrays never hold lazily-stale values.
        self._lazy = False
        self.runq = ArrayRunQueue()  # type: ignore[assignment]  # same surface
        self.kapi = BatchKernelAPI(self)
        #: Batch passes performed (perf counter; see perf_snapshot).
        self.perf_batch_passes = 0
        #: Rows answered by measure_many (perf counter).
        self.perf_batch_rows = 0
        engine.enable_fused_stepping()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def soa_snapshot(self) -> SoaState:
        """Gather the full PCB table into struct-of-arrays form."""
        return SoaState.gather(list(self.procs.values()), on_runq=self._on_runq)

    def perf_snapshot(self) -> dict[str, int]:
        snap = super().perf_snapshot()
        snap["kernel.batch_passes"] = self.perf_batch_passes
        snap["kernel.batch_rows"] = self.perf_batch_rows
        return snap

    # ------------------------------------------------------------------
    # Batched measurement
    # ------------------------------------------------------------------
    def measure_many(
        self, pids: Sequence[int]
    ) -> list[tuple[int, Optional[int], bool, bool]]:
        """One-pass getrusage + blocked + stopped for many pids.

        Must stay behaviorally identical to the per-pid kapi calls
        (``getrusage`` / ``is_blocked`` / ``is_stopped``): same usage
        arithmetic including the in-flight run interval, dead pids
        reported as ``usage=None`` instead of raising.
        """
        procs = self.procs
        now = self._clock._now
        zombie = ProcState.ZOMBIE
        running = ProcState.RUNNING
        sleeping = ProcState.SLEEPING
        rows: list[tuple[int, Optional[int], bool, bool]] = []
        append = rows.append
        for pid in pids:
            proc = procs.get(pid)
            if proc is None or proc.state is zombie:
                append((pid, None, False, False))
                continue
            state = proc.state
            cpu = proc.cpu_time
            if state is running:
                run_start = proc.run_start
                if now > run_start:
                    cpu += now - run_start
            append(
                (
                    pid,
                    cpu,
                    state is sleeping and proc.wait_channel is not None,
                    proc.stopped,
                )
            )
        self.perf_batch_rows += len(rows)
        return rows

    # ------------------------------------------------------------------
    # Vectorized per-second decay (the schedcpu batch pass)
    # ------------------------------------------------------------------
    def _on_schedcpu(self, event) -> None:
        """Eager schedcpu, batched: decay every live process at once.

        Mirrors the strict scalar loop in
        :meth:`repro.kernel.kernel.Kernel._on_schedcpu` exactly:

        * running processes are charged first (scalar — there are at
          most ``ncpus`` of them);
        * sleepers/stopped processes age ``slptime``; those having
          slept more than one full pass are left to ``updatepri`` on
          wakeup;
        * everyone else gets one application of the decay filter and a
          priority recomputation, with wakeup boosts honored and
          run-queue requeues performed in table order.
        """
        self._charge_current()
        load = self.loadavg.value
        self.perf_schedcpu_passes += 1
        self.perf_batch_passes += 1
        procs = self.procs
        zombie = ProcState.ZOMBIE
        sleeping = ProcState.SLEEPING
        # Membership loop (state checks + sleeper aging — the only part
        # with side effects), then comprehension gathers over the
        # surviving targets: LIST_APPEND comprehensions beat bound
        # ``append`` calls, and this pass runs once per simulated second
        # over every live process.
        targets: list[Process] = []
        append = targets.append
        for proc in procs.values():
            if proc.state is zombie:
                continue
            if proc.state is sleeping or proc.stopped:
                proc.slptime += 1
                if proc.slptime > 1:
                    continue  # updatepri handles long sleepers on wakeup
            append(proc)
        if targets:
            est = np.array([p.estcpu for p in targets], dtype=np.float64)
            nice = np.array([p.nice for p in targets], dtype=np.int64)
            new_est = batched_decay(est, nice, load, self._estcpu_limit)
            new_pri = batched_user_priority(self.cfg, new_est, nice)
            boost = np.array(
                [
                    NO_VALUE if p.boost_priority is None else p.boost_priority
                    for p in targets
                ],
                dtype=np.int64,
            )
            has_boost = boost != NO_VALUE
            if has_boost.any():
                new_pri = np.where(
                    has_boost, np.minimum(new_pri, boost), new_pri
                )
            changed = new_est != est
            if changed.any():
                old_pri = np.array(
                    [p.priority for p in targets], dtype=np.int64
                )
                pri_changed = (changed & (new_pri != old_pri)).tolist()
                on_runq = self._on_runq
                runq = self.runq
                new_est_items = new_est.tolist()
                new_pri_items = new_pri.tolist()
                for i in np.nonzero(changed)[0].tolist():
                    proc = targets[i]
                    proc.estcpu = new_est_items[i]
                    if pri_changed[i]:
                        if proc.pid in on_runq:
                            runq.remove(proc)
                            proc.priority = new_pri_items[i]
                            runq.insert(proc)
                        else:
                            proc.priority = new_pri_items[i]
        self._request_resched()
        self.engine.after(
            self.cfg.schedcpu_us,
            self._on_schedcpu,
            priority=_EVPRI_HOUSEKEEPING,
            tag="schedcpu",
        )
