"""Public API surface of the top-level package."""

import repro


def test_version():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"missing export {name}"


def test_quickstart_path_works():
    """The README quickstart, condensed."""
    from repro import AlpsConfig, build_controlled_workload, ms, sec
    from repro.metrics.accuracy import per_subject_fractions

    cw = build_controlled_workload([1, 2], AlpsConfig(quantum_us=ms(10)))
    cw.engine.run_until(sec(5))
    fr = per_subject_fractions(cw.agent.cycle_log, skip=2)
    assert abs(fr[1] - 2 / 3) < 0.05


def test_subpackages_importable():
    import repro.alps
    import repro.analysis
    import repro.baselines
    import repro.cli
    import repro.experiments
    import repro.hostos
    import repro.kernel
    import repro.metrics
    import repro.sim
    import repro.webserver
    import repro.workloads
