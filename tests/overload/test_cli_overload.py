"""The overload CLI surfaces: ``repro run overload``, ``repro chaos --suite``."""

from __future__ import annotations

import pytest

from repro.cli.main import EXPERIMENTS, build_parser, main

#: The real knee (N=40/80) belongs to the perf-gate benchmark; the CLI
#: tests shrink the matrix so the plumbing check stays in tier-1 time.
TINY = {"KNEE_N": 6, "PAST_KNEE_N": 12}


@pytest.fixture
def tiny_knee(monkeypatch):
    from repro.experiments import overload as mod

    for name, value in TINY.items():
        monkeypatch.setattr(mod, name, value)


def test_overload_is_a_registered_experiment():
    assert "overload" in EXPERIMENTS


def test_run_overload_prints_table_and_ratios(tiny_knee, capsys):
    assert main(["run", "overload", "--no-cache"]) == 0
    out = capsys.readouterr().out
    assert "bounded degradation past the knee" in out
    assert "ladder" in out and "control" in out
    assert out.count("ratio") == 2  # one comparison line per size


def test_run_overload_writes_csv(tiny_knee, tmp_path, capsys):
    csv = tmp_path / "overload.csv"
    assert main(["run", "overload", "--no-cache", "--csv", str(csv)]) == 0
    header = csv.read_text().splitlines()[0]
    assert "ladder" in header
    assert "max_degraded_slip_quanta" in header


def test_chaos_suite_overload_passes_and_shows_kinds(capsys):
    rc = main(
        ["chaos", "run", "--suite", "overload", "--seed", "0",
         "--rates", "0.05", "--episodes", "3", "--cycles", "30",
         "--no-cache"]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "verdict=PASS" in captured.out
    assert "kind" in captured.out
    assert "storm" in captured.out


def test_chaos_suite_defaults_to_resilience():
    args = build_parser().parse_args(["chaos", "run"])
    assert args.suite == "resilience"
    assert args.shares is None


def test_chaos_rejects_unknown_suite():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["chaos", "run", "--suite", "mystery"])
