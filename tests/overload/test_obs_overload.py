"""Overload state on the observability surfaces (top frame, metrics)."""

from __future__ import annotations

from repro.alps.config import AlpsConfig
from repro.obs import Observer
from repro.obs.bridge import collect_workload
from repro.obs.top import render_top_frame
from repro.overload import OverloadGuard
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def run_guarded(seconds=1.0):
    cw = build_controlled_workload(
        [1, 2, 4],
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        observer=Observer(),
        overload=OverloadGuard(),
    )
    cw.engine.run_until(sec(seconds))
    return cw


def test_top_frame_shows_overload_status_line():
    cw = run_guarded()
    frame = render_top_frame(cw)
    line = next(l for l in frame.splitlines() if l.startswith("overload:"))
    assert "rung=0(normal)" in line
    assert "queue=0" in line
    assert "stretch=x1" in line


def test_top_frame_omits_the_line_without_a_guard():
    cw = build_controlled_workload(
        [1, 2], AlpsConfig(quantum_us=ms(10)), seed=0, observer=Observer()
    )
    cw.engine.run_until(sec(0.5))
    assert "overload:" not in render_top_frame(cw)


def test_bridge_exports_overload_gauges():
    cw = run_guarded()
    reg = collect_workload(cw).metrics
    assert reg.get("alps_overload_rung").value == 0
    assert reg.get("alps_overload_stretch_factor").value == 1
    assert reg.get("alps_timer_slip_quanta").value >= 0.0
    assert reg.get("alps_admission_queue_depth").value == 0
    assert reg.get("alps_overload_shed_outstanding").value == 0
    assert reg.get("alps_overload_engagements").value == 0


def test_bridge_skips_overload_gauges_without_a_guard():
    cw = build_controlled_workload(
        [1, 2], AlpsConfig(quantum_us=ms(10)), seed=0, observer=Observer()
    )
    cw.engine.run_until(sec(0.5))
    reg = collect_workload(cw).metrics
    assert reg.get("alps_overload_rung") is None
