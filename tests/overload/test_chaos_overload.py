"""The chaos overload suite: episode flavours, census, invariants."""

from __future__ import annotations

import pytest

from repro.resilience.chaos import (
    OVERLOAD_FAIRNESS_BASE_PCT,
    OVERLOAD_FAIRNESS_SLOPE_PCT,
    OVERLOAD_KINDS,
    OVERLOAD_SHARES,
    overload_episode_plan,
    overload_guard_config,
    run_chaos_campaign,
    run_chaos_episode,
)
from repro.units import sec

# The campaign's suite defaults, spelled out: direct episode runs get
# the resilience-suite fairness bound unless told otherwise, and the
# horizon must leave room for a storm to clear and the release dwell
# to be served (cycles=60 is the campaign default).
FAST = dict(
    shares=OVERLOAD_SHARES,
    cycles=60,
    fairness_base_pct=OVERLOAD_FAIRNESS_BASE_PCT,
    fairness_slope_pct=OVERLOAD_FAIRNESS_SLOPE_PCT,
)


def test_overload_plan_flavours():
    horizon = sec(10)
    storm = overload_episode_plan("storm", 0.05, seed=0, horizon_us=horizon)
    assert storm.arrival_storms and not storm.agent_nice_bombs
    assert storm.arrival_storms[0].lifetime_us > 0  # load must clear
    bomb = overload_episode_plan("nicebomb", 0.05, seed=0, horizon_us=horizon)
    assert bomb.agent_nice_bombs and not bomb.arrival_storms
    herd = overload_episode_plan("thousand", 0.05, seed=0, horizon_us=horizon)
    assert herd.arrival_storms[0].count == 1000
    with pytest.raises(ValueError):
        overload_episode_plan("flood", 0.05, seed=0, horizon_us=horizon)


def test_overload_guard_config_scales_with_flavour():
    storm = overload_guard_config("storm")
    herd = overload_guard_config("thousand")
    assert storm.capacity is None
    assert herd.capacity is not None  # the herd claim is queue bounding
    assert herd.max_degraded_slip_quanta > storm.max_degraded_slip_quanta


def test_storm_episode_sheds_and_recovers():
    ep = run_chaos_episode(0, 0.05, suite="overload", overload_kind="storm", **FAST)
    assert ep.suite == "overload"
    assert ep.overload_kind == "storm"
    assert ep.ok, [r for r in ep.invariants if not r.ok]
    assert ep.engagements >= 1
    assert ep.sheds >= 1
    names = [r.name for r in ep.invariants]
    assert "bounded_timer_slip" in names
    assert "degrade_recover_roundtrip" in names


def test_thousand_episode_bounds_the_queue():
    ep = run_chaos_episode(
        2, 0.05, suite="overload", overload_kind="thousand", **FAST
    )
    assert ep.ok, [r for r in ep.invariants if not r.ok]
    # 1000 arrivals against a capacity-8 group: nearly all must queue
    # rather than inflate the measurement set.
    assert ep.admission_queued_peak > 900


def test_nicebomb_episode_skips_the_slip_check():
    ep = run_chaos_episode(
        1, 0.05, suite="overload", overload_kind="nicebomb", **FAST
    )
    slip = next(r for r in ep.invariants if r.name == "bounded_timer_slip")
    assert slip.ok and "n/a" in slip.detail
    assert ep.ok, [r for r in ep.invariants if not r.ok]


def test_overload_campaign_cycles_kinds_and_renders_columns():
    report = run_chaos_campaign(
        0, suite="overload", episodes=3, rates=(0.05,), cycles=30,
    )
    assert report.ok, report.format_table()
    kinds = [ep.overload_kind for ep in report.episodes]
    assert kinds == list(OVERLOAD_KINDS)
    table = report.format_table()
    assert "kind" in table and "shed" in table


def test_resilience_campaign_table_is_unchanged_by_the_new_columns():
    report = run_chaos_campaign(0, episodes=2, rates=(0.05,), cycles=15,
                                warmup_cycles=3)
    table = report.format_table()
    assert "kind" not in table.splitlines()[1]


def test_unknown_suite_rejected():
    with pytest.raises(ValueError):
        run_chaos_episode(0, 0.05, suite="mystery")
    with pytest.raises(ValueError):
        run_chaos_campaign(0, suite="mystery")
