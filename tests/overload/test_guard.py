"""OverloadGuard: the glue between slip, ladder, and shed bookkeeping."""

from __future__ import annotations

import pytest

from repro.overload import OverloadConfig, OverloadGuard, Rung

Q = 10_000  # 10 ms quantum


def hot_guard(**kwargs) -> OverloadGuard:
    defaults = dict(engage_dwell=1, release_dwell=1)
    defaults.update(kwargs)
    return OverloadGuard(OverloadConfig(**defaults))


def test_normal_guard_is_inert():
    guard = OverloadGuard()
    assert guard.rung is Rung.NORMAL
    assert not guard.degraded
    assert guard.stretch_factor == 1
    assert guard.postpone_boost == 1
    assert not guard.admission_paused
    assert guard.fully_recovered


def test_observe_wake_climbs_and_tracks_degraded_slip():
    guard = hot_guard()
    assert guard.observe_wake(5 * Q, Q) == 1
    assert guard.rung is Rung.STRETCH
    # Degraded-wake census starts once the ladder is off NORMAL.
    guard.observe_wake(7 * Q, Q)
    assert guard.degraded_wakes == 1
    assert guard.max_degraded_slip_quanta == pytest.approx(7.0)
    assert guard.slip_bound_ok
    guard.observe_wake(int(40.5 * Q), Q)
    assert not guard.slip_bound_ok  # default bound is 32 quanta


def test_shed_pulse_resets_the_ewma_evidence():
    """Each shed round must be earned by a fresh episode of slip."""
    guard = hot_guard(engage_dwell=2)
    for _ in range(6):
        guard.observe_wake(50 * Q, Q)
    assert guard.rung is Rung.SHED
    assert guard.slip.ewma_quanta == 0.0  # reset by the shed pulse
    # A single further hot wake is not enough to pulse again...
    assert guard.observe_wake(50 * Q, Q) == 0
    # ...but a sustained one is.
    assert guard.observe_wake(50 * Q, Q) == 1
    assert guard.slip.ewma_quanta == 0.0


def test_admission_pauses_only_at_shed():
    guard = hot_guard()
    guard.observe_wake(5 * Q, Q)
    guard.observe_wake(5 * Q, Q)
    assert guard.rung is Rung.COARSEN
    assert not guard.admission_paused
    guard.observe_wake(5 * Q, Q)
    assert guard.rung is Rung.SHED
    assert guard.admission_paused


def test_shed_quota_and_selection_take_the_lowest_share_tail():
    guard = hot_guard(shed_fraction=0.5)
    shares = {1: 9, 2: 1, 3: 5, 4: 1}
    quota = guard.shed_quota(len(shares))
    assert quota == 2
    # Lowest (share, sid) pairs first: both share-1 subjects.
    assert guard.select_shed(shares, quota) == [2, 4]


def test_shed_quota_never_empties_the_group():
    guard = hot_guard(shed_fraction=1.0)
    assert guard.shed_quota(1) == 0


def test_roundtrip_restores_fully_recovered():
    guard = hot_guard()
    guard.observe_wake(5 * Q, Q)
    guard.note_shed(7)
    assert not guard.fully_recovered
    # The EWMA decays toward the release threshold over several clean
    # wakes; each one below it walks the ladder down a rung.
    for _ in range(30):
        guard.observe_wake(0, Q)
    assert guard.rung is Rung.NORMAL
    assert not guard.fully_recovered  # sid 7 still out
    guard.note_readmitted(7)
    assert guard.fully_recovered
    assert guard.shed_outstanding == 0


def test_departed_shed_member_is_accounted():
    guard = hot_guard()
    guard.note_shed(3)
    guard.note_departed(3)
    assert guard.shed_outstanding == 0
    # Departure of a never-shed sid is a no-op, not an error.
    guard.note_departed(99)


def test_stats_namespaces_cover_all_components():
    guard = hot_guard()
    guard.observe_wake(5 * Q, Q)
    stats = guard.stats()
    assert any(k.startswith("admission.") for k in stats)
    assert any(k.startswith("slip.") for k in stats)
    assert any(k.startswith("ladder.") for k in stats)
    for key in ("sheds", "readmits", "shed_outstanding", "degraded_wakes",
                "max_degraded_slip_quanta"):
        assert key in stats
