"""SlipMonitor: EWMA bookkeeping of the starvation signal."""

from __future__ import annotations

import pytest

from repro.overload import SlipMonitor


def test_first_sample_seeds_the_ewma():
    mon = SlipMonitor(alpha=0.3)
    assert mon.observe(5_000, 10_000) == pytest.approx(0.5)
    assert mon.last_quanta == pytest.approx(0.5)
    assert mon.max_quanta == pytest.approx(0.5)


def test_ewma_follows_the_standard_recurrence():
    mon = SlipMonitor(alpha=0.5)
    mon.observe(10_000, 10_000)  # ewma = 1.0
    assert mon.observe(30_000, 10_000) == pytest.approx(0.5 * 3 + 0.5 * 1)
    assert mon.max_quanta == pytest.approx(3.0)
    assert mon.total_slip_us == 40_000
    assert mon.samples == 2


def test_negative_slip_clamps_to_zero():
    """Early wakes (restart re-anchoring) are not negative starvation."""
    mon = SlipMonitor()
    mon.observe(-25_000, 10_000)
    assert mon.last_quanta == 0.0
    assert mon.ewma_quanta == 0.0
    assert mon.total_slip_us == 0


def test_reset_ewma_preserves_cumulative_counters():
    mon = SlipMonitor(alpha=0.5)
    mon.observe(20_000, 10_000)
    mon.observe(20_000, 10_000)
    mon.reset_ewma()
    assert mon.ewma_quanta == 0.0
    assert mon.last_quanta == 0.0
    assert mon.samples == 0
    # Evidence restarts, history survives.
    assert mon.max_quanta == pytest.approx(2.0)
    assert mon.total_slip_us == 40_000
    # The next sample re-seeds the EWMA rather than averaging into 0.
    assert mon.observe(10_000, 10_000) == pytest.approx(1.0)


def test_stats_keys_are_stable():
    mon = SlipMonitor()
    mon.observe(1_000, 10_000)
    assert set(mon.stats()) == {
        "samples", "last_quanta", "ewma_quanta", "max_quanta", "total_slip_us",
    }
