"""Property tests: the overload layer never loses or reorders a process.

Two Hypothesis-driven models:

* the admission queue, under arbitrary interleavings of submit / drain /
  pause, is a lossless FIFO — every entry is admitted, still pending,
  or explicitly discarded, and admissions happen in submission order;
* a full admit → degrade → shed → recover round trip conserves the
  group — at every step the enforced set and the shed set partition the
  original membership, and after recovery the enforced set is exactly
  the original again.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.overload import AdmissionQueue, OverloadConfig, OverloadGuard, Rung

# -- model 1: the admission queue is a lossless FIFO -------------------

ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.booleans()),   # paused?
        st.tuples(st.just("drain"), st.booleans()),    # paused?
        st.just(("discard_oldest", False)),
    ),
    max_size=60,
)


@given(capacity=st.one_of(st.none(), st.integers(1, 5)), script=ops)
@settings(max_examples=120, deadline=None)
def test_admission_queue_is_lossless_and_ordered(capacity, script):
    q = AdmissionQueue(capacity)
    active: list[int] = []       # the model's enforced set
    admitted: list[int] = []     # admission order over the whole run
    discarded: set[int] = set()
    next_id = 0
    for op, paused in script:
        if op == "submit":
            entry = next_id
            next_id += 1
            if q.submit(entry, len(active), paused=paused):
                active.append(entry)
                admitted.append(entry)
        elif op == "drain":
            for entry in q.admit_ready(len(active), paused=paused):
                active.append(entry)
                admitted.append(entry)
        else:
            pending = q.pending()
            if pending:
                assert q.discard(pending[0])
                discarded.add(pending[0])
    # Conservation: every submitted entry is in exactly one place.
    assert set(admitted) | set(q.pending()) | discarded == set(range(next_id))
    assert len(admitted) + q.depth + len(discarded) == next_id
    # Order: admissions are monotone in submission id once discards are
    # projected out (FIFO never lets a late arrival overtake a waiter).
    assert admitted == sorted(admitted)


# -- model 2: degrade → shed → recover conserves the group -------------

share_lists = st.lists(st.integers(1, 9), min_size=4, max_size=16)


@given(shares=share_lists, shed_fraction=st.floats(0.1, 1.0))
@settings(max_examples=60, deadline=None)
def test_shed_recover_roundtrip_conserves_membership(shares, shed_fraction):
    cfg = OverloadConfig(
        engage_dwell=1,
        release_dwell=1,
        shed_fraction=shed_fraction,
    )
    guard = OverloadGuard(cfg)
    q_us = 10_000
    enforced = {sid: share for sid, share in enumerate(shares)}
    shed: dict[int, int] = {}
    original = dict(enforced)

    def enact(delta: int) -> None:
        if delta > 0 and guard.rung >= Rung.SHED:
            for sid in guard.select_shed(enforced, guard.shed_quota(len(enforced))):
                shed[sid] = enforced.pop(sid)
                guard.note_shed(sid)
        elif delta < 0 and guard.rung < Rung.SHED:
            for sid in list(guard.shed_sids):
                enforced[sid] = shed.pop(sid)
                guard.note_readmitted(sid)

    # Degrade: sustained hot wakes climb to SHED and pulse shed rounds.
    for _ in range(8):
        enact(guard.observe_wake(50 * q_us, q_us))
        assert set(enforced) | set(shed) == set(original)
        assert not set(enforced) & set(shed)
    assert guard.rung is Rung.SHED
    assert shed  # at least one shed round happened
    # Shedding takes the lowest shares first.
    if enforced:
        assert max(shed.values()) <= min(enforced.values()) or any(
            shed_share == min(original.values()) for shed_share in shed.values()
        )
    # Recover: cool wakes walk the ladder all the way back down.
    for _ in range(8):
        enact(guard.observe_wake(0, q_us))
        assert set(enforced) | set(shed) == set(original)
    assert guard.rung is Rung.NORMAL
    assert guard.fully_recovered
    assert enforced == original
    assert guard.sheds == guard.readmits
