"""AdmissionQueue: bounded membership with lossless FIFO queueing."""

from __future__ import annotations

from repro.overload import AdmissionQueue


def test_unbounded_queue_admits_everything_immediately():
    q = AdmissionQueue(None)
    assert all(q.submit(i, active=i) for i in range(50))
    assert q.depth == 0
    assert q.admitted_immediately == 50


def test_capacity_queues_the_overflow_in_order():
    q = AdmissionQueue(2)
    assert q.submit("a", active=0)
    assert q.submit("b", active=1)
    assert not q.submit("c", active=2)
    assert not q.submit("d", active=2)
    assert q.pending() == ("c", "d")
    assert q.queued_peak == 2


def test_drain_respects_spare_capacity_and_order():
    q = AdmissionQueue(3)
    for entry in ("a", "b", "c"):
        q.submit(entry, active=0)  # fills... but active is the caller's
    # Queue three more behind a full set.
    for entry in ("d", "e", "f"):
        q.submit(entry, active=3)
    # One slot frees up: exactly the oldest waiter admits.
    assert q.admit_ready(active=2) == ["d"]
    # Two slots free up: the next two, still in order.
    assert q.admit_ready(active=1) == ["e", "f"]
    assert q.depth == 0
    assert q.drained == 3


def test_pause_blocks_both_submit_and_drain():
    q = AdmissionQueue(4)
    assert not q.submit("a", active=0, paused=True)
    assert q.admit_ready(active=0, paused=True) == []
    assert q.pending() == ("a",)
    # Unpaused, the waiter drains normally.
    assert q.admit_ready(active=0) == ["a"]


def test_late_arrival_cannot_jump_a_nonempty_queue():
    """FIFO even when the set has room: queued entries go first."""
    q = AdmissionQueue(10)
    q.submit("old", active=10)       # queued at capacity
    assert not q.submit("new", active=3)  # room now, but "old" waits
    assert q.admit_ready(active=3) == ["old", "new"]


def test_discard_drops_only_the_named_entry():
    q = AdmissionQueue(1)
    q.submit("a", active=1)
    q.submit("b", active=1)
    assert q.discard("a")
    assert not q.discard("zzz")
    assert q.pending() == ("b",)


def test_stats_counters_add_up():
    q = AdmissionQueue(1)
    q.submit("a", active=0)
    q.submit("b", active=1)
    q.admit_ready(active=0)
    stats = q.stats()
    assert stats["submitted"] == 2
    assert stats["admitted_immediately"] == 1
    assert stats["queued"] == 1
    assert stats["drained"] == 1
    assert stats["depth"] == 0
    assert stats["queued_peak"] == 1
