"""OverloadConfig validation."""

from __future__ import annotations

import pytest

from repro.errors import SchedulerConfigError
from repro.overload import OverloadConfig


def test_default_config_is_valid_and_schedule_invisible_at_normal():
    cfg = OverloadConfig()
    assert cfg.capacity is None
    assert cfg.stretch_factors[0] == 1
    assert cfg.postpone_boosts[0] == 1
    assert cfg.engage_slip_quanta > cfg.release_slip_quanta
    assert cfg.release_dwell > cfg.engage_dwell


@pytest.mark.parametrize(
    "kwargs",
    [
        {"capacity": 0},
        {"slip_alpha": 0.0},
        {"slip_alpha": 1.5},
        {"release_slip_quanta": -0.1},
        # Empty hysteresis band.
        {"engage_slip_quanta": 0.25, "release_slip_quanta": 0.25},
        {"engage_dwell": 0},
        {"release_dwell": 0},
        # Wrong arity, sub-1 entries, non-1 NORMAL entry.
        {"stretch_factors": (1, 2, 4)},
        {"stretch_factors": (1, 0, 4, 4)},
        {"stretch_factors": (2, 2, 4, 4)},
        {"postpone_boosts": (1, 1)},
        {"postpone_boosts": (3, 1, 2, 2)},
        {"shed_fraction": 0.0},
        {"shed_fraction": 1.1},
        {"max_degraded_slip_quanta": 0},
    ],
)
def test_bad_tunables_rejected(kwargs):
    with pytest.raises(SchedulerConfigError):
        OverloadConfig(**kwargs)
