"""Schedule invisibility of an idle overload guard.

An armed guard observes every wake, but at NORMAL it must change
*nothing*: no admission queue forms (capacity defaults to unbounded),
the stretch factor is 1, the postpone boost is 1, and no shed ever
happens.  Table 2 workloads never push the ladder off NORMAL, so a
guarded run must produce byte-identical observable behavior (cycle
log, event trace, event count, final clock) to a bare run, over the
Table 2 workload matrix and seeds 0–2 (docs/overload.md).
"""

from __future__ import annotations

import pytest

from repro.perf.differential import TABLE2_SIZES, fingerprint_run
from repro.units import sec
from repro.workloads.shares import DISTRIBUTIONS, workload_shares

#: Same budget rationale as the resilience differential: the matrix is
#: crossed with seeds, and one simulated second covers hundreds of
#: guarded wakes per cell.
HORIZON_US = sec(1)


@pytest.mark.parametrize("model", DISTRIBUTIONS)
@pytest.mark.parametrize("n", TABLE2_SIZES)
@pytest.mark.parametrize("seed", (0, 1, 2))
def test_idle_guard_is_schedule_invisible(model, n, seed):
    shares = workload_shares(model, n)
    bare = fingerprint_run(shares, seed=seed, horizon_us=HORIZON_US)
    guarded = fingerprint_run(
        shares, seed=seed, horizon_us=HORIZON_US, overload=True
    )
    assert bare == guarded, (
        f"idle overload guard changed the schedule for {model} n={n} "
        f"seed={seed}: {bare.digest()} != {guarded.digest()}"
    )


def test_guard_and_resilience_stack_compose_invisibly():
    """Both robustness layers together still leave the schedule alone."""
    shares = workload_shares(DISTRIBUTIONS[0], 5)
    bare = fingerprint_run(shares, seed=0, horizon_us=HORIZON_US)
    stacked = fingerprint_run(
        shares, seed=0, horizon_us=HORIZON_US, resilience=True, overload=True
    )
    assert bare == stacked
