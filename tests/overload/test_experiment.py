"""The past-the-knee experiment: cells, codec, comparison plumbing.

The full past-the-knee matrix lives in the perf-gate benchmark
(``benchmarks/bench_overload_degradation.py``); these tests keep the
experiment's machinery honest at sizes small enough for tier-1 time.
"""

from __future__ import annotations

from dataclasses import asdict

from repro.experiments.overload import (
    KNEE_N,
    PAST_KNEE_N,
    OverloadComparison,
    OverloadPoint,
    overload_cell,
    overload_point_from_payload,
    overload_sweep_spec,
    run_overload_cell,
    run_overload_point,
)


def test_small_group_never_engages_the_ladder():
    point = run_overload_point(n=6, ladder=True, cycles=12, seed=0)
    assert point.ladder
    assert point.engagements == 0
    assert point.sheds == 0
    assert point.cycles_completed >= 12
    assert point.mean_rms_error_pct < 15.0


def test_control_point_reports_zero_telemetry():
    point = run_overload_point(n=6, ladder=False, cycles=8, seed=0)
    assert not point.ladder
    assert point.engagements == 0
    assert point.max_degraded_slip_quanta == 0.0


def test_cell_worker_and_codec_roundtrip():
    cell = overload_cell(n=6, ladder=True, cycles=8, seed=1)
    assert cell.experiment == "overload.past_knee"
    payload = run_overload_cell(cell.params)
    point = overload_point_from_payload(payload)
    assert isinstance(point, OverloadPoint)
    assert asdict(point) == payload
    assert point.n == 6


def test_sweep_spec_pairs_ladder_and_control_per_size():
    spec = overload_sweep_spec(sizes=(6, 8), cycles=8)
    assert len(spec.cells) == 4
    arms = [(c.params["n"], c.params["ladder"]) for c in spec.cells]
    assert arms == [(6, True), (6, False), (8, True), (8, False)]


def test_comparison_ratio():
    protected = run_overload_point(n=6, ladder=True, cycles=8, seed=0)
    control = run_overload_point(n=6, ladder=False, cycles=8, seed=0)
    cmp = OverloadComparison(protected=protected, control=control)
    assert cmp.error_ratio == (
        protected.mean_rms_error_pct / control.mean_rms_error_pct
    )


def test_knee_constants_are_consistent():
    assert PAST_KNEE_N == 2 * KNEE_N
