"""DegradationLadder: hysteresis, dwell, and shed pulses at the top."""

from __future__ import annotations

from repro.overload import DegradationLadder, OverloadConfig, Rung

HOT = 10.0   # well above the default engage threshold
COOL = 0.0   # well below the default release threshold
BAND = 0.5   # inside the default dead band (0.25 .. 1.0)


def ladder(**kwargs) -> DegradationLadder:
    return DegradationLadder(OverloadConfig(**kwargs))


def test_engage_requires_dwell():
    lad = ladder(engage_dwell=3)
    assert lad.update(HOT) == 0
    assert lad.update(HOT) == 0
    assert lad.update(HOT) == 1
    assert lad.rung is Rung.STRETCH
    assert lad.engagements == 1


def test_climbs_one_rung_at_a_time_to_shed():
    lad = ladder(engage_dwell=1)
    rungs = []
    for _ in range(4):
        lad.update(HOT)
        rungs.append(lad.rung)
    assert rungs == [Rung.STRETCH, Rung.COARSEN, Rung.SHED, Rung.SHED]
    assert lad.max_rung_seen is Rung.SHED
    # Leaving NORMAL once is one engagement regardless of height.
    assert lad.engagements == 1


def test_shed_rung_keeps_pulsing():
    """At SHED each dwell completion still returns +1 — another quota."""
    lad = ladder(engage_dwell=2)
    for _ in range(6):
        lad.update(HOT)
    assert lad.rung is Rung.SHED
    pulses = [lad.update(HOT) for _ in range(4)]
    # Every engage_dwell-th hot wake pulses again.
    assert pulses == [0, 1, 0, 1]
    assert lad.rung is Rung.SHED


def test_release_requires_longer_dwell_and_walks_down():
    lad = ladder(engage_dwell=1, release_dwell=3)
    lad.update(HOT)
    lad.update(HOT)
    assert lad.rung is Rung.COARSEN
    deltas = [lad.update(COOL) for _ in range(6)]
    assert deltas == [0, 0, -1, 0, 0, -1]
    assert lad.rung is Rung.NORMAL
    assert lad.steps_down == 2
    # Fully recovered: further cool wakes are no-ops.
    assert lad.update(COOL) == 0


def test_dead_band_resets_both_dwell_counters():
    lad = ladder(engage_dwell=2, release_dwell=2)
    lad.update(HOT)
    lad.update(BAND)   # resets the hot streak
    assert lad.update(HOT) == 0
    assert lad.update(HOT) == 1
    lad.update(COOL)
    lad.update(BAND)   # resets the cool streak
    assert lad.update(COOL) == 0
    assert lad.update(COOL) == -1


def test_per_rung_knobs_follow_the_config():
    cfg = OverloadConfig(
        engage_dwell=1,
        stretch_factors=(1, 3, 5, 5),
        postpone_boosts=(1, 1, 4, 4),
    )
    lad = DegradationLadder(cfg)
    assert (lad.stretch_factor, lad.postpone_boost) == (1, 1)
    lad.update(HOT)
    assert (lad.stretch_factor, lad.postpone_boost) == (3, 1)
    lad.update(HOT)
    assert (lad.stretch_factor, lad.postpone_boost) == (5, 4)
