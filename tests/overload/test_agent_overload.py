"""The simulated agent's overload plumbing: admission, slip, events."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.alps.subjects import ProcessSubject
from repro.obs import Observer
from repro.overload import OverloadConfig, OverloadGuard
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior


def guarded_workload(shares, *, capacity=None, observer=None):
    guard = OverloadGuard(OverloadConfig(capacity=capacity))
    cw = build_controlled_workload(
        list(shares),
        AlpsConfig(quantum_us=ms(10)),
        seed=0,
        overload=guard,
        observer=observer,
    )
    return cw, guard


def submit_arrival(cw, sid, share=1):
    proc = cw.kernel.spawn(f"arrival-{sid}", spinner_behavior(), uid=900)
    subject = ProcessSubject(sid=sid, share=share, pid=proc.pid)
    return proc, cw.agent.submit_subject(subject, cw.kernel.kapi)


def test_timer_slip_is_zero_without_a_guard():
    cw = build_controlled_workload(
        [1, 2], AlpsConfig(quantum_us=ms(10)), seed=0
    )
    cw.engine.run_until(sec(1))
    assert cw.agent.timer_slip_us == 0


def test_unbounded_guard_admits_arrivals_immediately():
    cw, guard = guarded_workload([1, 2])
    cw.engine.run_until(sec(1))
    _, admitted = submit_arrival(cw, sid=100)
    assert admitted
    assert 100 in cw.agent.subjects
    assert guard.admission.depth == 0


def test_capacity_queues_arrivals_until_a_slot_frees():
    obs = Observer()
    cw, guard = guarded_workload([1, 2, 3], capacity=3, observer=obs)
    cw.engine.run_until(sec(1))
    # The initial group fills the capacity; the arrival has to wait.
    _, admitted = submit_arrival(cw, sid=100)
    assert not admitted
    assert guard.admission.depth == 1
    cw.engine.run_until(sec(2))
    assert 100 not in cw.agent.subjects  # still no room
    # A departure frees a slot: the liveness sweep reaps the dead
    # member and a later wake drains the queue, oldest first.
    victim = cw.workers[0]
    cw.kernel.kill(victim.pid, 9)
    cw.engine.run_until(sec(4))
    assert 100 in cw.agent.subjects
    assert guard.admission.depth == 0
    kinds = [ev.kind for ev in obs.events.tail(len(obs.events))]
    assert "overload.queued" in kinds
    assert "overload.admitted" in kinds


def test_queued_arrival_is_enforced_after_admission():
    """An admitted arrival joins the proportional split, not a side car."""
    cw, guard = guarded_workload([5, 5], capacity=2)
    cw.engine.run_until(sec(1))
    _, admitted = submit_arrival(cw, sid=100, share=5)
    assert not admitted
    cw.kernel.kill(cw.workers[0].pid, 9)
    cw.engine.run_until(sec(3))
    assert 100 in cw.agent.subjects
    before = cw.agent.cumulative_cpu_of(100)
    cw.engine.run_until(sec(8))
    gained = cw.agent.cumulative_cpu_of(100) - before
    # Equal shares with one peer: roughly half the CPU from then on.
    assert gained == pytest.approx(sec(5) / 2, rel=0.35)


def test_guarded_run_reports_slip_through_the_agent_property():
    cw, guard = guarded_workload([1, 2])
    cw.engine.run_until(sec(1))
    assert guard.slip.samples > 0
    assert cw.agent.timer_slip_us == int(
        guard.slip.last_quanta * cw.agent.cfg.quantum_us
    )
