"""FaultInjector behavior in full simulations.

Each fault class is driven to an observable end state: the simulation
must keep running, the agent must recover, and the injected schedule
must replay byte-identically for equal seeds.
"""

from __future__ import annotations

from repro.alps.agent import spawn_alps
from repro.alps.config import AlpsConfig
from repro.alps.subjects import UserSubject
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    AgentCrash,
    AgentStall,
    FaultPlan,
    ForkStorm,
    ProcessCrash,
    default_fault_plan,
)
from repro.kernel.kernel import Kernel
from repro.sim.engine import Engine
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload
from repro.workloads.spinner import spinner_behavior

CFG = AlpsConfig(quantum_us=ms(10))


def _run(plan, *, shares=(1, 2, 3), seed=3, until=sec(3)):
    cw = build_controlled_workload(list(shares), CFG, seed=seed, fault_plan=plan)
    cw.engine.run_until(until)
    return cw


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------
def test_same_seed_replays_trace_byte_identically():
    def trace(plan_seed):
        plan = FaultPlan(
            seed=plan_seed,
            crash_rate_per_sec=0.5,
            signal_drop_prob=0.2,
            signal_delay_prob=0.2,
            rusage_fail_prob=0.2,
            agent_stall_prob=0.1,
            agent_crashes=(AgentCrash(time_us=sec(1)),),
            horizon_us=sec(3),
        )
        return _run(plan).injector.trace_lines()

    first = trace(7)
    assert first == trace(7)
    assert len(first) > 0
    assert trace(8) != first


def test_plan_rng_is_independent_of_engine_seed():
    """The fault schedule comes from the *plan* seed; the workload seed
    must not silently reshuffle it (determinism contract)."""
    plan = default_fault_plan(0.2, seed=5, horizon_us=sec(3))
    kinds_a = [r.kind for r in _run(plan, seed=1).injector.trace]
    kinds_b = [r.kind for r in _run(plan, seed=2).injector.trace]
    # Timing differs (the simulations diverge), but both runs draw from
    # the same per-operation streams and inject the same fault classes.
    assert set(kinds_a) == set(kinds_b)


def test_arm_twice_rejected():
    engine = Engine(seed=0)
    kernel = Kernel(engine)
    inj = FaultInjector(FaultPlan(), engine, kernel)
    inj.arm([])
    try:
        inj.arm([])
    except RuntimeError:
        return
    raise AssertionError("second arm() must be rejected")


# ----------------------------------------------------------------------
# Process-population faults
# ----------------------------------------------------------------------
def test_scheduled_crash_kills_victim_and_agent_reaps():
    plan = FaultPlan(crashes=(ProcessCrash(time_us=sec(1), victim_index=0),))
    cw = _run(plan)
    assert cw.injector.crashes_injected == 1
    assert not cw.kernel.kapi.pid_exists(cw.workers[0].pid)
    assert 0 not in cw.agent.core.subjects  # reaped
    assert 1 in cw.agent.core.subjects  # survivors still scheduled
    assert any(r.kind == "crash" for r in cw.injector.trace)
    # Stale per-pid state is gone with the subject (no leak).
    assert cw.workers[0].pid not in cw.agent._last_read
    assert cw.workers[0].pid not in cw.agent._stopped_pids


def test_poisson_crashes_eventually_empty_the_group():
    plan = FaultPlan(crash_rate_per_sec=20.0, horizon_us=sec(5))
    cw = _run(plan, until=sec(5))
    assert cw.injector.crashes_injected >= 1
    # However many died, the agent never raised and still answers.
    assert len(cw.agent.core.subjects) + cw.injector.crashes_injected >= 3


def test_fork_storm_discovered_by_principal_refresh():
    engine = Engine(seed=2)
    kernel = Kernel(engine)
    workers = [kernel.spawn(f"w{i}", spinner_behavior(), uid=7) for i in range(2)]
    others = [kernel.spawn("x", spinner_behavior(), uid=8)]
    subjects = [
        UserSubject(sid=0, share=1, uid=7),
        UserSubject(sid=1, share=1, uid=8),
    ]
    plan = FaultPlan(fork_storms=(ForkStorm(time_us=ms(500), uid=7, count=3),))
    injector = FaultInjector(plan, engine, kernel)
    injector.arm([w.pid for w in workers + others])
    _, agent = spawn_alps(kernel, subjects, CFG, injector=injector)
    engine.run_until(sec(3))  # default refresh period is 1 s
    assert injector.forks_spawned == 3
    assert any(r.kind == "forkstorm" for r in injector.trace)
    # The storm's processes joined the principal and are accounted.
    assert len(subjects[0].pids(kernel.kapi)) == 5


# ----------------------------------------------------------------------
# Signal faults
# ----------------------------------------------------------------------
def test_dropped_signals_are_retried_and_nobody_wedges():
    plan = FaultPlan(signal_drop_prob=1.0)
    cw = _run(plan)
    assert cw.injector.signals_dropped > 0
    assert cw.agent.signal_retries > 0
    cw.agent.shutdown(cw.kernel.kapi)
    for w in cw.workers:
        if cw.kernel.kapi.pid_exists(w.pid):
            assert not cw.kernel.is_stopped(w.pid)


def test_delayed_signals_arrive_and_run_completes():
    plan = FaultPlan(signal_delay_prob=1.0, signal_delay_us=ms(2))
    cw = _run(plan)
    assert cw.injector.signals_delayed > 0
    assert len(cw.agent.cycle_log) > 0
    cw.agent.shutdown(cw.kernel.kapi)
    for w in cw.workers:
        assert not cw.kernel.is_stopped(w.pid)


# ----------------------------------------------------------------------
# Read faults
# ----------------------------------------------------------------------
def test_transient_read_failures_are_retried_within_budget():
    plan = FaultPlan(rusage_fail_prob=1.0)
    cw = _run(plan, until=sec(1))
    assert cw.injector.reads_failed > 0
    assert cw.agent.read_retries > 0
    assert cw.agent.read_failures > 0  # budget exhausted under 100 % loss


def test_partial_read_failures_only_defer_accounting():
    """A skipped measurement must defer consumption, not lose it: total
    CPU charged over the run stays within one quantum of kernel truth."""
    plan = FaultPlan(seed=1, rusage_fail_prob=0.3)
    cw = _run(plan, shares=(1, 1), until=sec(3))
    assert cw.injector.reads_failed > 0
    for i, w in enumerate(cw.workers):
        charged = cw.agent.cumulative_cpu_of(i)
        truth = cw.kernel.getrusage(w.pid)
        assert charged <= truth
        assert truth - charged <= 2 * CFG.quantum_us


# ----------------------------------------------------------------------
# Agent faults
# ----------------------------------------------------------------------
def test_scheduled_stall_is_detected_and_rebaselined():
    plan = FaultPlan(agent_stalls=(AgentStall(time_us=sec(1), skipped_quanta=6),))
    cw = _run(plan)
    assert cw.injector.stalls_injected == 1
    assert cw.agent.missed_boundaries >= 6
    assert cw.agent.rebaselines >= 1  # 6 > default tolerance of 2


def test_agent_crash_restarts_and_reconciles():
    plan = FaultPlan(agent_crashes=(AgentCrash(time_us=sec(1), downtime_us=ms(50)),))
    cw = _run(plan)
    assert cw.injector.agent_crashes_injected == 1
    assert cw.agent.restarts == 1
    # Control resumed after the downtime: cycles complete post-crash.
    assert cw.agent.cycle_log.records[-1].end_time > sec(1) + ms(50)
    cw.agent.shutdown(cw.kernel.kapi)
    for w in cw.workers:
        assert not cw.kernel.is_stopped(w.pid)


def test_agent_crash_trace_records_downtime():
    plan = FaultPlan(agent_crashes=(AgentCrash(time_us=sec(1), downtime_us=ms(30)),))
    cw = _run(plan)
    lines = cw.injector.trace_lines()
    assert any("agent-crash downtime_us=30000" in line for line in lines)
