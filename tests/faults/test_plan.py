"""FaultPlan validation, the null-plan contract, and trace records."""

from __future__ import annotations

import pytest

from repro.alps.config import AlpsConfig
from repro.errors import SchedulerConfigError
from repro.faults.plan import (
    AgentCrash,
    AgentStall,
    CellCrash,
    FaultPlan,
    FaultRecord,
    ForkStorm,
    MigrationTear,
    ProcessCrash,
    default_fault_plan,
)
from repro.units import ms, sec
from repro.workloads.scenarios import build_controlled_workload


def test_default_plan_is_null():
    assert FaultPlan().is_null


@pytest.mark.parametrize(
    "kwargs",
    [
        {"crashes": (ProcessCrash(time_us=1, victim_index=0),)},
        {"crash_rate_per_sec": 0.5},
        {"fork_storms": (ForkStorm(time_us=1, uid=7, count=2),)},
        {"signal_drop_prob": 0.1},
        {"signal_delay_prob": 0.1},
        {"rusage_fail_prob": 0.1},
        {"agent_stalls": (AgentStall(time_us=1),)},
        {"agent_stall_prob": 0.1},
        {"agent_crashes": (AgentCrash(time_us=1),)},
        {"cell_crashes": (CellCrash(time_us=1, cell=0),)},
        {"migration_tears": (MigrationTear(time_us=1),)},
    ],
)
def test_any_fault_makes_plan_non_null(kwargs):
    assert not FaultPlan(**kwargs).is_null


@pytest.mark.parametrize(
    "kwargs",
    [
        {"signal_drop_prob": -0.1},
        {"signal_drop_prob": 1.5},
        {"signal_delay_prob": 2.0},
        {"rusage_fail_prob": -1},
        {"agent_stall_prob": 1.01},
        {"crash_rate_per_sec": -3},
        {"signal_delay_us": 0},
        {"agent_stall_quanta": 0},
        {"horizon_us": 0},
        {"cell_crashes": (CellCrash(time_us=1, cell=-1),)},
        {"cell_crashes": (CellCrash(time_us=1, downtime_us=0),)},
        {"migration_tears": (MigrationTear(time_us=1, after_ops=-1),)},
    ],
)
def test_invalid_plans_rejected(kwargs):
    with pytest.raises(SchedulerConfigError):
        FaultPlan(**kwargs)


def test_default_fault_plan_mapping():
    plan = default_fault_plan(0.2, seed=9, horizon_us=sec(10))
    assert plan.seed == 9
    assert plan.signal_drop_prob == 0.2
    assert plan.signal_delay_prob == 0.1
    assert plan.rusage_fail_prob == 0.2
    assert plan.agent_stall_prob == 0.05
    assert plan.agent_crashes == (AgentCrash(time_us=sec(10) // 2),)
    assert default_fault_plan(0.2, agent_crash=False).agent_crashes == ()
    # Below the crash threshold: no agent crash.
    assert default_fault_plan(0.05).agent_crashes == ()


def test_default_fault_plan_zero_rate_is_null():
    assert default_fault_plan(0.0, seed=4).is_null


def test_default_fault_plan_rejects_out_of_range():
    with pytest.raises(SchedulerConfigError):
        default_fault_plan(-0.1)
    with pytest.raises(SchedulerConfigError):
        default_fault_plan(1.5)


def test_fault_record_line_is_stable():
    rec = FaultRecord(time_us=1234, kind="signal-drop", detail="pid=5 sig=SIGSTOP")
    assert rec.line() == "1234 signal-drop pid=5 sig=SIGSTOP"


def test_null_plan_run_identical_to_no_injector():
    """The acceptance contract: fault rate 0 leaves every result
    byte-identical to the clean path (injector or no injector)."""
    cfg = AlpsConfig(quantum_us=ms(10))

    def run(fault_plan):
        cw = build_controlled_workload(
            [1, 2, 3], cfg, seed=11, fault_plan=fault_plan
        )
        cw.engine.run_until(sec(3))
        return cw

    clean = run(None)
    nulled = run(FaultPlan(seed=99))  # even the plan seed must not matter

    assert nulled.injector is not None
    assert nulled.injector.trace_lines() == []
    assert clean.agent.cycle_log.records == nulled.agent.cycle_log.records
    assert clean.agent.signals_sent == nulled.agent.signals_sent
    assert clean.agent.invocations == nulled.agent.invocations
    assert clean.kernel.now == nulled.kernel.now
    for a, b in zip(clean.workers, nulled.workers):
        assert clean.kernel.getrusage(a.pid) == nulled.kernel.getrusage(b.pid)
